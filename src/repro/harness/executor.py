"""Plan execution: serial or process-parallel, cached, with supervision.

The :class:`Executor` turns a batch of :class:`ExperimentPlan` values
into :class:`ConfigResult` values. For each plan it

1. consults the optional on-disk :class:`ResultCache` (a hit skips
   simulation entirely); on a result-level miss, the cache's trace level
   can still satisfy the plan by replaying a recorded retirement stream
   through the fused analysis engine (:func:`execute_plan`);
2. otherwise simulates — in-process when only one worker would be used
   (``jobs == 1`` or a single outstanding plan) and no timeout/heartbeat
   supervision is requested, else in a **persistent warm worker pool**
   (``multiprocessing``, fork start method where available): long-lived
   workers pull plans from a task queue and keep per-process warm caches
   (:mod:`repro.harness.warmcache`) — built workload images by
   fingerprint and translated block/summary code by source text — so a
   suite pays cold-start (imports, image build, block translation) once
   per worker instead of once per plan. Workers recycle after
   ``max_tasks_per_worker`` tasks or on any fault; machine state is
   rebuilt per plan, so results are byte-identical to fresh-process
   execution (``warm_pool=False`` restores the legacy
   process-per-plan-attempt pool as the baseline). ``jobs=None``
   defaults to one worker per CPU, capped at the number of plans to
   simulate;
3. supervises workers two ways: a per-plan wall-clock ``timeout`` (the
   budget for *legitimate* work) and a ``heartbeat`` deadline (a worker
   that stops beating is wedged — deadlocked, swapped out, or stuck in
   an uninterruptible syscall — long before its timeout would fire);
4. retries *transient* failures — a worker killed by a signal, a
   timeout, a lost heartbeat, an OS-level error — up to ``retries``
   times with exponential backoff plus seeded jitter, and raises a
   structured :class:`SuiteExecutionError` (per-plan attempt histories,
   not a bare message) for anything that remains failed;
5. degrades gracefully: repeated *pool-level* failures (workers dying
   without reporting, broken result pipes) trip the pool breaker and the
   remaining plans run serially in-process
   (:class:`~repro.harness.events.ExecutorDegraded`);
6. emits structured telemetry (:mod:`repro.harness.events`) throughout.

Fault injection (:mod:`repro.harness.faults`) threads through every one
of these paths — ``execute_plan`` and ``_child_main`` check their sites,
and the active plan ships to workers as a serialized argument — at zero
cost when no plan is installed.

Results computed in worker processes travel back through the same
versioned ``to_dict``/``from_dict`` round-trip the cache uses, so the
parallel path is bit-identical to the serial one by construction.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import ExperimentError, ReproError
from repro.harness import faults
from repro.harness.cache import BlockStore, ResultCache, TraceStore
from repro.harness.events import (
    EventBus,
    ExecutorDegraded,
    PlanCacheHit,
    PlanFailed,
    PlanFinished,
    PlanShardStats,
    PlanStarted,
    PlanTraceHit,
    PlanTranslationStats,
    SuiteFinished,
    SuiteStarted,
    WarmCacheStats,
    WorkerRecycled,
)
from repro.harness.plan import ExperimentPlan, plan_suite
from repro.harness.warmcache import WarmCache, WarmStateError, set_block_root

if TYPE_CHECKING:
    from repro.harness.experiments import ConfigResult, SuiteResult

#: Failure classes worth more attempts; everything else is deterministic
#: and retrying would only multiply the wall-clock.
_TRANSIENT = (OSError, EOFError, MemoryError, TimeoutError)

#: Polling interval for the process scheduler, seconds.
_POLL_S = 0.02

#: Consecutive pool-level failures (dead workers, broken pipes) that
#: trip the breaker and degrade the pool to serial execution.
POOL_FAILURE_LIMIT = 3


@dataclass
class AttemptRecord:
    """One failed attempt of one plan."""

    attempt: int
    error: str
    transient: bool
    seconds: float = 0.0
    #: Serialized :class:`~repro.sim.postmortem.GuestFaultReport` when
    #: the attempt died on a guest fault (survives the worker pipe).
    fault: dict | None = None
    #: True when the attempt ran on a warm (reused) worker, False on a
    #: cold one, None when unknown (legacy pool, serial path).
    warm: bool | None = None


@dataclass
class PlanFailureReport:
    """Structured failure report for one plan: every attempt, in order."""

    plan: ExperimentPlan
    attempts: list[AttemptRecord] = field(default_factory=list)

    def describe(self) -> str:
        tries = "; ".join(f"attempt {a.attempt}: {a.error}"
                          for a in self.attempts)
        return f"{self.plan.describe()} [{tries}]"


class SuiteExecutionError(ExperimentError):
    """One or more plans exhausted their attempts. ``reports`` holds a
    :class:`PlanFailureReport` per failed plan — the structured
    replacement for the old flat message."""

    def __init__(self, reports: list[PlanFailureReport], total: int):
        self.reports = reports
        detail = "; ".join(r.describe() for r in reports)
        super().__init__(
            f"{len(reports)} of {total} plans failed: {detail}")


def execute_plan(plan: ExperimentPlan,
                 trace_store: "TraceStore | None" = None, *,
                 warm_cache: "WarmCache | None" = None) -> "ConfigResult":
    """Simulate one plan in this process (no result cache, no retry).

    With a ``trace_store``, the second cache level kicks in: a recorded
    retirement trace for this plan's *simulation* identity is replayed
    through the fused analysis engine (zero simulations), and a fresh
    simulation records its trace for future analysis-parameter changes.

    With a ``warm_cache``, the cross-plan warm level kicks in: the
    workload image comes from (or lands in) the per-process warm cache
    — fingerprint-verified on every reuse, a mismatch raises the
    transient :class:`WarmStateError` — and the image's translated
    block/summary sources round-trip through the on-disk block store,
    so repeat plans skip compile + decode + per-block codegen.

    Fault-injection site ``execute`` fires here (transient/error/hang),
    covering both the serial path and worker processes; the ``warm``
    site fires inside the warm cache on image reuse.
    """
    from repro.harness.experiments import run_config
    from repro.workloads import get_workload

    faults.check("execute")

    trace_writer = None
    if trace_store is not None:
        from repro.harness.experiments import replay_config
        from repro.sim.trace import TraceWriter, read_trace

        key = plan.trace_fingerprint()
        blob = trace_store.get(key)
        if blob is not None:
            return replay_config(read_trace(blob), plan)
        if plan.shards == 1:
            # A sharded plan skips trace *recording*: the trace sink
            # would force every slice onto the slow per-retirement path
            # (and exclude worker processes), costing far more than the
            # recorded trace could ever save. Replay above still works —
            # a trace recorded by any serial run of the same simulation
            # identity satisfies sharded plans too.
            trace_writer = TraceWriter()

    compiled = None
    if warm_cache is not None:
        compiled = warm_cache.program_for(plan)
        warm_cache.preload_blocks(compiled, plan.translate)

    workload = get_workload(plan.workload, plan.scale)
    result = run_config(
        workload,
        plan.isa,
        plan.profile,
        analysis=plan.analysis,
        models={plan.isa: plan.model},
        max_instructions=plan.max_instructions,
        trace_writer=trace_writer,
        translate=plan.translate,
        shards=plan.shards,
        compiled=compiled,
    )
    if warm_cache is not None and compiled is not None:
        warm_cache.export_blocks(compiled, plan.translate)
    if trace_store is not None and trace_writer is not None:
        trace_store.put(plan.trace_fingerprint(), trace_writer.finish())
    return result


def _heartbeat_loop(conn, lock, interval, stop, gate=None) -> None:
    """Worker-side heartbeat: periodic beats on the result pipe until
    stopped (or the pipe dies).

    When ``gate`` is given, beats are suppressed while it is clear —
    persistent workers clear it across the per-task ``worker`` fault
    check so an injected hang still looks like a worker that stopped
    beating, even though the thread outlives individual tasks.
    """
    while not stop.wait(interval):
        if gate is not None and not gate.is_set():
            continue
        with lock:
            try:
                conn.send({"hb": True})
            except Exception:
                return


def _child_main(conn, plan_doc: dict, trace_root: str | None = None,
                fault_doc: dict | None = None,
                heartbeat: float | None = None, attempt: int = 1) -> None:
    """Worker-process entry point: simulate and ship the result dict.

    Installs the serialized fault plan (if any) and checks the ``worker``
    site *before* the heartbeat thread starts — an injected ``hang``
    therefore models a truly wedged worker (no beats at all), and an
    injected ``crash`` dies without a report, exactly like the real
    failures they stand in for.
    """
    send_lock = threading.Lock()
    stop = threading.Event()
    try:
        plan = ExperimentPlan.from_dict(plan_doc)
        if fault_doc:
            faults.install(faults.FaultPlan.from_dict(fault_doc))
            faults.set_context(plan=plan.describe(), attempt=attempt,
                               in_worker=True)
            faults.check("worker")
        if heartbeat:
            threading.Thread(
                target=_heartbeat_loop,
                args=(conn, send_lock, min(1.0, heartbeat / 4.0), stop),
                daemon=True,
            ).start()
        store = TraceStore(trace_root) if trace_root else None
        started = time.monotonic()
        result = (execute_plan(plan, store) if store is not None
                  else execute_plan(plan))
        stop.set()
        with send_lock:
            conn.send({"ok": True, "result": result.to_dict(),
                       "seconds": time.monotonic() - started,
                       "trace_hit": bool(store and store.stats.hits),
                       "translation": result.translation})
    except (KeyboardInterrupt, SystemExit):
        # report, then RE-RAISE: Ctrl-C/SIGTERM must tear the worker
        # down promptly, not masquerade as a plan failure
        stop.set()
        try:
            with send_lock:
                conn.send({"ok": False, "error": "worker interrupted",
                           "transient": False})
        except Exception:
            pass
        raise
    except Exception as err:
        stop.set()
        report = getattr(err, "fault_report", None)
        try:
            with send_lock:
                conn.send({"ok": False,
                           "error": f"{type(err).__name__}: {err}",
                           "transient": isinstance(err, _TRANSIENT),
                           "fault": (report.to_dict()
                                     if report is not None else None)})
        except Exception:
            pass
    finally:
        stop.set()
        try:
            conn.close()
        except Exception:
            pass


def _pool_worker_main(task_conn, result_conn, trace_root: str | None = None,
                      fault_doc: dict | None = None,
                      heartbeat: float | None = None,
                      block_root: str | None = None,
                      worker: int = 0) -> None:
    """Persistent-worker entry point: loop over tasks from the queue.

    One process, many plans: the :class:`WarmCache` built here outlives
    every task, so the second plan on this worker reuses the first's
    workload image and translated blocks. Per task the worker receives
    ``{"plan": doc, "attempt": n}``, replies with a result/failure
    message tagged ``warm`` (did this attempt run on a reused worker?)
    and ``warm_stats`` (that task's cache-counter movement), and waits
    for the next. ``{"stop": True}`` (or queue EOF) retires it.

    A :class:`WarmStateError` — the fingerprint re-check caught a
    poisoned warm entry — is reported with ``poisoned=True`` and the
    worker *exits*: a process that corrupted one cache entry cannot be
    trusted with the rest, so the parent respawns a clean one and the
    plan retries there. The ``worker`` fault site is checked before
    each task, matching the legacy one-check-per-spawn semantics
    task-for-task; the heartbeat gate stays closed across that check so
    an injected ``hang`` still models a worker that never beats, even
    when the heartbeat thread is already running from an earlier task.
    """
    send_lock = threading.Lock()
    stop = threading.Event()
    beating = threading.Event()
    if fault_doc:
        faults.install(faults.FaultPlan.from_dict(fault_doc))
    store = TraceStore(trace_root) if trace_root else None
    block_store = BlockStore(block_root) if block_root else None
    warm = WarmCache(block_store)
    set_block_root(block_root)
    hb_started = False
    tasks_done = 0
    try:
        while True:
            try:
                task = task_conn.recv()
            except (EOFError, OSError):
                return
            if not isinstance(task, dict) or task.get("stop"):
                return
            plan = ExperimentPlan.from_dict(task["plan"])
            attempt = int(task.get("attempt", 1))
            was_warm = tasks_done > 0
            started = time.monotonic()
            beating.clear()
            try:
                if fault_doc:
                    faults.set_context(plan=plan.describe(), attempt=attempt,
                                       in_worker=True)
                    faults.check("worker")
                if heartbeat and not hb_started:
                    threading.Thread(
                        target=_heartbeat_loop,
                        args=(result_conn, send_lock,
                              min(1.0, heartbeat / 4.0), stop, beating),
                        daemon=True,
                    ).start()
                    hb_started = True
                beating.set()
                trace_hits = store.stats.hits if store is not None else 0
                result = execute_plan(plan, store, warm_cache=warm)
                with send_lock:
                    result_conn.send({
                        "ok": True, "result": result.to_dict(),
                        "seconds": time.monotonic() - started,
                        "trace_hit": bool(store is not None
                                          and store.stats.hits > trace_hits),
                        "translation": result.translation,
                        "warm": was_warm,
                        "warm_stats": warm.take_delta(),
                    })
            except (KeyboardInterrupt, SystemExit):
                try:
                    with send_lock:
                        result_conn.send({"ok": False,
                                          "error": "worker interrupted",
                                          "transient": False,
                                          "warm": was_warm})
                except Exception:
                    pass
                raise
            except Exception as err:
                poisoned = isinstance(err, WarmStateError)
                report = getattr(err, "fault_report", None)
                try:
                    with send_lock:
                        result_conn.send({
                            "ok": False,
                            "error": f"{type(err).__name__}: {err}",
                            "transient": isinstance(err, _TRANSIENT),
                            "fault": (report.to_dict()
                                      if report is not None else None),
                            "warm": was_warm,
                            "poisoned": poisoned,
                            "warm_stats": warm.take_delta(),
                        })
                except Exception:
                    pass
                if poisoned:
                    return
            tasks_done += 1
            # Close the heartbeat gate while idle: a persistent worker
            # may sit between tasks (or between whole runs, when the
            # parent Executor is persistent) with nobody draining the
            # result pipe — unchecked beats would fill the pipe buffer
            # and wedge the heartbeat thread while it holds send_lock,
            # deadlocking the next task's result send.
            beating.clear()
    finally:
        stop.set()
        for conn in (task_conn, result_conn):
            try:
                conn.close()
            except Exception:
                pass


def _stop_pool_worker(worker: dict, *, force: bool) -> None:
    """Stop one pool worker process and close its pipes. With
    ``force=False`` the worker drains its current task first (a ``stop``
    message queues behind it); ``force=True`` terminates outright."""
    if not force:
        try:
            worker["task"].send({"stop": True})
        except Exception:
            force = True
    if force:
        worker["proc"].terminate()
    worker["proc"].join(timeout=None if force else 5.0)
    if worker["proc"].is_alive():
        worker["proc"].terminate()
        worker["proc"].join()
    for conn in (worker["task"], worker["res"]):
        try:
            conn.close()
        except Exception:
            pass


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def backoff_delay(failed_attempt: int, *, base: float, cap: float,
                  rng: random.Random) -> float:
    """Exponential backoff with seeded jitter: the wait before the
    attempt after ``failed_attempt``. Shared by the executor's retry
    policy, the dist dispatcher's cross-node redispatch and the worker
    agent's reconnect loop, so every retry path in the system jitters
    the same way."""
    if base <= 0:
        return 0.0
    delay = min(base * (2 ** (failed_attempt - 1)), cap)
    return delay * (0.5 + 0.5 * rng.random())


def validate_limits(*, jobs: int | None = None, timeout: float | None = None,
                    heartbeat: float | None = None, retries: int = 0) -> None:
    """Reject invalid supervision knobs before any work (or journal) starts."""
    if jobs is not None and jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    if heartbeat is not None and heartbeat <= 0:
        raise ExperimentError(
            f"heartbeat must be positive, got {heartbeat}")
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")


class Executor:
    """Runs batches of plans with caching, parallelism and supervision.

    Args:
        jobs: worker processes; None (the default) picks one per CPU,
            capped at the number of plans actually needing simulation.
            1 runs in-process.
        cache: optional :class:`ResultCache`; hits skip simulation and
            fresh results are written back. Its trace level replays
            recorded retirement streams for plans that differ only in
            analysis parameters.
        events: optional :class:`EventBus` for progress telemetry.
        timeout: per-plan wall-clock limit in seconds. Enforced by
            running plans in killable worker processes, so setting it
            forces the process path even with ``jobs=1``.
        heartbeat: hang-detection deadline in seconds, distinct from the
            timeout: workers beat every ``heartbeat/4`` (capped at 1s),
            and a worker silent for longer than ``heartbeat`` is killed
            and its plan retried as a transient failure. Setting it
            forces the process path (a wedged in-process plan cannot be
            supervised).
        retries: extra attempts after a transient failure (default 1).
        backoff: base delay before a retry; attempt ``n`` waits
            ``backoff * 2**(n-1)`` (capped at ``backoff_cap``) scaled by
            seeded jitter in [0.5, 1.0]. 0 disables the wait.
        backoff_cap: upper bound on the exponential delay.
        warm_pool: keep worker processes alive across plans with warm
            per-process caches (the default). False restores the legacy
            fresh-process-per-plan-attempt pool and a cache-less serial
            path — the byte-identity baseline warm mode is tested
            against.
        max_tasks_per_worker: retire a warm worker after this many
            tasks (0 = never); a fresh process takes its place while
            plans remain.
        persistent: keep warm pool workers alive *across* ``run()``
            calls (the serve daemon's execution tier: the second
            request's plans land on workers still warm from the first).
            The caller owns the lifetime — call :meth:`close` (or use
            the executor as a context manager) to retire the fleet.
            ``max_tasks_per_worker`` counts across runs, so worker
            hygiene keeps working for a long-lived daemon. Implies
            ``warm_pool``.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        events: EventBus | None = None,
        timeout: float | None = None,
        heartbeat: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        warm_pool: bool = True,
        max_tasks_per_worker: int = 0,
        persistent: bool = False,
    ):
        validate_limits(jobs=jobs, timeout=timeout, heartbeat=heartbeat,
                        retries=retries)
        if max_tasks_per_worker < 0:
            raise ExperimentError(
                f"max_tasks_per_worker must be >= 0, got "
                f"{max_tasks_per_worker}")
        self.jobs = jobs
        self.cache = cache
        self.events = events or EventBus()
        self.timeout = timeout
        self.heartbeat = heartbeat
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        if persistent and not warm_pool:
            raise ExperimentError(
                "persistent=True requires warm_pool=True (the legacy "
                "pool has no workers to keep alive)")
        self.warm_pool = warm_pool
        self.max_tasks_per_worker = max_tasks_per_worker
        self.persistent = persistent
        #: Live pool workers carried across ``run()`` calls when
        #: :attr:`persistent`; always empty otherwise.
        self._pool_workers: list[dict] = []
        self._pool_next_slot = 0
        self._pool_fault_doc: dict | None = None
        #: Seeded jitter: deterministic per Executor instance.
        self._rng = random.Random(0x5EED)
        #: In-process warm cache for the serial path (persists across
        #: ``run`` calls, like a long-lived worker would).
        self._serial_warm: WarmCache | None = None
        #: Aggregated warm counters for the current ``run``.
        self._warm_totals: dict[str, int] = {}

    # -- public API ------------------------------------------------------

    def run(self, plans: Sequence[ExperimentPlan],
            ) -> dict[ExperimentPlan, "ConfigResult"]:
        """Execute a batch; returns ``{plan: result}`` in input order."""
        plans = list(plans)
        started = time.monotonic()
        results: dict[ExperimentPlan, "ConfigResult"] = {}
        indices = {plan: i + 1 for i, plan in enumerate(plans)}
        total = len(plans)
        if self.cache is not None and self.cache.events is None:
            self.cache.attach_events(self.events)

        todo: list[ExperimentPlan] = []
        for plan in plans:
            cached = self.cache.get(plan) if self.cache is not None else None
            if cached is not None:
                results[plan] = cached
                self.events.emit(PlanCacheHit(
                    plan=plan, index=indices[plan], total=total,
                    key=plan.fingerprint()))
            else:
                todo.append(plan)
        # one worker per CPU by default, never more than there is work
        jobs = self.jobs or min(os.cpu_count() or 1, max(1, len(todo)))
        self.events.emit(SuiteStarted(
            total=total, jobs=jobs, cached=len(results)))

        reports: dict[ExperimentPlan, PlanFailureReport] = {}
        failures: dict[ExperimentPlan, str] = {}
        self._warm_totals = {}
        warm_serial: WarmCache | None = None
        prev_block_root = None
        if todo and self.warm_pool:
            from repro.harness.warmcache import get_block_root

            warm_serial = self._warm_cache()
            warm_serial.take_delta()  # discard activity from prior runs
            # Park the block-store root where sharding's slice launcher
            # can find it (slice children preload block sources too).
            prev_block_root = get_block_root()
            set_block_root(str(self.cache.blocks.root)
                           if self.cache is not None else None)
        try:
            if todo:
                supervised = (self.timeout is not None
                              or self.heartbeat is not None)
                # Sharded plans fan out their own per-slice worker
                # processes; the pool's daemonic workers cannot fork, so
                # those plans take the serial path and parallelize
                # *internally* instead of nesting inside the pool.
                sharded = [plan for plan in todo if plan.shards != 1]
                pooled = [plan for plan in todo if plan.shards == 1]
                if pooled:
                    if (jobs == 1 or len(pooled) == 1) and not supervised:
                        results.update(self._run_serial(
                            pooled, indices, total, failures, reports,
                            warm=warm_serial))
                    elif self.warm_pool:
                        results.update(self._run_warm_pool(
                            pooled, indices, total, failures, reports, jobs))
                    else:
                        results.update(self._run_pool(
                            pooled, indices, total, failures, reports, jobs))
                if sharded:
                    results.update(self._run_serial(
                        sharded, indices, total, failures, reports,
                        warm=warm_serial))
        finally:
            if warm_serial is not None:
                set_block_root(prev_block_root)
                self._merge_warm(warm_serial.take_delta())
        if self.warm_pool and todo:
            self.events.emit(WarmCacheStats(stats=dict(self._warm_totals)))

        self.events.emit(SuiteFinished(
            total=total,
            executed=len(todo) - len(failures),
            cached=total - len(todo),
            failed=len(failures),
            seconds=time.monotonic() - started,
        ))
        if failures:
            raise SuiteExecutionError(
                [reports[plan] for plan in failures], total)
        return {plan: results[plan] for plan in plans}

    def run_suite(
        self,
        scale: float = 1.0,
        *,
        workloads: tuple[str, ...] | None = None,
        windowed: bool = True,
        window_sizes: tuple[int, ...] | None = None,
        slide_fraction: float = 0.5,
        models: dict[str, str] | None = None,
        max_instructions: int = 500_000_000,
        translate: bool = True,
        shards: int = 1,
    ) -> "SuiteResult":
        """Plan and execute the paper matrix; assemble a SuiteResult."""
        from repro.analysis.windowed import PAPER_WINDOW_SIZES
        from repro.harness.experiments import SuiteResult
        from repro.workloads import get_workload

        sizes = tuple(window_sizes) if window_sizes else PAPER_WINDOW_SIZES
        plans = plan_suite(
            scale,
            workloads=workloads,
            windowed=windowed,
            window_sizes=sizes,
            slide_fraction=slide_fraction,
            models=models,
            max_instructions=max_instructions,
            translate=translate,
            shards=shards,
        )
        results = self.run(plans)
        names = tuple(workloads) if workloads else tuple(
            dict.fromkeys(plan.workload for plan in plans))
        suite = SuiteResult(
            scale=scale,
            workloads={name: get_workload(name, scale) for name in names},
            window_sizes=sizes,
        )
        for plan, result in results.items():
            suite.configs[plan.config_key] = result
        return suite

    def close(self) -> None:
        """Retire every persistent pool worker (idempotent; a no-op for
        non-persistent executors, whose pools die with each ``run``)."""
        for worker in list(self._pool_workers):
            tasks, slot = worker["tasks"], worker["slot"]
            _stop_pool_worker(worker, force=False)
            self._pool_workers.remove(worker)
            if tasks:
                self.events.emit(WorkerRecycled(
                    worker=slot, tasks=tasks, reason="shutdown"))

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- warm-cache plumbing ---------------------------------------------

    def _warm_cache(self) -> WarmCache:
        """The serial path's per-Executor warm cache (created lazily, so
        a ``warm_pool=False`` executor never touches warm state)."""
        if self._serial_warm is None:
            block_store = self.cache.blocks if self.cache is not None else None
            self._serial_warm = WarmCache(block_store)
        return self._serial_warm

    def _merge_warm(self, delta: dict | None) -> None:
        for key, value in (delta or {}).items():
            self._warm_totals[key] = self._warm_totals.get(key, 0) + value

    # -- retry policy ----------------------------------------------------

    def _backoff_delay(self, failed_attempt: int) -> float:
        """Exponential backoff with seeded jitter: the wait before the
        attempt after ``failed_attempt``."""
        return backoff_delay(failed_attempt, base=self.backoff,
                             cap=self.backoff_cap, rng=self._rng)

    def _record_failure(self, reports, plan, attempt, message, transient,
                        seconds=0.0, fault=None, warm=None,
                        ) -> tuple[bool, tuple[str, ...]]:
        """Append an attempt record; returns (will_retry, prior_errors)."""
        report = reports.get(plan)
        if report is None:
            report = reports[plan] = PlanFailureReport(plan=plan)
        history = tuple(a.error for a in report.attempts)
        report.attempts.append(AttemptRecord(
            attempt=attempt, error=message, transient=transient,
            seconds=seconds, fault=fault, warm=warm))
        return (transient and attempt <= self.retries), history

    # -- serial path -----------------------------------------------------

    def _run_serial(self, todo, indices, total, failures, reports,
                    warm: WarmCache | None = None):
        results = {}
        traces = self.cache.traces if self.cache is not None else None
        injecting = faults.active() is not None
        for plan in todo:
            attempt = 1
            while True:
                self.events.emit(PlanStarted(
                    plan=plan, index=indices[plan], total=total,
                    attempt=attempt))
                plan_started = time.monotonic()
                trace_hits = traces.stats.hits if traces is not None else 0
                if injecting:
                    faults.set_context(plan=plan.describe(), attempt=attempt,
                                       in_worker=False)
                try:
                    result = execute_plan(plan, traces, warm_cache=warm)
                except _TRANSIENT as err:
                    message = f"{type(err).__name__}: {err}"
                    seconds = time.monotonic() - plan_started
                    retry, history = self._record_failure(
                        reports, plan, attempt, message, True, seconds)
                    self.events.emit(PlanFailed(
                        plan=plan, error=message, attempt=attempt,
                        will_retry=retry, history=history))
                    if not retry:
                        failures[plan] = message
                        break
                    delay = self._backoff_delay(attempt)
                    if delay:
                        time.sleep(delay)
                    attempt += 1
                    continue
                except (ReproError, AssertionError) as err:
                    # deterministic: simulator/config bugs surface as-is
                    message = f"{type(err).__name__}: {err}"
                    fault = getattr(err, "fault_report", None)
                    _retry, history = self._record_failure(
                        reports, plan, attempt, message, False,
                        time.monotonic() - plan_started,
                        fault=fault.to_dict() if fault is not None else None)
                    self.events.emit(PlanFailed(
                        plan=plan, error=message,
                        attempt=attempt, will_retry=False, history=history))
                    raise
                seconds = time.monotonic() - plan_started
                if traces is not None and traces.stats.hits > trace_hits:
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                if result.shard_stats is not None:
                    self.events.emit(PlanShardStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.shard_stats))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                results[plan] = result
                if self.cache is not None:
                    if injecting:
                        faults.set_context(plan=plan.describe(),
                                           attempt=attempt, in_worker=False)
                    self.cache.put(plan, result, seconds=seconds)
                break
        return results

    # -- warm persistent pool --------------------------------------------

    def _run_warm_pool(self, todo, indices, total, failures, reports, jobs):
        """Queue-based dispatch over persistent warm workers.

        Up to ``jobs`` long-lived processes each run one task at a
        time; a finished worker immediately pulls the next ready plan,
        so retries land on live warm workers instead of paying a fresh
        fork (the queue is the reuse mechanism). The PR 4 supervision
        contract carries over task-for-task: per-task wall-clock
        ``timeout``, per-task ``heartbeat`` deadline, transient retries
        with seeded backoff, strike-counted pool failures degrading to
        serial. Workers additionally recycle — after
        ``max_tasks_per_worker`` tasks, on any death/timeout/hang, and
        on a ``poisoned`` warm-state report — each recycle emitting
        :class:`WorkerRecycled`.
        """
        from repro.harness.experiments import ConfigResult

        ctx = _mp_context()
        pending: list[tuple[ExperimentPlan, int, float]] = [
            (plan, 1, 0.0) for plan in todo]
        results = {}
        trace_root = (str(self.cache.traces.root)
                      if self.cache is not None else None)
        block_root = (str(self.cache.blocks.root)
                      if self.cache is not None else None)
        fault_doc = faults.export()
        injecting = fault_doc is not None
        if self.persistent:
            # Reuse the fleet from prior runs. A changed fault plan
            # invalidates the workers (they installed the old one at
            # spawn), and a worker that died while idle is swept here
            # rather than striking against this run.
            if self._pool_workers and self._pool_fault_doc != fault_doc:
                self.close()
            self._pool_fault_doc = fault_doc
            workers = self._pool_workers
            for worker in list(workers):
                if not worker["proc"].is_alive():
                    tasks, slot = worker["tasks"], worker["slot"]
                    _stop_pool_worker(worker, force=True)
                    workers.remove(worker)
                    self.events.emit(WorkerRecycled(
                        worker=slot, tasks=tasks, reason="fault"))
        else:
            workers = []
        strikes = 0
        degraded = False
        orphans: list[ExperimentPlan] = []

        def spawn() -> dict:
            task_recv, task_send = ctx.Pipe(duplex=False)
            res_recv, res_send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_pool_worker_main,
                args=(task_recv, res_send, trace_root, fault_doc,
                      self.heartbeat, block_root, self._pool_next_slot),
                daemon=True,
            )
            proc.start()
            task_recv.close()
            res_send.close()
            worker = {"proc": proc, "task": task_send, "res": res_recv,
                      "slot": self._pool_next_slot, "tasks": 0,
                      "current": None}  # [plan, attempt, started, last_beat]
            self._pool_next_slot += 1
            workers.append(worker)
            return worker

        def close_worker(worker, *, force: bool) -> None:
            _stop_pool_worker(worker, force=force)
            if worker in workers:
                workers.remove(worker)

        def recycle(worker, reason: str, *, force: bool) -> None:
            tasks, slot = worker["tasks"], worker["slot"]
            close_worker(worker, force=force)
            self.events.emit(WorkerRecycled(
                worker=slot, tasks=tasks, reason=reason))

        def finish(plan, attempt, started, message=None, transient=False,
                   payload=None, fault=None, warm=None):
            nonlocal strikes
            if payload is not None:
                strikes = 0
                seconds = payload.get("seconds", 0.0)
                result = ConfigResult.from_dict(payload["result"])
                result.translation = payload.get("translation")
                results[plan] = result
                if payload.get("trace_hit"):
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                if self.cache is not None:
                    if injecting:
                        faults.set_context(plan=plan.describe(),
                                           attempt=attempt, in_worker=False)
                    self.cache.put(plan, result, seconds=seconds)
                return
            retry, history = self._record_failure(
                reports, plan, attempt, message, transient,
                time.monotonic() - started, fault=fault, warm=warm)
            self.events.emit(PlanFailed(
                plan=plan, error=message, attempt=attempt,
                will_retry=retry, history=history))
            if retry:
                pending.append((plan, attempt + 1,
                                time.monotonic() + self._backoff_delay(attempt)))
            else:
                failures[plan] = message

        def pop_ready():
            now = time.monotonic()
            for i, item in enumerate(pending):
                if item[2] <= now:
                    return pending.pop(i)
            return None

        try:
            while pending or any(w["current"] is not None for w in workers):
                # dispatch ready plans onto idle (warm-first) workers
                while pending:
                    idle = next((w for w in workers
                                 if w["current"] is None), None)
                    if idle is None and len(workers) >= jobs:
                        break
                    item = pop_ready()
                    if item is None:
                        break  # retries still backing off
                    plan, attempt, _ready = item
                    if idle is None:
                        idle = spawn()
                    try:
                        idle["task"].send({"plan": plan.to_dict(),
                                           "attempt": attempt})
                    except Exception:
                        recycle(idle, "fault", force=True)
                        pending.append((plan, attempt, 0.0))
                        continue
                    self.events.emit(PlanStarted(
                        plan=plan, index=indices[plan], total=total,
                        attempt=attempt))
                    now = time.monotonic()
                    idle["current"] = [plan, attempt, now, now]

                time.sleep(_POLL_S)
                for worker in list(workers):
                    proc = worker["proc"]
                    msg = None
                    closed = False
                    while worker["res"].poll():
                        try:
                            received = worker["res"].recv()
                        except (EOFError, OSError):
                            closed = True
                            break
                        if isinstance(received, dict) and "hb" in received:
                            if worker["current"] is not None:
                                worker["current"][3] = time.monotonic()
                            continue
                        msg = received
                        break
                    current = worker["current"]
                    if msg is not None and current is not None:
                        plan, attempt, started, _beat = current
                        worker["current"] = None
                        worker["tasks"] += 1
                        self._merge_warm(msg.get("warm_stats"))
                        if msg.get("ok"):
                            finish(plan, attempt, started, payload=msg)
                        else:
                            finish(plan, attempt, started,
                                   message=msg.get("error", "unknown error"),
                                   transient=bool(msg.get("transient")),
                                   fault=msg.get("fault"),
                                   warm=msg.get("warm"))
                        if msg.get("poisoned"):
                            recycle(worker, "poisoned", force=True)
                        elif (self.max_tasks_per_worker
                              and worker["tasks"]
                              >= self.max_tasks_per_worker):
                            recycle(worker, "max-tasks", force=False)
                        continue
                    if closed or not proc.is_alive():
                        exitcode = proc.exitcode
                        was_warm = worker["tasks"] > 0
                        recycle(worker, "fault", force=True)
                        if current is not None:
                            plan, attempt, started, _beat = current
                            strikes += 1
                            finish(plan, attempt, started,
                                   message=("worker pipe closed unexpectedly"
                                            if closed else
                                            f"worker died (exit code "
                                            f"{exitcode})"),
                                   transient=True, warm=was_warm)
                        continue
                    if current is None:
                        continue
                    plan, attempt, started, last_beat = current
                    now = time.monotonic()
                    if (self.timeout is not None
                            and now - started > self.timeout):
                        was_warm = worker["tasks"] > 0
                        recycle(worker, "fault", force=True)
                        finish(plan, attempt, started,
                               message=f"timed out after {self.timeout:g}s",
                               transient=True, warm=was_warm)
                    elif (self.heartbeat is not None
                          and now - last_beat > self.heartbeat):
                        was_warm = worker["tasks"] > 0
                        recycle(worker, "fault", force=True)
                        finish(plan, attempt, started,
                               message=f"worker heartbeat lost (silent for "
                                       f"> {self.heartbeat:g}s)",
                               transient=True, warm=was_warm)
                if strikes >= POOL_FAILURE_LIMIT:
                    degraded = True
                    orphans = [w["current"][0] for w in workers
                               if w["current"] is not None]
                    break
        finally:
            if self.persistent and not degraded:
                # Workers stay warm for the next run(); close() retires
                # them. A degraded fleet is never kept.
                pass
            else:
                for worker in list(workers):
                    tasks, slot = worker["tasks"], worker["slot"]
                    close_worker(worker, force=degraded)
                    if tasks and not degraded:
                        self.events.emit(WorkerRecycled(
                            worker=slot, tasks=tasks, reason="shutdown"))

        if degraded:
            # the pool itself is failing (not individual plans): run the
            # remainder in-process, where there is no pipe to break and
            # no fork to die. Plans restart their attempt counters.
            leftover = [plan for plan, _a, _r in pending]
            leftover.extend(orphans)
            self.events.emit(ExecutorDegraded(
                failures=strikes, remaining=len(leftover),
                reason="consecutive worker deaths/pipe failures"))
            results.update(self._run_serial(
                leftover, indices, total, failures, reports,
                warm=self._warm_cache()))
        return results

    # -- legacy process-per-plan pool ------------------------------------

    def _run_pool(self, todo, indices, total, failures, reports, jobs):
        from repro.harness.experiments import ConfigResult

        ctx = _mp_context()
        # (plan, attempt, ready_at): backoff delays schedule retries
        pending: list[tuple[ExperimentPlan, int, float]] = [
            (plan, 1, 0.0) for plan in todo]
        active = {}  # Process -> [plan, attempt, conn, started, last_beat]
        results = {}
        trace_root = (str(self.cache.traces.root)
                      if self.cache is not None else None)
        fault_doc = faults.export()
        injecting = fault_doc is not None
        strikes = 0       # consecutive pool-level failures
        degraded = False

        def finish(plan, attempt, started, message=None, transient=False,
                   payload=None, fault=None):
            nonlocal strikes
            if payload is not None:
                strikes = 0
                seconds = payload.get("seconds", 0.0)
                result = ConfigResult.from_dict(payload["result"])
                result.translation = payload.get("translation")
                results[plan] = result
                if payload.get("trace_hit"):
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                if self.cache is not None:
                    if injecting:
                        faults.set_context(plan=plan.describe(),
                                           attempt=attempt, in_worker=False)
                    self.cache.put(plan, result, seconds=seconds)
                return
            retry, history = self._record_failure(
                reports, plan, attempt, message, transient,
                time.monotonic() - started, fault=fault)
            self.events.emit(PlanFailed(
                plan=plan, error=message, attempt=attempt,
                will_retry=retry, history=history))
            if retry:
                pending.append((plan, attempt + 1,
                                time.monotonic() + self._backoff_delay(attempt)))
            else:
                failures[plan] = message

        def reap(proc, conn):
            proc.join()
            del active[proc]
            conn.close()

        def pop_ready():
            now = time.monotonic()
            for i, item in enumerate(pending):
                if item[2] <= now:
                    return pending.pop(i)
            return None

        try:
            while pending or active:
                while pending and len(active) < jobs:
                    item = pop_ready()
                    if item is None:
                        break  # retries still backing off
                    plan, attempt, _ready = item
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_child_main,
                        args=(child_conn, plan.to_dict(), trace_root,
                              fault_doc, self.heartbeat, attempt),
                        daemon=True,
                    )
                    self.events.emit(PlanStarted(
                        plan=plan, index=indices[plan], total=total,
                        attempt=attempt))
                    proc.start()
                    child_conn.close()
                    now = time.monotonic()
                    active[proc] = [plan, attempt, parent_conn, now, now]

                time.sleep(_POLL_S)
                for proc in list(active):
                    plan, attempt, conn, started, last_beat = active[proc]
                    final = False
                    msg = None
                    while conn.poll():
                        try:
                            received = conn.recv()
                        except (EOFError, OSError):
                            final = True
                            msg = None
                            break
                        if isinstance(received, dict) and "hb" in received:
                            active[proc][4] = time.monotonic()
                            continue
                        final = True
                        msg = received
                        break
                    if final:
                        reap(proc, conn)
                        if msg is None:
                            strikes += 1
                            finish(plan, attempt, started,
                                   message="worker pipe closed unexpectedly",
                                   transient=True)
                        elif msg.get("ok"):
                            finish(plan, attempt, started, payload=msg)
                        else:
                            finish(plan, attempt, started,
                                   message=msg.get("error", "unknown error"),
                                   transient=bool(msg.get("transient")),
                                   fault=msg.get("fault"))
                    elif not proc.is_alive():
                        exitcode = proc.exitcode
                        reap(proc, conn)
                        strikes += 1
                        finish(plan, attempt, started,
                               message=f"worker died (exit code {exitcode})",
                               transient=True)
                    elif (self.timeout is not None
                          and time.monotonic() - started > self.timeout):
                        proc.terminate()
                        reap(proc, conn)
                        finish(plan, attempt, started,
                               message=f"timed out after {self.timeout:g}s",
                               transient=True)
                    elif (self.heartbeat is not None
                          and time.monotonic() - last_beat > self.heartbeat):
                        proc.terminate()
                        reap(proc, conn)
                        finish(plan, attempt, started,
                               message=f"worker heartbeat lost (silent for "
                                       f"> {self.heartbeat:g}s)",
                               transient=True)
                if strikes >= POOL_FAILURE_LIMIT:
                    degraded = True
                    break
        finally:
            for proc, (_plan, _attempt, conn, _started, _beat) in \
                    active.items():
                proc.terminate()
                proc.join()
                conn.close()

        if degraded:
            # the pool itself is failing (not individual plans): run the
            # remainder in-process, where there is no pipe to break and
            # no fork to die. Plans restart their attempt counters.
            leftover = [plan for plan, _a, _r in pending]
            leftover.extend(state[0] for state in active.values())
            active.clear()
            self.events.emit(ExecutorDegraded(
                failures=strikes, remaining=len(leftover),
                reason="consecutive worker deaths/pipe failures"))
            results.update(self._run_serial(
                leftover, indices, total, failures, reports))
        return results
