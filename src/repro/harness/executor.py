"""Plan execution: serial or process-parallel, cached, with retry.

The :class:`Executor` turns a batch of :class:`ExperimentPlan` values
into :class:`ConfigResult` values. For each plan it

1. consults the optional on-disk :class:`ResultCache` (a hit skips
   simulation entirely); on a result-level miss, the cache's trace level
   can still satisfy the plan by replaying a recorded retirement stream
   through the fused analysis engine (:func:`execute_plan`);
2. otherwise simulates — in-process when only one worker would be used
   (``jobs == 1`` or a single outstanding plan) and no timeout is
   requested, else in a worker process (``multiprocessing``, fork start
   method where available) so the matrix fans out across cores and a
   wedged simulation can be killed on timeout. ``jobs=None`` defaults to
   one worker per CPU, capped at the number of plans to simulate;
3. retries once (configurable) on *transient* failures — a worker killed
   by a signal, a timeout, an OS-level error — and raises
   :class:`ExperimentError` for anything that remains failed;
4. emits structured telemetry (:mod:`repro.harness.events`) throughout.

Results computed in worker processes travel back through the same
versioned ``to_dict``/``from_dict`` round-trip the cache uses, so the
parallel path is bit-identical to the serial one by construction.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import ExperimentError, ReproError
from repro.harness.cache import ResultCache, TraceStore
from repro.harness.events import (
    EventBus,
    PlanCacheHit,
    PlanFailed,
    PlanFinished,
    PlanStarted,
    PlanTraceHit,
    PlanTranslationStats,
    SuiteFinished,
    SuiteStarted,
)
from repro.harness.plan import ExperimentPlan, plan_suite

if TYPE_CHECKING:
    from repro.harness.experiments import ConfigResult, SuiteResult

#: Failure classes worth one more attempt; everything else is
#: deterministic and retrying would only double the wall-clock.
_TRANSIENT = (OSError, EOFError, MemoryError, TimeoutError)

#: Polling interval for the process scheduler, seconds.
_POLL_S = 0.02


def execute_plan(plan: ExperimentPlan,
                 trace_store: "TraceStore | None" = None) -> "ConfigResult":
    """Simulate one plan in this process (no result cache, no retry).

    With a ``trace_store``, the second cache level kicks in: a recorded
    retirement trace for this plan's *simulation* identity is replayed
    through the fused analysis engine (zero simulations), and a fresh
    simulation records its trace for future analysis-parameter changes.
    """
    from repro.harness.experiments import run_config
    from repro.workloads import get_workload

    trace_writer = None
    if trace_store is not None:
        from repro.harness.experiments import replay_config
        from repro.sim.trace import TraceWriter, read_trace

        key = plan.trace_fingerprint()
        blob = trace_store.get(key)
        if blob is not None:
            return replay_config(read_trace(blob), plan)
        trace_writer = TraceWriter()

    workload = get_workload(plan.workload, plan.scale)
    result = run_config(
        workload,
        plan.isa,
        plan.profile,
        windowed=plan.windowed,
        window_sizes=plan.window_sizes,
        slide_fraction=plan.slide_fraction,
        models={plan.isa: plan.model},
        max_instructions=plan.max_instructions,
        trace_writer=trace_writer,
        translate=plan.translate,
    )
    if trace_store is not None and trace_writer is not None:
        trace_store.put(plan.trace_fingerprint(), trace_writer.finish())
    return result


def _child_main(conn, plan_doc: dict, trace_root: str | None = None) -> None:
    """Worker-process entry point: simulate and ship the result dict."""
    try:
        plan = ExperimentPlan.from_dict(plan_doc)
        store = TraceStore(trace_root) if trace_root else None
        started = time.monotonic()
        result = (execute_plan(plan, store) if store is not None
                  else execute_plan(plan))
        conn.send({"ok": True, "result": result.to_dict(),
                   "seconds": time.monotonic() - started,
                   "trace_hit": bool(store and store.stats.hits),
                   "translation": result.translation})
    except BaseException as err:  # noqa: BLE001 — must report, not crash
        try:
            conn.send({"ok": False,
                       "error": f"{type(err).__name__}: {err}",
                       "transient": isinstance(err, _TRANSIENT)})
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


class Executor:
    """Runs batches of plans with caching, parallelism and retry.

    Args:
        jobs: worker processes; None (the default) picks one per CPU,
            capped at the number of plans actually needing simulation.
            1 runs in-process.
        cache: optional :class:`ResultCache`; hits skip simulation and
            fresh results are written back. Its trace level replays
            recorded retirement streams for plans that differ only in
            analysis parameters.
        events: optional :class:`EventBus` for progress telemetry.
        timeout: per-plan wall-clock limit in seconds. Enforced by
            running plans in killable worker processes, so setting it
            forces the process path even with ``jobs=1``.
        retries: extra attempts after a transient failure (default 1).
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        events: EventBus | None = None,
        timeout: float | None = None,
        retries: int = 1,
    ):
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ExperimentError(f"timeout must be positive, got {timeout}")
        self.jobs = jobs
        self.cache = cache
        self.events = events or EventBus()
        self.timeout = timeout
        self.retries = retries

    # -- public API ------------------------------------------------------

    def run(self, plans: Sequence[ExperimentPlan],
            ) -> dict[ExperimentPlan, "ConfigResult"]:
        """Execute a batch; returns ``{plan: result}`` in input order."""
        plans = list(plans)
        started = time.monotonic()
        results: dict[ExperimentPlan, "ConfigResult"] = {}
        indices = {plan: i + 1 for i, plan in enumerate(plans)}
        total = len(plans)

        todo: list[ExperimentPlan] = []
        for plan in plans:
            cached = self.cache.get(plan) if self.cache is not None else None
            if cached is not None:
                results[plan] = cached
                self.events.emit(PlanCacheHit(
                    plan=plan, index=indices[plan], total=total,
                    key=plan.fingerprint()))
            else:
                todo.append(plan)
        # one worker per CPU by default, never more than there is work
        jobs = self.jobs or min(os.cpu_count() or 1, max(1, len(todo)))
        self.events.emit(SuiteStarted(
            total=total, jobs=jobs, cached=len(results)))

        failures: dict[ExperimentPlan, str] = {}
        if todo:
            if (jobs == 1 or len(todo) == 1) and self.timeout is None:
                fresh = self._run_serial(todo, indices, total, failures)
            else:
                fresh = self._run_pool(todo, indices, total, failures, jobs)
            results.update(fresh)

        self.events.emit(SuiteFinished(
            total=total,
            executed=len(todo) - len(failures),
            cached=total - len(todo),
            failed=len(failures),
            seconds=time.monotonic() - started,
        ))
        if failures:
            detail = "; ".join(f"{plan.describe()}: {err}"
                               for plan, err in failures.items())
            raise ExperimentError(
                f"{len(failures)} of {total} plans failed: {detail}"
            )
        return {plan: results[plan] for plan in plans}

    def run_suite(
        self,
        scale: float = 1.0,
        *,
        workloads: tuple[str, ...] | None = None,
        windowed: bool = True,
        window_sizes: tuple[int, ...] | None = None,
        slide_fraction: float = 0.5,
        models: dict[str, str] | None = None,
        max_instructions: int = 500_000_000,
        translate: bool = True,
    ) -> "SuiteResult":
        """Plan and execute the paper matrix; assemble a SuiteResult."""
        from repro.analysis.windowed import PAPER_WINDOW_SIZES
        from repro.harness.experiments import SuiteResult
        from repro.workloads import get_workload

        sizes = tuple(window_sizes) if window_sizes else PAPER_WINDOW_SIZES
        plans = plan_suite(
            scale,
            workloads=workloads,
            windowed=windowed,
            window_sizes=sizes,
            slide_fraction=slide_fraction,
            models=models,
            max_instructions=max_instructions,
            translate=translate,
        )
        results = self.run(plans)
        names = tuple(workloads) if workloads else tuple(
            dict.fromkeys(plan.workload for plan in plans))
        suite = SuiteResult(
            scale=scale,
            workloads={name: get_workload(name, scale) for name in names},
            window_sizes=sizes,
        )
        for plan, result in results.items():
            suite.configs[plan.config_key] = result
        return suite

    # -- serial path -----------------------------------------------------

    def _run_serial(self, todo, indices, total, failures):
        results = {}
        traces = self.cache.traces if self.cache is not None else None
        for plan in todo:
            attempt = 1
            while True:
                self.events.emit(PlanStarted(
                    plan=plan, index=indices[plan], total=total,
                    attempt=attempt))
                plan_started = time.monotonic()
                trace_hits = traces.stats.hits if traces is not None else 0
                try:
                    if traces is None:
                        result = execute_plan(plan)
                    else:
                        result = execute_plan(plan, traces)
                except _TRANSIENT as err:
                    message = f"{type(err).__name__}: {err}"
                    retry = attempt <= self.retries
                    self.events.emit(PlanFailed(
                        plan=plan, error=message, attempt=attempt,
                        will_retry=retry))
                    if not retry:
                        failures[plan] = message
                        break
                    attempt += 1
                    continue
                except (ReproError, AssertionError) as err:
                    # deterministic: simulator/config bugs surface as-is
                    self.events.emit(PlanFailed(
                        plan=plan, error=f"{type(err).__name__}: {err}",
                        attempt=attempt, will_retry=False))
                    raise
                seconds = time.monotonic() - plan_started
                if traces is not None and traces.stats.hits > trace_hits:
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                results[plan] = result
                if self.cache is not None:
                    self.cache.put(plan, result, seconds=seconds)
                break
        return results

    # -- process pool ----------------------------------------------------

    def _run_pool(self, todo, indices, total, failures, jobs):
        from repro.harness.experiments import ConfigResult

        ctx = _mp_context()
        pending = deque((plan, 1) for plan in todo)
        active = {}  # Process -> (plan, attempt, conn, started)
        results = {}
        trace_root = (str(self.cache.traces.root)
                      if self.cache is not None else None)

        def finish(proc, plan, attempt, message=None, transient=False,
                   payload=None):
            if payload is not None:
                seconds = payload.get("seconds", 0.0)
                result = ConfigResult.from_dict(payload["result"])
                result.translation = payload.get("translation")
                results[plan] = result
                if payload.get("trace_hit"):
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                if self.cache is not None:
                    self.cache.put(plan, result, seconds=seconds)
                return
            retry = transient and attempt <= self.retries
            self.events.emit(PlanFailed(
                plan=plan, error=message, attempt=attempt, will_retry=retry))
            if retry:
                pending.append((plan, attempt + 1))
            else:
                failures[plan] = message

        try:
            while pending or active:
                while pending and len(active) < jobs:
                    plan, attempt = pending.popleft()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_child_main,
                        args=(child_conn, plan.to_dict(), trace_root),
                        daemon=True,
                    )
                    self.events.emit(PlanStarted(
                        plan=plan, index=indices[plan], total=total,
                        attempt=attempt))
                    proc.start()
                    child_conn.close()
                    active[proc] = (plan, attempt, parent_conn,
                                    time.monotonic())

                time.sleep(_POLL_S)
                for proc in list(active):
                    plan, attempt, conn, started = active[proc]
                    if conn.poll():
                        try:
                            msg = conn.recv()
                        except (EOFError, OSError):
                            msg = None
                        proc.join()
                        del active[proc]
                        conn.close()
                        if msg is None:
                            finish(proc, plan, attempt,
                                   message="worker pipe closed unexpectedly",
                                   transient=True)
                        elif msg.get("ok"):
                            finish(proc, plan, attempt, payload=msg)
                        else:
                            finish(proc, plan, attempt,
                                   message=msg.get("error", "unknown error"),
                                   transient=bool(msg.get("transient")))
                    elif not proc.is_alive():
                        proc.join()
                        del active[proc]
                        conn.close()
                        finish(proc, plan, attempt,
                               message=f"worker died (exit code "
                                       f"{proc.exitcode})",
                               transient=True)
                    elif (self.timeout is not None
                          and time.monotonic() - started > self.timeout):
                        proc.terminate()
                        proc.join()
                        del active[proc]
                        conn.close()
                        finish(proc, plan, attempt,
                               message=f"timed out after {self.timeout:g}s",
                               transient=True)
        finally:
            for proc, (_plan, _attempt, conn, _started) in active.items():
                proc.terminate()
                proc.join()
                conn.close()
        return results
