"""The experiment matrix and the four paper artifacts it feeds.

Design: each (workload × ISA × compiler-profile) binary is compiled and
executed **once**, with every analysis probe attached — path-length,
plain critical path, scaled critical path (TX2 / TX2-derived models),
instruction mix, and (on GCC 12.2 binaries, per §6.1) the windowed
critical path. The figures and tables then render from the cached
:class:`SuiteResult` without re-simulating.

This module is now a thin layer over the plan/execute engine:

* :mod:`repro.harness.plan` — :class:`ExperimentPlan` (the frozen,
  hashable description of one config) and :func:`plan_suite`;
* :mod:`repro.harness.executor` — :class:`Executor` (serial or
  process-parallel execution with per-plan timeout, retry, and caching);
* :mod:`repro.harness.cache` — the content-addressed on-disk result
  cache;
* :mod:`repro.harness.events` — structured progress/timing telemetry.

:func:`run_suite` keeps its historical signature (plus ``jobs``,
``cache`` and ``events``), and the ``run_figure*``/``run_table*`` entry
points share one memoized suite per parameter set instead of silently
re-simulating the whole matrix each.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.analysis import (
    AnalysisConfig,
    AnalysisResult,
    CriticalPathProbe,
    CriticalPathResult,
    InstructionMixProbe,
    InstructionMixResult,
    PathLengthProbe,
    PathLengthResult,
    WindowedCPProbe,
    WindowedCPResult,
    ilp,
    runtime_ms,
)
from repro.analysis.report import format_table
from repro.analysis.windowed import PAPER_WINDOW_SIZES
from repro.common.errors import ExperimentError
from repro.harness.plan import (  # noqa: F401 — compat re-exports
    BASELINE,
    CLOCK_GHZ,
    ISA_DISPLAY,
    ISAS,
    PROFILE_DISPLAY,
    PROFILES,
    SCALED_MODELS,
)
from repro.sim.config import CoreModel, load_core_model
from repro.workloads import ALL_WORKLOADS, Workload, get_workload, run_workload

#: Bump when the serialized shape of :class:`ConfigResult` changes.
#: v2 nests the engine-independent :class:`repro.analysis.AnalysisResult`
#: under ``"analysis"`` instead of flattening its parts; ``from_dict``
#: still reads v1 docs (pre-block-summary caches).
CONFIG_RESULT_SCHEMA = 2


@dataclass
class ConfigResult:
    """Everything measured for one workload × ISA × profile binary."""

    workload: str
    isa: str
    profile: str
    path: PathLengthResult
    cp: CriticalPathResult
    scaled_cp: CriticalPathResult
    mix: InstructionMixResult
    windowed: dict[int, WindowedCPResult] | None = None
    #: Block-translation statistics of the producing simulation
    #: (:meth:`EmulationCore.translation_stats`). Telemetry only — not
    #: part of the result identity, so deliberately excluded from
    #: ``to_dict``/``from_dict``: cache hits and trace replays carry None.
    translation: dict | None = field(default=None, compare=False)
    #: Sharded-execution statistics
    #: (:meth:`repro.harness.sharding.ShardRunStats.to_dict`) when the
    #: producing run was sharded. Telemetry only, like ``translation`` —
    #: sharding never changes the result, so it never enters the
    #: serialized identity.
    shard_stats: dict | None = field(default=None, compare=False)

    @property
    def path_length(self) -> int:
        return self.path.total

    @property
    def ilp(self) -> float:
        return ilp(self.path_length, self.cp.critical_path)

    @property
    def scaled_ilp(self) -> float:
        return ilp(self.path_length, self.scaled_cp.critical_path)

    def runtime_ms(self, clock_ghz: float = CLOCK_GHZ) -> float:
        return runtime_ms(self.cp.critical_path, clock_ghz)

    def scaled_runtime_ms(self, clock_ghz: float = CLOCK_GHZ) -> float:
        return runtime_ms(self.scaled_cp.critical_path, clock_ghz)

    @property
    def analysis(self) -> AnalysisResult:
        """The engine-independent analysis payload of this result."""
        return AnalysisResult(
            path=self.path, cp=self.cp, scaled_cp=self.scaled_cp,
            mix=self.mix, windowed=self.windowed,
        )

    @classmethod
    def from_analysis(cls, workload: str, isa: str, profile: str,
                      analysis: AnalysisResult,
                      translation: dict | None = None) -> "ConfigResult":
        """Wrap one :class:`AnalysisResult` with its config identity."""
        return cls(
            workload=workload, isa=isa, profile=profile,
            path=analysis.path, cp=analysis.cp,
            scaled_cp=analysis.scaled_cp, mix=analysis.mix,
            windowed=analysis.windowed, translation=translation,
        )

    def to_dict(self) -> dict:
        """Versioned JSON-safe dict; exact inverse of :meth:`from_dict`
        (all leaf values are ints/strings, so the round-trip — and the
        on-disk cache built on it — is lossless)."""
        return {
            "v": CONFIG_RESULT_SCHEMA,
            "workload": self.workload,
            "isa": self.isa,
            "profile": self.profile,
            "analysis": self.analysis.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ConfigResult":
        v = doc.get("v")
        if v == 1:
            # Pre-block-summary layout: the analysis leaves sat directly
            # on the config doc. Read-only compatibility for old caches.
            windowed = doc["windowed"]
            return cls(
                workload=doc["workload"],
                isa=doc["isa"],
                profile=doc["profile"],
                path=PathLengthResult.from_dict(doc["path"]),
                cp=CriticalPathResult.from_dict(doc["cp"]),
                scaled_cp=CriticalPathResult.from_dict(doc["scaled_cp"]),
                mix=InstructionMixResult.from_dict(doc["mix"]),
                windowed=(
                    None if windowed is None
                    else {int(w): WindowedCPResult.from_dict(r)
                          for w, r in windowed.items()}
                ),
            )
        if v != CONFIG_RESULT_SCHEMA:
            raise ValueError(f"ConfigResult schema {doc.get('v')!r} != "
                             f"{CONFIG_RESULT_SCHEMA}")
        return cls.from_analysis(
            doc["workload"], doc["isa"], doc["profile"],
            AnalysisResult.from_dict(doc["analysis"]),
        )


@dataclass
class SuiteResult:
    """All configurations, plus the parameters that produced them."""

    scale: float
    workloads: dict[str, Workload]
    configs: dict[tuple[str, str, str], ConfigResult] = field(default_factory=dict)
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES

    def get(self, workload: str, isa: str, profile: str) -> ConfigResult:
        return self.configs[(workload, isa, profile)]


#: Literal defaults of the deprecated per-kwarg analysis parameters on
#: :func:`run_config`; a value differing from these counts as "caller
#: used the legacy surface".
_LEGACY_ANALYSIS_DEFAULTS = {
    "engine": "fused",
    "windowed": False,
    "window_sizes": PAPER_WINDOW_SIZES,
    "slide_fraction": 0.5,
}


def _resolve_analysis(analysis, engine, windowed, window_sizes,
                      slide_fraction) -> AnalysisConfig:
    """Fold :func:`run_config`'s deprecated loose kwargs into one
    :class:`AnalysisConfig`, warning when the legacy surface is used and
    refusing a mix of both surfaces."""
    legacy = {
        "engine": engine,
        "windowed": windowed,
        "window_sizes": tuple(window_sizes),
        "slide_fraction": slide_fraction,
    }
    changed = sorted(
        k for k, v in legacy.items() if v != _LEGACY_ANALYSIS_DEFAULTS[k]
    )
    if analysis is not None:
        if changed:
            raise ExperimentError(
                "pass analysis parameters via analysis=AnalysisConfig(...) "
                "or via the legacy kwargs, not both "
                f"(legacy kwargs set: {', '.join(changed)})"
            )
        return analysis
    if changed:
        warnings.warn(
            "the engine=/windowed=/window_sizes=/slide_fraction= kwargs of "
            "run_config are deprecated and will be removed in the next "
            "release; pass analysis=AnalysisConfig(...) instead",
            DeprecationWarning, stacklevel=3,
        )
    return AnalysisConfig(**legacy)


def _run_fused_config(workload, isa, profile, compiled, cfg, model,
                      max_instructions, trace_writer, translate):
    engine = cfg.build_engine(regions=compiled.image.regions, model=model)
    sinks = [engine]
    if trace_writer is not None:
        trace_writer.isa_name = compiled.isa_name
        trace_writer.regions = list(compiled.image.regions)
        sinks.append(trace_writer)
    run = run_workload(
        workload, isa, profile, compiled=compiled,
        max_instructions=max_instructions, batch_sinks=sinks,
        translate=translate,
    )
    return ConfigResult.from_analysis(
        workload.name, isa, profile, engine.results(),
        translation=run.result.translation,
    )


def _run_probe_config(workload, isa, profile, compiled, cfg, model,
                      max_instructions, translate):
    path_probe = PathLengthProbe(compiled.image.regions)
    cp_probe = CriticalPathProbe(break_on_zero=cfg.break_on_zero)
    scaled_probe = CriticalPathProbe(model, break_on_zero=cfg.break_on_zero)
    mix_probe = InstructionMixProbe()
    probes = [path_probe, cp_probe, scaled_probe, mix_probe]
    window_probe = None
    if cfg.windowed:
        window_probe = WindowedCPProbe(cfg.window_sizes, cfg.slide_fraction,
                                       cfg.keep_cps)
        probes.append(window_probe)
    run = run_workload(
        workload, isa, profile, probes, compiled=compiled,
        max_instructions=max_instructions, translate=translate,
    )
    return ConfigResult(
        workload=workload.name,
        isa=isa,
        profile=profile,
        path=path_probe.result(),
        cp=cp_probe.result(),
        scaled_cp=scaled_probe.result(),
        mix=mix_probe.result(),
        windowed=window_probe.results() if window_probe else None,
        translation=run.result.translation,
    )


def run_config(
    workload: Workload,
    isa: str,
    profile: str,
    *,
    analysis: AnalysisConfig | None = None,
    windowed: bool = False,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
    slide_fraction: float = 0.5,
    models: dict[str, str | CoreModel] | None = None,
    max_instructions: int = 500_000_000,
    engine: str = "fused",
    trace_writer=None,
    translate: bool = True,
    shards: int = 1,
    compiled=None,
) -> ConfigResult:
    """Compile, run and analyze one configuration (single execution).

    ``compiled`` (a :class:`repro.compiler.driver.CompiledProgram`)
    skips the compile step with a pre-built image — the warm worker
    pool's cross-plan reuse hook. Compilation is deterministic and
    every simulation builds fresh machine state, so a reused image is
    observationally identical to a fresh one.

    ``analysis`` (an :class:`repro.analysis.AnalysisConfig`) names the
    engine tier and every analysis parameter: ``"fused"`` (default) runs
    the batched single-pass :class:`FusedAnalysisEngine` over
    block-summary events; ``"probes"`` runs the five legacy per-retire
    probes (the differential oracle, and the path custom probes use).
    With ``check_invariants`` set, the *other* engine runs on the same
    binary afterwards and the results must match exactly.

    The loose ``engine=``/``windowed=``/``window_sizes=``/
    ``slide_fraction=`` kwargs are deprecated (one release behind a
    ``DeprecationWarning``) — pass ``analysis=`` instead.

    ``trace_writer`` (fused only) records the retirement stream
    alongside the analysis — the trace level of the two-level result
    cache. ``translate=False`` forces per-instruction interpretation
    (identical results; the translated path's differential oracle).
    ``shards`` > 1 (or 0 for auto) runs the deterministic sharded path
    (:mod:`repro.harness.sharding`): fast-forward + snapshot once, then
    analyze the retirement stream in parallel slices whose merged result
    is byte-identical to the serial one. Sharding requires the fused
    engine and never changes the result — only the wall-clock.
    """
    cfg = _resolve_analysis(analysis, engine, windowed, window_sizes,
                            slide_fraction)
    if trace_writer is not None and cfg.engine != "fused":
        raise ExperimentError(
            "trace recording requires the fused (batched) engine"
        )
    if compiled is None:
        compiled = workload.compile(isa, profile)
    model = (models or SCALED_MODELS)[isa]
    if isinstance(model, str):
        model = load_core_model(model)

    if shards != 1:
        from repro.harness.sharding import resolve_shards, run_sharded_config

        if shards != 0 and not cfg.shardable:
            raise ExperimentError(
                "sharded execution requires the fused (batched) engine; "
                f"got {cfg.engine!r}"
            )
        resolved = resolve_shards(shards)
        if resolved == 1 or not cfg.shardable or trace_writer is not None:
            # Degenerate to the plain serial path: auto-sharding on a
            # single-CPU box, a non-shardable config under auto, or a
            # trace-recording run. A recorded trace keys on simulation
            # identity, so slicing it buys nothing (workers are already
            # excluded) while forcing every slice onto the slow relative
            # per-retirement path — strictly worse than serial.
            shards = 1
    if shards != 1:
        result, stats = run_sharded_config(
            workload, isa, profile, compiled, cfg, model,
            max_instructions, resolved, translate, trace_writer,
        )
        result.shard_stats = stats.to_dict()
        if cfg.check_invariants:
            check = _run_probe_config(workload, isa, profile, compiled,
                                      cfg, model, max_instructions,
                                      translate)
            if check.to_dict() != result.to_dict():
                raise ExperimentError(
                    "invariant check failed: sharded and probe analyses "
                    f"disagree on {workload.name}/{isa}/{profile}"
                )
        return result

    if cfg.engine == "fused":
        result = _run_fused_config(workload, isa, profile, compiled, cfg,
                                   model, max_instructions, trace_writer,
                                   translate)
        check = (_run_probe_config(workload, isa, profile, compiled, cfg,
                                   model, max_instructions, translate)
                 if cfg.check_invariants else None)
    else:
        result = _run_probe_config(workload, isa, profile, compiled, cfg,
                                   model, max_instructions, translate)
        check = (_run_fused_config(workload, isa, profile, compiled, cfg,
                                   model, max_instructions, None, translate)
                 if cfg.check_invariants else None)
    if check is not None and check.to_dict() != result.to_dict():
        raise ExperimentError(
            "invariant check failed: fused and probe analyses disagree on "
            f"{workload.name}/{isa}/{profile}"
        )
    return result


def replay_config(trace, plan) -> ConfigResult:
    """Analyze a recorded retirement trace under ``plan``'s analysis
    parameters — no compilation, no simulation.

    This is the trace-level cache hit: the stream only depends on the
    simulation identity (:meth:`ExperimentPlan.trace_fingerprint`), so
    plans that differ only in analysis parameters (window sizes, slide
    fraction, core model) replay one recording through a fresh
    :class:`FusedAnalysisEngine`.
    """
    model = load_core_model(plan.model)
    engine = plan.analysis.build_engine(regions=trace.regions, model=model)
    for batch in trace.iter_batches():
        engine.on_batch(*batch)
    return ConfigResult.from_analysis(
        plan.workload, plan.isa, plan.profile, engine.results()
    )


def run_suite(
    scale: float = 1.0,
    *,
    workloads: tuple[str, ...] | None = None,
    windowed: bool = True,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
    verbose: bool = False,
    jobs: int | None = None,
    cache=None,
    timeout: float | None = None,
    heartbeat: float | None = None,
    retries: int = 1,
    events=None,
    translate: bool = True,
    shards: int = 1,
    warm_pool: bool = True,
    max_tasks_per_worker: int = 0,
) -> SuiteResult:
    """Run the full matrix. ``scale`` scales every workload's problem size
    (1.0 = reduced defaults; see DESIGN.md §5). Windowed analysis runs on
    GCC 12.2 binaries only, as in §6.1.

    Compatibility wrapper over :class:`repro.harness.executor.Executor`:
    ``jobs`` fans the matrix out across worker processes, ``cache`` (a
    :class:`repro.harness.cache.ResultCache`) skips already-computed
    configs, ``timeout`` bounds each config's wall-clock, ``heartbeat``
    kills workers that stop beating (hang detection distinct from the
    timeout), ``retries`` bounds re-attempts after transient failures,
    and ``events`` (an :class:`repro.harness.events.EventBus`) receives
    structured progress telemetry; ``verbose`` attaches a console
    reporter to it. ``warm_pool=False`` restores the legacy
    fresh-process-per-plan executor (the byte-identity baseline);
    ``max_tasks_per_worker`` recycles warm workers after that many
    tasks (0 = never).
    """
    from repro.harness.events import ConsoleReporter, EventBus
    from repro.harness.executor import Executor

    bus = events if events is not None else EventBus()
    if verbose:
        bus.subscribe(ConsoleReporter())
    executor = Executor(jobs=jobs, cache=cache, events=bus, timeout=timeout,
                        heartbeat=heartbeat, retries=retries,
                        warm_pool=warm_pool,
                        max_tasks_per_worker=max_tasks_per_worker)
    return executor.run_suite(
        scale,
        workloads=workloads,
        windowed=windowed,
        window_sizes=tuple(window_sizes),
        translate=translate,
        shards=shards,
    )


# ------------------------------------------------------- shared-suite memo

#: Suites already simulated this process, keyed by the parameters that
#: produced them. ``run_figure*``/``run_table*`` called without a suite
#: share these instead of each re-simulating the full matrix.
_SUITE_MEMO: dict[tuple, SuiteResult] = {}


def clear_suite_memo() -> None:
    """Drop the in-process suite memo (mainly for tests)."""
    _SUITE_MEMO.clear()


def _shared_suite(
    scale: float,
    *,
    windowed: bool,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
) -> SuiteResult:
    """Fetch-or-run the full-matrix suite for these parameters. A
    windowed suite satisfies non-windowed requests (it is a superset)."""
    sizes = tuple(window_sizes)
    windowed_key = (scale, sizes, True)
    if windowed_key in _SUITE_MEMO:
        return _SUITE_MEMO[windowed_key]
    key = (scale, sizes, windowed)
    if key not in _SUITE_MEMO:
        _SUITE_MEMO[key] = run_suite(
            scale, windowed=windowed, window_sizes=sizes
        )
    return _SUITE_MEMO[key]


# --------------------------------------------------------------- Figure 1

@dataclass
class Figure1Result:
    """Per-kernel path lengths, normalized to GCC 9.2 / AArch64."""

    suite: SuiteResult
    # workload -> {(isa, profile) -> {kernel -> normalized count}}
    normalized: dict[str, dict[tuple[str, str], dict[str, float]]]
    raw: dict[str, dict[tuple[str, str], dict[str, int]]]

    def render(self) -> str:
        sections = []
        for name, per_config in self.normalized.items():
            kernels = list(self.suite.workloads[name].kernels) + ["other"]
            headers = ["config"] + kernels + ["total"]
            rows = []
            for (isa, profile), counts in per_config.items():
                label = f"{PROFILE_DISPLAY[profile]} {ISA_DISPLAY[isa]}"
                row = [label] + [round(counts.get(k, 0.0), 4) for k in kernels]
                row.append(round(sum(counts.values()), 4))
                rows.append(row)
            sections.append(format_table(
                headers, rows,
                title=f"Figure 1 — {name}: path length by kernel "
                      f"(normalized to GCC 9.2 AArch64)",
            ))
        return "\n\n".join(sections)


def run_figure1(scale: float = 1.0, suite: SuiteResult | None = None) -> Figure1Result:
    if suite is None:
        suite = _shared_suite(scale, windowed=False)
    normalized: dict[str, dict[tuple[str, str], dict[str, float]]] = {}
    raw: dict[str, dict[tuple[str, str], dict[str, int]]] = {}
    for name in suite.workloads:
        base = suite.get(name, *BASELINE)
        base_total = base.path.total
        normalized[name] = {}
        raw[name] = {}
        for isa in ISAS:
            for profile in PROFILES:
                config = suite.get(name, isa, profile)
                counts = dict(config.path.per_region)
                raw[name][(isa, profile)] = counts
                normalized[name][(isa, profile)] = {
                    kernel: count / base_total
                    for kernel, count in counts.items()
                }
    return Figure1Result(suite=suite, normalized=normalized, raw=raw)


# ----------------------------------------------------------- Tables 1 & 2

@dataclass
class TableResult:
    """Table 1 (plain CP) or Table 2 (scaled CP) rows."""

    suite: SuiteResult
    scaled: bool

    def rows_for(self, workload: str) -> list[list[object]]:
        rows = []
        for metric in ("Path Length", "CP", "ILP", "2GHz Run time (ms)"):
            row: list[object] = [metric]
            for profile in PROFILES:
                for isa in ISAS:
                    config = self.suite.get(workload, isa, profile)
                    cp = config.scaled_cp if self.scaled else config.cp
                    if metric == "Path Length":
                        row.append(config.path_length)
                    elif metric == "CP":
                        row.append(cp.critical_path)
                    elif metric == "ILP":
                        row.append(round(ilp(config.path_length,
                                             cp.critical_path), 1))
                    else:
                        row.append(round(runtime_ms(cp.critical_path,
                                                    CLOCK_GHZ), 6))
            rows.append(row)
        return rows

    def render(self) -> str:
        which = "Table 2 — Scaled Critical Paths" if self.scaled else (
            "Table 1 — Critical Paths"
        )
        headers = ["metric"] + [
            f"{PROFILE_DISPLAY[p]} {ISA_DISPLAY[i]}"
            for p in PROFILES for i in ISAS
        ]
        sections = []
        for name in self.suite.workloads:
            sections.append(format_table(
                headers, self.rows_for(name), title=f"{which} — {name}"
            ))
        return "\n\n".join(sections)


def run_table1(scale: float = 1.0, suite: SuiteResult | None = None) -> TableResult:
    if suite is None:
        suite = _shared_suite(scale, windowed=False)
    return TableResult(suite=suite, scaled=False)


def run_table2(scale: float = 1.0, suite: SuiteResult | None = None) -> TableResult:
    if suite is None:
        suite = _shared_suite(scale, windowed=False)
    return TableResult(suite=suite, scaled=True)


# ---------------------------------------------------- §8 future-work cores

@dataclass
class FutureCoresResult:
    """Runtimes on the §8 extension cores (in-order and finite-ROB OoO)."""

    # workload -> isa -> {"inorder": cycles, rob: cycles...}
    cycles: dict[str, dict[str, dict[object, int]]]
    rob_sizes: tuple[int, ...]
    clock_ghz: float = CLOCK_GHZ

    def render(self) -> str:
        headers = ["workload/ISA", "in-order"] + [
            f"OoO rob={rob}" for rob in self.rob_sizes
        ]
        rows = []
        for name, per_isa in self.cycles.items():
            for isa, values in per_isa.items():
                row: list[object] = [f"{name} {ISA_DISPLAY[isa]}"]
                row.append(values["inorder"])
                row.extend(values[rob] for rob in self.rob_sizes)
                rows.append(row)
        return format_table(
            headers, rows,
            title="Future work (§8) — cycles on finite cores (TX2 latencies)",
        )


def run_future_cores(
    scale: float = 1.0,
    *,
    workloads: tuple[str, ...] | None = None,
    rob_sizes: tuple[int, ...] = (16, 64, 180, 630),
    issue_width: int = 4,
) -> FutureCoresResult:
    """§8: run every workload on the in-order and OoO timing models.

    Each configuration is a single execution with all core models attached
    as probes (they are trace-driven, so they share the run).
    """
    from repro.sim.inorder import InOrderTimingProbe
    from repro.sim.ooo import OoOTimingProbe
    from repro.workloads import get_workload, run_workload

    names = workloads or tuple(ALL_WORKLOADS)
    cycles: dict[str, dict[str, dict[object, int]]] = {}
    for name in names:
        workload = get_workload(name, scale)
        cycles[name] = {}
        for isa in ISAS:
            model = load_core_model(SCALED_MODELS[isa])
            inorder = InOrderTimingProbe(model)
            cores = {rob: OoOTimingProbe(model, rob_size=rob,
                                         issue_width=issue_width)
                     for rob in rob_sizes}
            run_workload(workload, isa, "gcc12",
                         [inorder] + list(cores.values()))
            cycles[name][isa] = {"inorder": inorder.result().cycles}
            for rob, probe in cores.items():
                cycles[name][isa][rob] = probe.result().cycles
    return FutureCoresResult(cycles=cycles, rob_sizes=tuple(rob_sizes))


# --------------------------------------------------------------- Figure 2

@dataclass
class Figure2Result:
    """Mean ILP per window size, GCC 12.2 binaries (the Figure 2 series)."""

    suite: SuiteResult
    # workload -> isa -> [(window, mean ILP)]
    series: dict[str, dict[str, list[tuple[int, float]]]]

    def render(self) -> str:
        headers = ["workload/ISA"] + [str(w) for w in self.suite.window_sizes]
        rows = []
        for name, per_isa in self.series.items():
            for isa, points in per_isa.items():
                label = f"{name} {ISA_DISPLAY[isa]}"
                rows.append([label] + [round(v, 2) for _w, v in points])
        return format_table(
            headers, rows,
            title="Figure 2 — mean ILP per window size (GCC 12.2)",
        )

    def window_averages_text(self) -> str:
        """The artifact's windowAverages.txt: comma-separated mean window CP
        per benchmark, ascending window size."""
        lines = []
        for name, per_isa in self.series.items():
            for isa, _points in per_isa.items():
                config = self.suite.get(name, isa, "gcc12")
                means = [
                    config.windowed[w].mean_cp for w in self.suite.window_sizes
                ]
                values = ", ".join(f"{m:.3f}" for m in means)
                lines.append(f"{name}-{isa}: {values}")
        return "\n".join(lines)


def run_figure2(
    scale: float = 1.0,
    suite: SuiteResult | None = None,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
) -> Figure2Result:
    if suite is None:
        suite = _shared_suite(scale, windowed=True,
                              window_sizes=window_sizes)
    series: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for name in suite.workloads:
        series[name] = {}
        for isa in ISAS:
            config = suite.get(name, isa, "gcc12")
            if config.windowed is None:
                raise ExperimentError(
                    "suite was built without windowed analysis; "
                    "re-run with windowed=True"
                )
            series[name][isa] = [
                (w, config.windowed[w].mean_ilp) for w in suite.window_sizes
            ]
    return Figure2Result(suite=suite, series=series)
