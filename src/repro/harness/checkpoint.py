"""Suite checkpoint/resume: a journal of completed plan fingerprints.

Every ``repro-isa-compare run`` (with a cache) appends to a JSONL
journal under ``<cache_root>/runs/``: a header line capturing the suite
parameters, one line per completed plan (its content-addressed
fingerprint), and a ``finished`` marker when the suite completes. A
suite killed mid-run leaves a journal without the marker; ``repro
run --resume <run-id>`` restores the original parameters from the
header and re-executes only the plans whose fingerprints are missing —
completed work is satisfied from the result cache, so the final
artifacts are byte-identical to an uninterrupted run.

The journal is *advisory*: the source of truth for "done" is the
content-addressed cache itself (a fingerprint in the journal *is* a
cache key). The journal adds what the cache cannot: which parameter set
the interrupted suite was running (so ``--resume`` needs no flags) and
crashed-run detection on startup. Appends are fsync'd line-by-line, and
loading tolerates a torn final line (the crash can interrupt a write).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.common.errors import ExperimentError
from repro.harness.events import Event, PlanCacheHit, PlanFinished

__all__ = ["RunJournal", "journal_dir", "unfinished_runs"]

#: Bump when the journal line shapes change.
JOURNAL_SCHEMA = 1


def journal_dir(cache_root) -> Path:
    return Path(cache_root) / "runs"


def _new_run_id() -> str:
    return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"


class RunJournal:
    """One suite run's append-only completion journal.

    Use :meth:`create` for a fresh run or :meth:`load` to resume one;
    subscribe :meth:`subscriber` on the run's :class:`EventBus` so every
    completed plan (fresh simulation, trace replay, or cache hit) is
    recorded, then call :meth:`finish` after artifacts are rendered.
    """

    def __init__(self, path: Path, *, run_id: str, params: dict,
                 total: int):
        self.path = path
        self.run_id = run_id
        self.params = params
        self.total = total
        self.done: set[str] = set()
        self.finished = False
        self._fh = None

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, cache_root, params: dict, total: int,
               run_id: str | None = None) -> "RunJournal":
        """Start a fresh journal; writes (and fsyncs) the header line."""
        run_id = run_id or _new_run_id()
        root = journal_dir(cache_root)
        root.mkdir(parents=True, exist_ok=True)
        journal = cls(root / f"{run_id}.jsonl", run_id=run_id,
                      params=dict(params), total=total)
        journal._append({
            "v": JOURNAL_SCHEMA,
            "run": run_id,
            "created": time.time(),
            "params": journal.params,
            "total": total,
        })
        return journal

    @classmethod
    def load(cls, cache_root, run_id: str) -> "RunJournal":
        """Load an existing journal (tolerating a torn final line)."""
        path = journal_dir(cache_root) / f"{run_id}.jsonl"
        if not path.is_file():
            known = unfinished_runs(cache_root)
            hint = f"; unfinished runs: {', '.join(known)}" if known else ""
            raise ExperimentError(f"no run journal {run_id!r} under "
                                  f"{journal_dir(cache_root)}{hint}")
        header = None
        done: set[str] = set()
        finished = False
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # torn final line from a mid-write crash
                if header is None:
                    if doc.get("v") != JOURNAL_SCHEMA or "run" not in doc:
                        raise ExperimentError(
                            f"{path} does not start with a valid run-journal "
                            f"header")
                    header = doc
                elif "done" in doc:
                    done.add(doc["done"])
                elif "finished" in doc:
                    finished = True
        if header is None:
            raise ExperimentError(f"run journal {path} is empty")
        journal = cls(path, run_id=header["run"],
                      params=dict(header.get("params", {})),
                      total=int(header.get("total", 0)))
        journal.done = done
        journal.finished = finished
        return journal

    # -- appending -------------------------------------------------------

    def _append(self, doc: dict) -> None:
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_done(self, fingerprint: str, *, plan: str = "",
                    seconds: float = 0.0) -> None:
        """Journal one completed plan (idempotent per fingerprint)."""
        if fingerprint in self.done:
            return
        self.done.add(fingerprint)
        self._append({"done": fingerprint, "plan": plan,
                      "seconds": seconds})

    def subscriber(self, event: Event) -> None:
        """EventBus callback: every completed plan lands in the journal
        (cache hits included — on resume they re-confirm prior work)."""
        if isinstance(event, PlanFinished):
            self.record_done(event.plan.fingerprint(),
                             plan=event.plan.describe(),
                             seconds=event.seconds)
        elif isinstance(event, PlanCacheHit):
            self.record_done(event.key, plan=event.plan.describe())

    def finish(self) -> None:
        """Mark the run complete and close the journal."""
        if not self.finished:
            self._append({"finished": time.time()})
            self.finished = True
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def unfinished_runs(cache_root) -> list[str]:
    """Run ids whose journals lack the ``finished`` marker (crashed or
    still-running suites), oldest first."""
    root = journal_dir(cache_root)
    if not root.is_dir():
        return []
    pending = []
    for path in sorted(root.glob("*.jsonl")):
        try:
            journal = RunJournal.load(cache_root, path.stem)
        except ExperimentError:
            continue
        if not journal.finished:
            pending.append(journal.run_id)
    return pending
