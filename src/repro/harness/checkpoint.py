"""Suite checkpoint/resume: a journal of completed plan fingerprints.

Every ``repro-isa-compare run`` (with a cache) appends to a JSONL
journal under ``<cache_root>/runs/``: a header line capturing the suite
parameters, one line per completed plan (its content-addressed
fingerprint), and a ``finished`` marker when the suite completes. A
suite killed mid-run leaves a journal without the marker; ``repro
run --resume <run-id>`` restores the original parameters from the
header and re-executes only the plans whose fingerprints are missing —
completed work is satisfied from the result cache, so the final
artifacts are byte-identical to an uninterrupted run.

The journal is *advisory*: the source of truth for "done" is the
content-addressed cache itself (a fingerprint in the journal *is* a
cache key). The journal adds what the cache cannot: which parameter set
the interrupted suite was running (so ``--resume`` needs no flags) and
crashed-run detection on startup. Appends are fsync'd line-by-line and
the parent directory is fsync'd after the file is created and after the
``finished`` marker, so neither the journal's existence nor its
completion can be lost to a power cut. Loading tolerates a torn *final*
line (the crash can interrupt a write); a torn or invalid *header* line
means the journal identity itself is unreadable, so the file is
quarantined under ``<dir>/quarantine/`` instead of being mis-parsed as
an empty run.

:class:`RunJournal` is subclass-friendly: the serve daemon's per-job
journal overrides :attr:`RunJournal.SUBDIR` (its files live under
``<cache_root>/serve/jobs/``) and :attr:`RunJournal.FAULT_SITE` (so the
fault harness can tear its appends deterministically).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.common.errors import ExperimentError
from repro.harness import faults
from repro.harness.events import Event, PlanCacheHit, PlanFinished

__all__ = ["RunJournal", "journal_dir", "unfinished_runs"]

#: Bump when the journal line shapes change.
JOURNAL_SCHEMA = 1


def journal_dir(cache_root) -> Path:
    return RunJournal.directory(cache_root)


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-created/renamed entry is durable.

    Best-effort: some filesystems (and non-POSIX platforms) refuse to
    open directories; losing the *directory* entry to a power cut there
    is no worse than the prior behaviour."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _quarantine(path: Path, reason: str) -> Path:
    """Move an unreadable journal aside (never delete evidence)."""
    dest_dir = path.parent / "quarantine"
    dest_dir.mkdir(parents=True, exist_ok=True)
    dest = dest_dir / path.name
    n = 0
    while dest.exists():
        n += 1
        dest = dest_dir / f"{path.name}.{n}"
    os.replace(path, dest)
    _fsync_dir(dest_dir)
    _fsync_dir(path.parent)
    try:
        (dest.with_suffix(dest.suffix + ".reason")).write_text(
            reason + "\n", encoding="utf-8")
    except OSError:
        pass
    return dest


def _new_run_id() -> str:
    return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"


class RunJournal:
    """One suite run's append-only completion journal.

    Use :meth:`create` for a fresh run or :meth:`load` to resume one;
    subscribe :meth:`subscriber` on the run's :class:`EventBus` so every
    completed plan (fresh simulation, trace replay, or cache hit) is
    recorded, then call :meth:`finish` after artifacts are rendered.
    """

    #: Directory under the cache root holding this journal type.
    SUBDIR = "runs"
    #: Fault site applied (via :func:`faults.corrupt`) to every appended
    #: line; "" disables injection. Subclasses opt in.
    FAULT_SITE = ""

    def __init__(self, path: Path, *, run_id: str, params: dict,
                 total: int):
        self.path = path
        self.run_id = run_id
        self.params = params
        self.total = total
        self.done: set[str] = set()
        self.finished = False
        #: The parsed (or written) header document, extra keys included.
        self.header: dict = {}
        self._fh = None

    # -- construction ----------------------------------------------------

    @classmethod
    def directory(cls, cache_root) -> Path:
        return Path(cache_root) / cls.SUBDIR

    @classmethod
    def create(cls, cache_root, params: dict, total: int,
               run_id: str | None = None,
               extra: dict | None = None) -> "RunJournal":
        """Start a fresh journal; writes (and fsyncs) the header line,
        then fsyncs the parent directory so the file itself survives a
        crash. ``extra`` keys are merged into the header (and surface on
        :attr:`header` after :meth:`load`)."""
        run_id = run_id or _new_run_id()
        root = cls.directory(cache_root)
        root.mkdir(parents=True, exist_ok=True)
        journal = cls(root / f"{run_id}.jsonl", run_id=run_id,
                      params=dict(params), total=total)
        header = {
            "v": JOURNAL_SCHEMA,
            "run": run_id,
            "created": time.time(),
            "params": journal.params,
            "total": total,
        }
        for key, value in (extra or {}).items():
            header.setdefault(key, value)
        journal.header = header
        journal._append(header)
        _fsync_dir(root)
        return journal

    @classmethod
    def load(cls, cache_root, run_id: str) -> "RunJournal":
        """Load an existing journal (tolerating a torn final line).

        A torn, empty, or invalid *header* line is not tolerated: the
        journal's identity is unreadable, so the file is moved to
        ``quarantine/`` and an :class:`ExperimentError` is raised rather
        than mis-parsing the run as empty."""
        path = cls.directory(cache_root) / f"{run_id}.jsonl"
        if not path.is_file():
            known = unfinished_runs(cache_root, cls=cls)
            hint = f"; unfinished runs: {', '.join(known)}" if known else ""
            raise ExperimentError(f"no run journal {run_id!r} under "
                                  f"{cls.directory(cache_root)}{hint}")
        header = None
        done: set[str] = set()
        finished = False
        with path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if header is None:
                    # First content line MUST be a valid header: a torn
                    # header is indistinguishable from garbage, so
                    # quarantine instead of reading an "empty" run.
                    try:
                        doc = json.loads(line)
                    except ValueError:
                        doc = None
                    if (not isinstance(doc, dict)
                            or doc.get("v") != JOURNAL_SCHEMA
                            or "run" not in doc):
                        dest = _quarantine(
                            path, f"torn or invalid header line: {line[:120]!r}")
                        raise ExperimentError(
                            f"run journal {path} has a torn or invalid "
                            f"header line; quarantined to {dest}")
                    header = doc
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # torn final line from a mid-write crash
                if "done" in doc:
                    done.add(doc["done"])
                elif "finished" in doc:
                    finished = True
        if header is None:
            dest = _quarantine(path, "no header line (empty journal)")
            raise ExperimentError(
                f"run journal {path} is empty (header never made it to "
                f"disk); quarantined to {dest}")
        journal = cls(path, run_id=header["run"],
                      params=dict(header.get("params", {})),
                      total=int(header.get("total", 0)))
        journal.header = header
        journal.done = done
        journal.finished = finished
        return journal

    # -- appending -------------------------------------------------------

    def _append(self, doc: dict) -> None:
        if self._fh is None:
            self._fh = self.path.open("ab")
        data = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        if self.FAULT_SITE:
            data = faults.corrupt(self.FAULT_SITE, data)
        self._fh.write(data)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_done(self, fingerprint: str, *, plan: str = "",
                    seconds: float = 0.0) -> None:
        """Journal one completed plan (idempotent per fingerprint)."""
        if fingerprint in self.done:
            return
        self.done.add(fingerprint)
        self._append({"done": fingerprint, "plan": plan,
                      "seconds": seconds})

    def subscriber(self, event: Event) -> None:
        """EventBus callback: every completed plan lands in the journal
        (cache hits included — on resume they re-confirm prior work)."""
        if isinstance(event, PlanFinished):
            self.record_done(event.plan.fingerprint(),
                             plan=event.plan.describe(),
                             seconds=event.seconds)
        elif isinstance(event, PlanCacheHit):
            self.record_done(event.key, plan=event.plan.describe())

    def finish(self) -> None:
        """Mark the run complete, close the journal, and fsync the
        directory so completion survives a crash."""
        if not self.finished:
            self._append({"finished": time.time()})
            self.finished = True
            _fsync_dir(self.path.parent)
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def unfinished_runs(cache_root, cls: type[RunJournal] = RunJournal
                    ) -> list[str]:
    """Run ids whose journals lack the ``finished`` marker (crashed or
    still-running suites), oldest first. Journals whose headers are
    unreadable are quarantined by :meth:`RunJournal.load` as a side
    effect of the scan."""
    root = cls.directory(cache_root)
    if not root.is_dir():
        return []
    pending = []
    for path in sorted(root.glob("*.jsonl")):
        try:
            journal = cls.load(cache_root, path.stem)
        except ExperimentError:
            continue
        if not journal.finished:
            pending.append(journal.run_id)
    return pending
