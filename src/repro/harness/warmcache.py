"""Warm per-process caches for cross-plan reuse in the executor.

A persistent worker (or the serial loop) runs many plans in one
process. The expensive, *deterministic* work each plan repeats is:

* building the workload image — parse, codegen, assemble, link;
* translating that image's basic blocks to compiled Python closures
  (``sim/blocks.py``) and the analysis pass's chain-stitch functions
  (``analysis/blocksummary.py``).

Both are pure functions of (workload, scale, isa, profile) and the
translate options, so a :class:`WarmCache` memoizes them *by
fingerprint* and hands back the same :class:`CompiledProgram` for the
next plan. Machine state never leaks between plans: ``run_image``
builds a fresh ``Memory``/``Machine`` per call, and the only shared
objects are immutable source texts and compiled code objects, so
artifacts stay byte-identical to fresh-process execution.

Integrity contract: every cache *hit* re-hashes the stored image
against the fingerprint recorded when it was built. A mismatch — a
poisoned worker, exercised by the ``warm`` fault site — evicts the
entry and raises :class:`WarmStateError` (an ``OSError``, hence
transient to the executor's retry policy); the pool recycles the
worker and the plan retries on a clean process. Plans never fail from
warm-state corruption.

The third persistence level: translated block/summary *sources* are
deterministic text, so they round-trip through the on-disk
``BlockStore`` (``harness/cache.py``) keyed by :func:`block_key`.
Cold workers and ``--shards`` slice children preload them and skip
per-block codegen (the compiled closures themselves close over a live
machine and are never pickled — only source text persists).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Callable

from repro.analysis import blocksummary
from repro.harness import faults
from repro.sim import blocks

if TYPE_CHECKING:
    from repro.compiler.driver import CompiledProgram
    from repro.harness.cache import BlockStore
    from repro.harness.plan import ExperimentPlan

__all__ = [
    "WarmCache",
    "WarmStateError",
    "image_fingerprint",
    "block_key",
    "preload_sources",
    "set_block_root",
    "get_block_root",
]

#: Keep at most this many distinct images warm per process; suites
#: cycle through 5 workloads x 2 ISAs x 2 profiles = 20 images, so the
#: cap only matters for unbounded ad-hoc streams (``repro serve``).
MAX_WARM_IMAGES = 64


class WarmStateError(OSError):
    """A warm cache entry failed its fingerprint re-check.

    Subclasses ``OSError`` deliberately: the executor already treats
    ``OSError`` as transient, so a poisoned worker gets the normal
    recycle-and-retry treatment instead of failing the plan.
    """


def image_fingerprint(compiled: "CompiledProgram") -> str:
    """Identity of a built workload image: the linked ELF bytes plus the
    (isa, profile) pair that produced them."""
    digest = hashlib.sha256()
    digest.update(compiled.isa_name.encode("ascii"))
    digest.update(b"\x00")
    digest.update(compiled.profile.name.encode("ascii"))
    digest.update(b"\x00")
    digest.update(compiled.elf_bytes)
    return digest.hexdigest()


def block_key(image_fp: str, translate: bool = True) -> str:
    """On-disk key for an image's translated block/summary sources.

    Versioned by the translators themselves: bumping
    ``blocks.TRANSLATOR_VERSION`` or ``blocksummary.SUMMARY_VERSION``
    orphans every stale entry instead of preloading wrong-shape source.
    """
    doc = {
        "image": image_fp,
        "translate": bool(translate),
        "translator": blocks.TRANSLATOR_VERSION,
        "summary": blocksummary.SUMMARY_VERSION,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


# Ambient block-store root: sharding's slice children are forked deep
# inside run_config, far from any Executor object, so the executor
# parks the active store root here for harness/sharding.py to ship in
# its worker payloads.
_BLOCK_ROOT: str | None = None


def set_block_root(root: str | None) -> None:
    global _BLOCK_ROOT
    _BLOCK_ROOT = str(root) if root is not None else None


def get_block_root() -> str | None:
    return _BLOCK_ROOT


def preload_sources(doc: dict) -> int:
    """Feed one BlockStore document into the in-process code caches
    (also used directly by sharding's slice children)."""
    loaded = blocks.preload_block_sources(doc.get("sources") or ())
    loaded += blocksummary.preload_cp_sources(doc.get("cp_sources") or ())
    return loaded


class WarmCache:
    """Per-process warm state: images by workload key, with integrity
    re-checks on every reuse, plus the on-disk block-source level.

    One instance lives for the lifetime of a worker process (or the
    serial loop). ``take_delta()`` snapshots per-task counter movement
    so each attempt can report its own reuse numbers.
    """

    def __init__(self, block_store: "BlockStore | None" = None):
        self.block_store = block_store
        # workload key -> (fingerprint, CompiledProgram), insertion-ordered
        self._images: dict[tuple, tuple[str, "CompiledProgram"]] = {}
        # block_key values already preloaded/exported this process
        self._preloaded: set[str] = set()
        self.counters = {
            "image_hits": 0,
            "image_misses": 0,
            "image_evictions": 0,
            "blocks_preloaded": 0,
            "block_store_hits": 0,
            "block_store_misses": 0,
            "block_store_puts": 0,
        }
        self._mark = self._snapshot()
        blocks.set_source_recording(True)
        blocksummary.set_cp_source_recording(True)
        # A forked worker inherits the parent's pending-source list;
        # start from a clean slate so exports stay per-task.
        blocks.drain_new_sources()
        blocksummary.drain_new_cp_sources()

    # -- images ----------------------------------------------------------

    def cached_program(self, key: tuple,
                       build: Callable[[], "CompiledProgram"]) -> "CompiledProgram":
        """The warm image for ``key``, building (and fingerprinting) it
        on a miss. On a hit, re-hash and verify — a poisoned entry is
        evicted and raises :class:`WarmStateError`."""
        entry = self._images.get(key)
        if entry is None:
            self.counters["image_misses"] += 1
            compiled = build()
            if len(self._images) >= MAX_WARM_IMAGES:
                oldest = next(iter(self._images))
                del self._images[oldest]
                self.counters["image_evictions"] += 1
            self._images[key] = (image_fingerprint(compiled), compiled)
            return compiled
        recorded_fp, compiled = entry
        # The warm fault site models a poisoned worker: it garbles the
        # cached ELF bytes exactly where a real corruption would land.
        faults.check("warm")
        compiled.elf_bytes = faults.corrupt("warm", compiled.elf_bytes)
        if image_fingerprint(compiled) != recorded_fp:
            del self._images[key]
            self.counters["image_evictions"] += 1
            raise WarmStateError(
                f"warm image for {key!r} failed its fingerprint re-check "
                f"(expected {recorded_fp[:12]}...)")
        self.counters["image_hits"] += 1
        return compiled

    def program_for(self, plan: "ExperimentPlan") -> "CompiledProgram":
        """The warm (or freshly built) image for ``plan``'s workload."""
        from repro.workloads import get_workload

        key = (plan.workload, plan.scale, plan.isa, plan.profile)

        def build() -> "CompiledProgram":
            workload = get_workload(plan.workload, scale=plan.scale)
            return workload.compile(plan.isa, plan.profile)

        return self.cached_program(key, build)

    # -- on-disk block sources -------------------------------------------

    def preload_blocks(self, compiled: "CompiledProgram",
                       translate: bool = True) -> int:
        """Load the image's stored block/summary sources into the
        in-process code caches (idempotent per image per process)."""
        if self.block_store is None or not translate:
            return 0
        key = block_key(image_fingerprint(compiled), translate)
        if key in self._preloaded:
            return 0
        self._preloaded.add(key)
        doc = self.block_store.get(key)
        if doc is None:
            self.counters["block_store_misses"] += 1
            return 0
        self.counters["block_store_hits"] += 1
        loaded = preload_sources(doc)
        self.counters["blocks_preloaded"] += loaded
        return loaded

    def export_blocks(self, compiled: "CompiledProgram",
                      translate: bool = True) -> int:
        """Persist block/summary sources generated since the last drain,
        merged with any existing entry (union of sources)."""
        fresh = blocks.drain_new_sources()
        fresh_cp = blocksummary.drain_new_cp_sources()
        if self.block_store is None or not translate:
            return 0
        if not fresh and not fresh_cp:
            return 0
        key = block_key(image_fingerprint(compiled), translate)
        existing = self.block_store.get(key)
        sources = set(fresh)
        cp_sources = set(fresh_cp)
        if existing is not None:
            sources.update(existing.get("sources") or ())
            cp_sources.update(existing.get("cp_sources") or ())
        self.block_store.put(key, sorted(sources), sorted(cp_sources))
        self.counters["block_store_puts"] += 1
        # the entry on disk now matches this process's caches
        self._preloaded.add(key)
        return len(fresh) + len(fresh_cp)

    # -- telemetry -------------------------------------------------------

    def _snapshot(self) -> dict:
        snap = dict(self.counters)
        code = blocks.code_cache_stats()
        cp = blocksummary.cp_cache_stats()
        snap["translation_reuse_hits"] = code["hits"] + cp["hits"]
        snap["translation_misses"] = code["misses"] + cp["misses"]
        return snap

    def take_delta(self) -> dict:
        """Counter movement since the previous ``take_delta`` call —
        one task's worth of warm-cache activity."""
        now = self._snapshot()
        delta = {k: now[k] - self._mark.get(k, 0) for k in now}
        self._mark = now
        return delta

    def stats_doc(self) -> dict:
        """Cumulative counters for telemetry (``WarmCacheStats``)."""
        return self._snapshot()
