"""Command-line driver: reproduce the paper's artifacts.

Usage::

    repro-isa-compare [--scale S] [--workloads stream,lbm,...] [--out DIR]
                      [--skip-windowed] [--windows 4,16,64,...]

Prints Figure 1, Table 1, Table 2 and Figure 2 renderings, and (with
``--out``) writes the artifact-style text files the paper's buildAndRun
script produced: ``kernelCounts.txt``, ``basicCPResult.txt``,
``scaledCPResult.txt`` and ``windowAverages.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.experiments import (
    run_figure1,
    run_figure2,
    run_suite,
    run_table1,
    run_table2,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-isa-compare",
        description="Reproduce 'An Empirical Comparison of the RISC-V and "
                    "AArch64 Instruction Sets' (SC-W 2023)",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem-size scale factor (default 1.0; see "
                             "DESIGN.md for the size mapping)")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated subset (default: all five)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for artifact-style text outputs")
    parser.add_argument("--skip-windowed", action="store_true",
                        help="skip the §6 windowed analysis (the slowest)")
    parser.add_argument("--windows", type=str, default=None,
                        help="comma-separated window sizes (default: paper's)")
    parser.add_argument("--future-cores", action="store_true",
                        help="also run the §8 finite-core timing models")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    kwargs = {}
    if args.windows:
        kwargs["window_sizes"] = tuple(int(w) for w in args.windows.split(","))
    suite = run_suite(
        args.scale,
        workloads=workloads,
        windowed=not args.skip_windowed,
        verbose=not args.quiet,
        **kwargs,
    )

    figure1 = run_figure1(suite=suite)
    table1 = run_table1(suite=suite)
    table2 = run_table2(suite=suite)
    figure2 = run_figure2(suite=suite) if not args.skip_windowed else None

    sections = [figure1.render(), table1.render(), table2.render()]
    if figure2 is not None:
        sections.append(figure2.render())
    future = None
    if args.future_cores:
        from repro.harness.experiments import run_future_cores

        future = run_future_cores(args.scale, workloads=workloads)
        sections.append(future.render())
    output = "\n\n\n".join(sections)
    print(output)

    if args.out is not None:
        from repro.plot import figure1_svg, figure2_svg

        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "kernelCounts.txt").write_text(figure1.render() + "\n")
        kernels = {name: list(wl.kernels)
                   for name, wl in suite.workloads.items()}
        (args.out / "kernelCounts.svg").write_text(
            figure1_svg(figure1.normalized, kernels)
        )
        (args.out / "basicCPResult.txt").write_text(table1.render() + "\n")
        (args.out / "scaledCPResult.txt").write_text(table2.render() + "\n")
        if figure2 is not None:
            (args.out / "windowAverages.txt").write_text(
                figure2.window_averages_text() + "\n"
            )
            (args.out / "meanILP.txt").write_text(figure2.render() + "\n")
            # the artifact's lineGraph.pdf, as SVG (matplotlib-free)
            (args.out / "lineGraph.svg").write_text(
                figure2_svg(figure2.series)
            )
        if future is not None:
            (args.out / "futureCores.txt").write_text(future.render() + "\n")
        if not args.quiet:
            print(f"\nartifact outputs written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
