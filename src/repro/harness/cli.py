"""Command-line driver: reproduce the paper's artifacts.

Subcommands::

    repro-isa-compare run    [--scale S] [--workloads stream,lbm,...]
                             [--jobs N] [--timeout SEC] [--heartbeat SEC]
                             [--retries N] [--resume RUN_ID]
                             [--no-warm-pool] [--max-tasks-per-worker N]
                             [--cache-dir DIR] [--no-cache]
                             [--skip-windowed] [--windows 4,16,...]
                             [--out DIR] [--future-cores] [--quiet]
    repro-isa-compare report [--scale S] [--workloads ...] [--out DIR] ...
    repro-isa-compare cache  {ls,stats,verify,clear} [--cache-dir DIR]
    repro-isa-compare fuzz   {run,replay,corpus} [--seed N] [--count N]
                             [--profiles p,q] [--out DIR] [--time-budget SEC]
    repro-isa-compare serve  [--host H] [--port N] [--cache-dir DIR]
                             [--jobs N] [--queue-limit N] [--client-quota N]
                             [--timeout SEC] [--heartbeat SEC]
                             [--max-tasks-per-worker N] [--drain-grace SEC]
                             [--ready-file FILE] [--dist-port N]
                             [--lease-timeout SEC] [--node-heartbeat SEC]
    repro-isa-compare worker --connect HOST:PORT [--name NAME]
                             [--cache-dir DIR] [--jobs N]
                             [--heartbeat SEC] [--retries N]
                             [--max-tasks-per-worker N] [--no-reconnect]
                             [--connect-retries N] [--fault-plan FILE]

``run`` simulates the experiment matrix (fanning out across ``--jobs``
worker processes) and prints Figure 1, Table 1, Table 2 and Figure 2
renderings; results are stored in a content-addressed on-disk cache, so
a second identical invocation performs zero simulations. ``report``
renders the same artifacts purely from the cache — it never simulates —
and ``cache`` inspects or empties the store. With ``--out`` both ``run``
and ``report`` write the artifact-style text files the paper's
buildAndRun script produced: ``kernelCounts.txt``, ``basicCPResult.txt``,
``scaledCPResult.txt`` and ``windowAverages.txt``.

With a cache, every ``run`` journals completed plans under
``<cache>/runs/<run-id>.jsonl`` (see :mod:`repro.harness.checkpoint`);
a suite killed mid-run is detected on the next start and can be
continued with ``--resume RUN_ID``, which restores the original
parameters and re-executes only unfinished plans. ``--fault-plan FILE``
installs a serialized :class:`repro.harness.faults.FaultPlan` — the
deterministic fault-injection harness used by the robustness tests
(see docs/robustness.md).

``serve`` runs the long-lived multi-tenant experiment daemon
(:mod:`repro.serve`): submit suites over HTTP/JSON, stream progress as
server-sent events, and survive crashes via per-job journals (see
docs/serve.md). With ``--dist-port`` it also opens the distributed
tier's node listener, and ``worker`` runs one remote execution node
that dials it (see docs/dist.md) — SIGTERM drains the node gracefully.

Exit codes (all subcommands):

====  ==================================================================
code  meaning
====  ==================================================================
0     success (``fuzz``: no findings; ``serve``: clean drain)
1     ``fuzz`` found divergences (reproducers written with ``--out``)
2     usage or execution error (bad flags, failed plans, corrupt
      ``--fault-plan``, unknown run id, ...)
3     plans failed *with guest-fault post-mortems* (the post-mortem was
      rendered to stderr)
====  ==================================================================

The pre-subcommand invocation (``repro-isa-compare --scale ...``) was
deprecated in the first subcommand release and has been removed; it now
exits with an error naming the subcommands.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.common.errors import ExperimentError
from repro.harness.executor import SuiteExecutionError
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.events import ConsoleReporter, EventBus, TimingCollector
from repro.harness.executor import validate_limits
from repro.harness.experiments import (
    SuiteResult,
    run_figure1,
    run_figure2,
    run_suite,
    run_table1,
    run_table2,
)
from repro.harness.plan import ExperimentPlan, plan_suite

_SUBCOMMANDS = ("run", "report", "cache", "fuzz", "serve", "worker")

#: The documented exit-code contract (also in the module docstring).
EXIT_CODES = {
    0: "success (fuzz: no findings; serve: clean drain)",
    1: "fuzz found divergences",
    2: "usage or execution error",
    3: "plans failed with guest-fault post-mortems",
}


def _load_fault_plan(path: pathlib.Path):
    """Read, parse, and validate a ``--fault-plan`` file; every failure
    mode becomes a one-line ExperimentError naming the file (exit 2)
    instead of a traceback."""
    from repro.harness import faults

    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise ExperimentError(
            f"cannot read fault plan {path}: {err}") from None
    try:
        return faults.FaultPlan.loads(text).validate()
    except ExperimentError as err:
        raise ExperimentError(f"fault plan {path}: {err}") from None
    except (ValueError, KeyError, TypeError) as err:
        raise ExperimentError(
            f"fault plan {path} is not a valid FaultPlan JSON document: "
            f"{err}") from None


def _add_selection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem-size scale factor (default 1.0; see "
                             "DESIGN.md for the size mapping)")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated subset (default: all five)")
    parser.add_argument("--skip-windowed", action="store_true",
                        help="skip the §6 windowed analysis (the slowest)")
    parser.add_argument("--windows", type=str, default=None,
                        help="comma-separated window sizes (default: paper's)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for artifact-style text outputs")
    parser.add_argument("--quiet", action="store_true")


def _add_cache_dir_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        help=f"result cache directory (default "
                             f"{default_cache_dir()})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-isa-compare",
        description="Reproduce 'An Empirical Comparison of the RISC-V and "
                    "AArch64 Instruction Sets' (SC-W 2023)",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser(
        "run", help="simulate the experiment matrix and render artifacts")
    _add_selection_args(run_p)
    _add_cache_dir_arg(run_p)
    run_p.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for the matrix (default: one "
                            "per CPU, capped at the number of configs to "
                            "simulate; 1 = in-process serial)")
    run_p.add_argument("--timeout", type=float, default=None,
                       help="per-config wall-clock limit in seconds "
                            "(runs each config in a killable worker)")
    run_p.add_argument("--heartbeat", type=float, default=None,
                       help="hang-detection deadline in seconds: a worker "
                            "silent for longer is killed and retried "
                            "(distinct from --timeout, which bounds "
                            "legitimate work)")
    run_p.add_argument("--retries", type=int, default=1,
                       help="extra attempts after a transient failure "
                            "(default 1)")
    run_p.add_argument("--warm-pool", dest="warm_pool", action="store_true",
                       default=True,
                       help="persistent warm workers: reuse loaded images "
                            "and translated blocks across plans (default)")
    run_p.add_argument("--no-warm-pool", dest="warm_pool",
                       action="store_false",
                       help="legacy mode: fork a fresh process per plan "
                            "attempt, no cross-plan reuse (the byte-identity "
                            "baseline)")
    run_p.add_argument("--max-tasks-per-worker", type=int, default=0,
                       metavar="N",
                       help="recycle each warm worker after N plans "
                            "(default 0 = never)")
    run_p.add_argument("--resume", type=str, default=None, metavar="RUN_ID",
                       help="continue an interrupted suite: restore its "
                            "parameters from the run journal and re-execute "
                            "only unfinished configs (requires the cache)")
    run_p.add_argument("--fault-plan", type=pathlib.Path, default=None,
                       metavar="FILE",
                       help="install a serialized FaultPlan (JSON) for "
                            "deterministic fault injection — testing only")
    run_p.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
    run_p.add_argument("--no-translate", action="store_true",
                       help="force the per-instruction interpreter instead "
                            "of the basic-block translation fast path "
                            "(identical results, slower; the differential "
                            "oracle)")
    run_p.add_argument("--shards", type=str, default=None, metavar="N|auto",
                       help="deterministic intra-run sharding: fast-forward "
                            "+ snapshot each config once, then analyze its "
                            "retirement stream in N parallel slices "
                            "('auto' picks a slice count from the CPU "
                            "count). Results are byte-identical to serial "
                            "runs and share their cache entries")
    run_p.add_argument("--future-cores", action="store_true",
                       help="also run the §8 finite-core timing models")

    report_p = sub.add_parser(
        "report", help="render artifacts from cached results (no simulation)")
    _add_selection_args(report_p)
    _add_cache_dir_arg(report_p)

    cache_p = sub.add_parser("cache", help="inspect or empty the result cache")
    cache_p.add_argument("action", choices=("ls", "stats", "verify", "clear"))
    _add_cache_dir_arg(cache_p)
    cache_p.add_argument("--quiet", action="store_true")

    fuzz_p = sub.add_parser(
        "fuzz", help="cross-ISA differential fuzzing of the compiler and "
                     "simulator (see docs/robustness.md)")
    fuzz_sub = fuzz_p.add_subparsers(dest="fuzz_command")

    fuzz_run = fuzz_sub.add_parser(
        "run", help="generate and differentially execute random programs")
    fuzz_run.add_argument("--seed", type=int, default=0,
                          help="first case seed (default 0)")
    fuzz_run.add_argument("--count", type=int, default=50,
                          help="cases per profile (default 50)")
    fuzz_run.add_argument("--profiles", type=str, default=None,
                          help="comma-separated profile subset "
                               "(default: all four)")
    fuzz_run.add_argument("--out", type=pathlib.Path, default=None,
                          help="directory for minimized reproducers")
    fuzz_run.add_argument("--time-budget", type=float, default=None,
                          metavar="SEC",
                          help="stop starting new cases after SEC seconds")
    fuzz_run.add_argument("--max-instructions", type=int, default=None,
                          help="per-run retirement budget")
    fuzz_run.add_argument("--no-minimize", action="store_true",
                          help="report findings without shrinking them")
    fuzz_run.add_argument("--serve-oracle", action="store_true",
                          help="also round-trip a small suite through an "
                               "in-process serve daemon each case and "
                               "require the HTTP-served artifacts to be "
                               "byte-identical to a direct run_suite "
                               "rendering")
    fuzz_run.add_argument("--dist-oracle", action="store_true",
                          help="also scatter a small suite across two "
                               "in-process worker nodes each case — with "
                               "an injected mid-run socket cut — and "
                               "require the distributed artifacts to be "
                               "byte-identical to a direct run_suite "
                               "rendering")
    fuzz_run.add_argument("--fault-plan", type=pathlib.Path, default=None,
                          metavar="FILE",
                          help="install a serialized FaultPlan while "
                               "fuzzing (e.g. a semantics/skew spec, to "
                               "demonstrate the oracle catches it)")
    fuzz_run.add_argument("--quiet", action="store_true")

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-judge stored .kc reproducer files")
    fuzz_replay.add_argument("files", type=pathlib.Path, nargs="+")
    fuzz_replay.add_argument("--max-instructions", type=int, default=None)
    fuzz_replay.add_argument("--quiet", action="store_true")

    fuzz_corpus = fuzz_sub.add_parser(
        "corpus", help="replay the checked-in regression corpus")
    fuzz_corpus.add_argument("--max-instructions", type=int, default=None)
    fuzz_corpus.add_argument("--quiet", action="store_true")

    serve_p = sub.add_parser(
        "serve",
        help="run the multi-tenant experiment daemon (HTTP/JSON + SSE)",
        description="Long-lived experiment service: submit suites with "
                    "POST /jobs, poll GET /jobs/ID, fetch rendered "
                    "artifacts from GET /jobs/ID/artifacts/NAME, stream "
                    "progress from GET /events. Jobs are journaled under "
                    "<cache>/serve/jobs/ before dispatch, so a killed "
                    "daemon resumes every in-flight job on restart with "
                    "byte-identical artifacts and zero re-execution of "
                    "cached plans. SIGTERM drains gracefully: stop "
                    "admitting (readyz goes 503), finish in-flight work "
                    "within --drain-grace, recycle the worker pool. "
                    "Exit codes: 0 clean drain, 2 startup/usage error. "
                    "See docs/serve.md for the API and failure matrix.",
    )
    serve_p.add_argument("--host", type=str, default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8123,
                         help="TCP port; 0 picks a free port "
                              "(default 8123)")
    _add_cache_dir_arg(serve_p)
    serve_p.add_argument("--jobs", "-j", type=int, default=None,
                         help="executor worker processes shared by all "
                              "requests (default: one per CPU)")
    serve_p.add_argument("--queue-limit", type=int, default=16,
                         metavar="N",
                         help="bounded queue depth; submissions beyond "
                              "it shed with 429 + Retry-After "
                              "(default 16)")
    serve_p.add_argument("--client-quota", type=int, default=4,
                         metavar="N",
                         help="max outstanding jobs per client, 0 = "
                              "unlimited (default 4)")
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="default per-plan wall-clock limit for "
                              "jobs submitted without their own timeout")
    serve_p.add_argument("--heartbeat", type=float, default=None,
                         help="worker hang-detection deadline in seconds")
    serve_p.add_argument("--max-tasks-per-worker", type=int, default=0,
                         metavar="N",
                         help="recycle each warm worker after N plans "
                              "(default 0 = never) — the daemon's worker "
                              "hygiene knob")
    serve_p.add_argument("--drain-grace", type=float, default=10.0,
                         metavar="SEC",
                         help="seconds SIGTERM waits for in-flight jobs "
                              "before exiting (default 10); whatever "
                              "misses the grace stays journaled and "
                              "resumes on the next start")
    serve_p.add_argument("--ready-file", type=pathlib.Path, default=None,
                         metavar="FILE",
                         help="write {host, port, pid} JSON here once "
                              "listening (for supervisors and tests)")
    serve_p.add_argument("--dist-port", type=int, default=None,
                         metavar="N",
                         help="also open the distributed tier's node "
                              "listener on this TCP port (0 picks a free "
                              "port, reported in --ready-file); worker "
                              "nodes connect with 'repro-isa-compare "
                              "worker --connect HOST:PORT'")
    serve_p.add_argument("--lease-timeout", type=float, default=60.0,
                         metavar="SEC",
                         help="seconds before an unanswered remote lease "
                              "expires and its plan is redispatched "
                              "(default 60)")
    serve_p.add_argument("--node-heartbeat", type=float, default=5.0,
                         metavar="SEC",
                         help="silence budget before a lease-holding node "
                              "with an open socket is declared hung "
                              "(default 5)")
    serve_p.add_argument("--fault-plan", type=pathlib.Path, default=None,
                         metavar="FILE",
                         help="install a serialized FaultPlan (JSON) — "
                              "chaos testing only")
    serve_p.add_argument("--quiet", action="store_true")

    worker_p = sub.add_parser(
        "worker",
        help="run one distributed-tier execution node",
        description="One remote worker node for the distributed tier: "
                    "dials the serve daemon's --dist-port listener, "
                    "registers, and executes leased plans on its own "
                    "warm pool and cache. SIGTERM drains gracefully "
                    "(finish the current plan, flush its result, exit "
                    "0). Exit codes: 0 clean drain/stop, 1 fatal "
                    "failure, 2 usage error. See docs/dist.md.",
    )
    worker_p.add_argument("--connect", type=str, required=True,
                          metavar="HOST:PORT",
                          help="the daemon's dist listener address")
    worker_p.add_argument("--name", type=str, default=None,
                          help="node name (default: unique per process)")
    _add_cache_dir_arg(worker_p)
    worker_p.add_argument("--jobs", "-j", type=int, default=1,
                          help="node-local worker processes (default 1)")
    worker_p.add_argument("--heartbeat", type=float, default=2.0,
                          help="heartbeat silence budget advertised to "
                               "the daemon (default 2)")
    worker_p.add_argument("--retries", type=int, default=1,
                          help="node-local transient retries (default 1)")
    worker_p.add_argument("--max-tasks-per-worker", type=int, default=0,
                          metavar="N",
                          help="recycle each warm worker after N plans "
                               "(default 0 = never)")
    worker_p.add_argument("--no-reconnect", action="store_true",
                          help="exit instead of redialing after losing "
                               "the daemon")
    worker_p.add_argument("--connect-retries", type=int, default=8,
                          metavar="N",
                          help="bounded attempts per (re)connect cycle "
                               "(default 8)")
    worker_p.add_argument("--fault-plan", type=pathlib.Path, default=None,
                          metavar="FILE",
                          help="install a serialized FaultPlan (JSON) — "
                               "chaos testing only")
    worker_p.add_argument("--quiet", action="store_true")
    return parser


def _parse_selection(args) -> dict:
    workloads = None
    if args.workloads:
        workloads = tuple(w.strip() for w in args.workloads.split(",")
                          if w.strip())
    windows = None
    if args.windows:
        try:
            windows = tuple(int(w) for w in args.windows.split(","))
        except ValueError:
            raise ExperimentError(
                f"--windows must be a comma-separated list of integers, "
                f"got {args.windows!r}"
            ) from None
        if any(w < 1 for w in windows):
            raise ExperimentError(
                f"--windows sizes must be >= 1, got {args.windows!r}"
            )
    return {"workloads": workloads, "window_sizes": windows}


def _parse_shards(value: str | None) -> int:
    """``--shards N|auto`` → the plan's ``shards`` field (auto = 0)."""
    if value is None:
        return 1
    if value.strip().lower() == "auto":
        return 0
    try:
        shards = int(value)
    except ValueError:
        raise ExperimentError(
            f"--shards must be an integer or 'auto', got {value!r}"
        ) from None
    if shards < 1:
        raise ExperimentError(f"--shards must be >= 1 (or 'auto'), "
                              f"got {shards}")
    return shards


def _render_and_write(suite: SuiteResult, args, *,
                      windowed: bool, future=None) -> None:
    figure1 = run_figure1(suite=suite)
    table1 = run_table1(suite=suite)
    table2 = run_table2(suite=suite)
    figure2 = run_figure2(suite=suite) if windowed else None

    sections = [figure1.render(), table1.render(), table2.render()]
    if figure2 is not None:
        sections.append(figure2.render())
    if future is not None:
        sections.append(future.render())
    print("\n\n\n".join(sections))

    if args.out is not None:
        from repro.plot import figure1_svg, figure2_svg

        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "kernelCounts.txt").write_text(figure1.render() + "\n")
        kernels = {name: list(wl.kernels)
                   for name, wl in suite.workloads.items()}
        (args.out / "kernelCounts.svg").write_text(
            figure1_svg(figure1.normalized, kernels)
        )
        (args.out / "basicCPResult.txt").write_text(table1.render() + "\n")
        (args.out / "scaledCPResult.txt").write_text(table2.render() + "\n")
        if figure2 is not None:
            (args.out / "windowAverages.txt").write_text(
                figure2.window_averages_text() + "\n"
            )
            (args.out / "meanILP.txt").write_text(figure2.render() + "\n")
            # the artifact's lineGraph.pdf, as SVG (matplotlib-free)
            (args.out / "lineGraph.svg").write_text(
                figure2_svg(figure2.series)
            )
        if future is not None:
            (args.out / "futureCores.txt").write_text(future.render() + "\n")
        if not args.quiet:
            print(f"\nartifact outputs written to {args.out}", file=sys.stderr)


# ------------------------------------------------------------------- run

def _cmd_run(args) -> int:
    from repro.analysis.windowed import PAPER_WINDOW_SIZES
    from repro.harness import faults
    from repro.harness.checkpoint import RunJournal, unfinished_runs
    from repro.harness.plan import suite_from_params, suite_params_doc

    selection = _parse_selection(args)
    # Reject bad supervision knobs before a journal is created for a run
    # that will never start.
    validate_limits(jobs=args.jobs, timeout=args.timeout,
                    heartbeat=args.heartbeat, retries=args.retries)
    windowed = not args.skip_windowed
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    journal = None
    if args.resume is not None:
        if cache is None:
            raise ExperimentError("--resume requires the result cache "
                                  "(drop --no-cache)")
        journal = RunJournal.load(cache.root, args.resume)
        if journal.finished:
            raise ExperimentError(
                f"run {journal.run_id} already finished; nothing to resume")
        params = journal.params
        if not args.quiet:
            print(f"resuming run {journal.run_id}: "
                  f"{len(journal.done)}/{journal.total} configs already "
                  f"journaled", file=sys.stderr)
    else:
        params = suite_params_doc(
            args.scale,
            workloads=selection["workloads"],
            windowed=windowed,
            window_sizes=selection["window_sizes"] or PAPER_WINDOW_SIZES,
            translate=not args.no_translate,
            shards=_parse_shards(args.shards),
        )
        if cache is not None:
            crashed = unfinished_runs(cache.root)
            if crashed and not args.quiet:
                print(f"note: {len(crashed)} unfinished run(s) in "
                      f"{cache.root}: {', '.join(crashed)} — continue one "
                      f"with --resume RUN_ID", file=sys.stderr)
            journal = RunJournal.create(
                cache.root, params, total=len(suite_from_params(params)))
            if not args.quiet:
                print(f"run id: {journal.run_id} (continue an interrupted "
                      f"suite with --resume {journal.run_id})",
                      file=sys.stderr)

    bus = EventBus()
    timing = TimingCollector()
    bus.subscribe(timing)
    if journal is not None:
        bus.subscribe(journal.subscriber)
    if not args.quiet:
        bus.subscribe(ConsoleReporter(sys.stderr))

    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
        faults.install(fault_plan)
    try:
        suite = run_suite(
            float(params["scale"]),
            workloads=(tuple(params["workloads"])
                       if params.get("workloads") else None),
            windowed=bool(params["windowed"]),
            window_sizes=tuple(params["window_sizes"]),
            jobs=args.jobs,
            cache=cache,
            timeout=args.timeout,
            heartbeat=args.heartbeat,
            retries=args.retries,
            events=bus,
            translate=bool(params.get("translate", True)),
            shards=int(params.get("shards", 1)),
            warm_pool=args.warm_pool,
            max_tasks_per_worker=args.max_tasks_per_worker,
        )
    finally:
        if fault_plan is not None:
            faults.uninstall()
        if journal is not None:
            journal.close()  # keep appended lines; no finished marker yet
    windowed = bool(params["windowed"])

    future = None
    if args.future_cores:
        from repro.harness.experiments import run_future_cores

        future = run_future_cores(float(params["scale"]),
                                  workloads=(tuple(params["workloads"])
                                             if params.get("workloads")
                                             else None))
    _render_and_write(suite, args, windowed=windowed, future=future)
    if journal is not None:
        journal.finish()

    if not args.quiet:
        summary = timing.summary()
        line = (f"engine: {summary['executed'] - summary['trace_hits']} "
                f"simulated, {summary['trace_hits']} trace replays, "
                f"{summary['cache_hits']} cache hits, "
                f"{summary['retries']} retries "
                f"in {summary['suite_seconds']:.2f}s")
        if cache is not None:
            line += f" (cache: {cache.root})"
        print(line, file=sys.stderr)
        warm = summary["warm"]
        if warm:
            line = (f"warm: {warm.get('image_hits', 0)} image reuses, "
                    f"{warm.get('translation_reuse_hits', 0)} translation "
                    f"reuse hits, {warm.get('blocks_preloaded', 0)} block "
                    f"sources preloaded")
            if summary["workers_recycled"]:
                line += (f", {summary['workers_recycled']} worker(s) "
                         f"recycled")
            print(line, file=sys.stderr)
        if summary["sharded_plans"]:
            line = (f"sharding: {summary['sharded_plans']} config(s) ran "
                    f"sliced")
            if summary["shard_fallbacks"]:
                line += (f", {summary['shard_fallbacks']} slice(s) fell "
                         f"back to serial")
            print(line, file=sys.stderr)
        translation = summary["translation"]
        if translation:
            total = translation.get("block_instructions", 0)
            inlined = translation.get("inlined_instructions", 0)
            pct = 100.0 * inlined / total if total else 0.0
            print(f"translation: {translation.get('blocks', 0)} blocks "
                  f"({translation.get('looping_blocks', 0)} looping) across "
                  f"{summary['translated_plans']} simulations, "
                  f"{pct:.1f}% of block instructions inlined",
                  file=sys.stderr)
    return 0


# ---------------------------------------------------------------- report

def _suite_from_cache(cache: ResultCache, plans: list[ExperimentPlan],
                      scale: float,
                      window_sizes: tuple[int, ...]) -> SuiteResult:
    from repro.workloads import get_workload

    results = {}
    missing = []
    for plan in plans:
        result = cache.get(plan)
        if result is None:
            missing.append(plan.describe())
        else:
            results[plan] = result
    if missing:
        raise ExperimentError(
            f"{len(missing)} of {len(plans)} configs are not in the cache "
            f"({cache.root}): {', '.join(missing)}; "
            f"run 'repro-isa-compare run' with the same parameters first"
        )
    names = tuple(dict.fromkeys(plan.workload for plan in plans))
    suite = SuiteResult(
        scale=scale,
        workloads={name: get_workload(name, scale) for name in names},
        window_sizes=window_sizes,
    )
    for plan, result in results.items():
        suite.configs[plan.config_key] = result
    return suite


def _cmd_report(args) -> int:
    from repro.analysis.windowed import PAPER_WINDOW_SIZES

    selection = _parse_selection(args)
    windowed = not args.skip_windowed
    sizes = selection["window_sizes"] or PAPER_WINDOW_SIZES
    cache = ResultCache(args.cache_dir)
    plans = plan_suite(
        args.scale,
        workloads=selection["workloads"],
        windowed=windowed,
        window_sizes=sizes,
    )
    suite = _suite_from_cache(cache, plans, args.scale, sizes)
    _render_and_write(suite, args, windowed=windowed)
    if not args.quiet:
        print(f"report: {len(plans)} configs rendered from cache "
              f"({cache.root}), zero simulations", file=sys.stderr)
    return 0


# ----------------------------------------------------------------- cache

def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        if not args.quiet:
            print(f"removed {removed} cached results from {cache.root}")
        return 0
    if args.action == "verify":
        report = cache.verify()
        results = report["results"]
        traces = report["traces"]
        jobs = report["jobs"]
        print(f"cache root : {cache.root}")
        print(f"results    : {results['checked']} checked, "
              f"{results['ok']} ok, {results['quarantined']} quarantined")
        print(f"traces     : {traces['checked']} checked, "
              f"{traces['ok']} ok, {traces['quarantined']} quarantined")
        print(f"jobs       : {jobs['checked']} checked, "
              f"{jobs['ok']} ok, {jobs['quarantined']} quarantined")
        print(f"tmp files  : {report['tmp_removed']} stragglers removed")
        bad = (results["quarantined"] + traces["quarantined"]
               + jobs["quarantined"])
        if bad:
            print(f"{bad} corrupt entr{'y' if bad == 1 else 'ies'} moved to "
                  f"{cache.root / 'quarantine'}; they will be re-simulated "
                  f"on the next run")
        return 1 if bad else 0
    if args.action == "stats":
        stats = cache.disk_stats()
        print(f"cache root : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"total size : {stats['bytes']} bytes")
        print(f"traces     : {stats['trace_entries']} "
              f"({stats['trace_bytes']} bytes)")
        return 0
    # ls
    entries = cache.entries()
    if not entries:
        print(f"(cache at {cache.root} is empty)")
        return 0
    for entry in entries:
        if entry.plan is not None:
            desc = (f"{entry.plan.describe():32s} scale={entry.plan.scale:g}"
                    f"{' windowed' if entry.plan.windowed else ''}")
        else:
            desc = "(unreadable entry)"
        age = time.time() - entry.created if entry.created else 0.0
        print(f"{entry.key[:12]}  {desc:48s} {entry.bytes:8d} B  "
              f"{entry.seconds:7.2f}s sim  {age / 3600.0:6.1f}h old")
    return 0


# ------------------------------------------------------------------ fuzz

def _print_finding(finding, *, quiet: bool) -> None:
    from repro.sim.postmortem import GuestFaultReport

    where = finding.isa or "cross-ISA"
    print(f"FINDING [{finding.kind}] {where}: {finding.detail}",
          file=sys.stderr)
    if finding.fault and not quiet:
        report = GuestFaultReport.from_dict(finding.fault)
        print(report.render(), file=sys.stderr)


def _cmd_fuzz(args) -> int:
    from repro import fuzz
    from repro.harness import faults

    if args.fuzz_command == "run":
        profiles = fuzz.PROFILES
        if args.profiles:
            profiles = tuple(p.strip() for p in args.profiles.split(",")
                             if p.strip())
            unknown = [p for p in profiles if p not in fuzz.PROFILES]
            if unknown:
                raise ExperimentError(
                    f"unknown fuzz profile(s) {', '.join(unknown)}; "
                    f"expected a subset of {', '.join(fuzz.PROFILES)}")
        budget = args.max_instructions or fuzz.differential.\
            DEFAULT_MAX_INSTRUCTIONS

        def progress(seed, profile, finding):
            if finding is not None:
                _print_finding(finding, quiet=args.quiet)

        fault_plan = None
        if args.fault_plan is not None:
            fault_plan = _load_fault_plan(args.fault_plan)
            faults.install(fault_plan)
        try:
            summary = fuzz.run_campaign(
                args.seed, args.count, profiles=profiles,
                out_dir=args.out, time_budget=args.time_budget,
                max_instructions=budget,
                minimize=not args.no_minimize,
                progress=progress if not args.quiet else None,
                serve_oracle=args.serve_oracle,
                dist_oracle=args.dist_oracle)
        finally:
            if fault_plan is not None:
                faults.uninstall()
        findings = summary["finding_objects"]
        if not args.quiet:
            print(f"fuzz: {summary['cases']} cases "
                  f"({', '.join(profiles)}), {len(findings)} finding(s) "
                  f"in {summary['elapsed']:.1f}s ({summary['stopped']})",
                  file=sys.stderr)
            if args.out is not None and findings:
                print(f"reproducers written to {args.out}", file=sys.stderr)
        return 1 if findings else 0

    if args.fuzz_command == "replay":
        bad = 0
        for path in args.files:
            found = fuzz.replay_source(
                path.read_text(encoding="utf-8"),
                max_instructions=args.max_instructions
                or fuzz.differential.DEFAULT_MAX_INSTRUCTIONS)
            status = "clean" if not found else \
                f"{len(found)} finding(s)"
            if not args.quiet or found:
                print(f"{path}: {status}", file=sys.stderr)
            for finding in found:
                bad += 1
                _print_finding(finding, quiet=args.quiet)
        return 1 if bad else 0

    if args.fuzz_command == "corpus":
        results = fuzz.replay_corpus(
            max_instructions=args.max_instructions)
        bad = 0
        for name, found in sorted(results.items()):
            if not args.quiet or found:
                print(f"{name}: "
                      f"{'clean' if not found else f'{len(found)} finding(s)'}",
                      file=sys.stderr)
            for finding in found:
                bad += 1
                _print_finding(finding, quiet=args.quiet)
        if not args.quiet:
            print(f"corpus: {len(results)} file(s), {bad} finding(s)",
                  file=sys.stderr)
        return 1 if bad else 0

    raise ExperimentError(
        "usage: repro-isa-compare fuzz {run,replay,corpus} ...")


def _render_guest_faults(err: SuiteExecutionError) -> bool:
    """Render every attempt's guest-fault post-mortem; True if any."""
    from repro.sim.postmortem import GuestFaultReport

    rendered = False
    for report in err.reports:
        for attempt in report.attempts:
            if attempt.fault:
                rendered = True
                print(f"\npost-mortem for {report.plan.describe()} "
                      f"(attempt {attempt.attempt}):", file=sys.stderr)
                print(GuestFaultReport.from_dict(attempt.fault).render(),
                      file=sys.stderr)
    return rendered


# ----------------------------------------------------------------- serve

def _cmd_serve(args) -> int:
    from repro.harness import faults
    from repro.serve import ServeApp

    validate_limits(jobs=args.jobs, timeout=args.timeout,
                    heartbeat=args.heartbeat)
    if args.queue_limit < 1:
        raise ExperimentError(
            f"--queue-limit must be >= 1, got {args.queue_limit}")
    if args.client_quota < 0:
        raise ExperimentError(
            f"--client-quota must be >= 0, got {args.client_quota}")
    if args.drain_grace < 0:
        raise ExperimentError(
            f"--drain-grace must be >= 0, got {args.drain_grace}")
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
        faults.install(fault_plan)
    if args.lease_timeout <= 0:
        raise ExperimentError(
            f"--lease-timeout must be positive, got {args.lease_timeout}")
    if args.node_heartbeat <= 0:
        raise ExperimentError(
            f"--node-heartbeat must be positive, got {args.node_heartbeat}")
    if args.dist_port is not None and not 0 <= args.dist_port <= 65535:
        raise ExperimentError(
            f"--dist-port must be 0-65535, got {args.dist_port}")
    app = ServeApp(
        args.cache_dir, jobs=args.jobs, queue_limit=args.queue_limit,
        client_quota=args.client_quota, timeout=args.timeout,
        heartbeat=args.heartbeat,
        max_tasks_per_worker=args.max_tasks_per_worker,
        drain_grace=args.drain_grace, dist_port=args.dist_port,
        lease_timeout=args.lease_timeout,
        node_heartbeat=args.node_heartbeat)
    if not args.quiet:
        def on_ready(host, port):
            print(f"repro serve listening on http://{host}:{port} "
                  f"(cache: {app.cache.root}); SIGTERM drains "
                  f"gracefully", file=sys.stderr)
    else:
        on_ready = None
    try:
        app.serve(args.host, args.port, ready_file=args.ready_file,
                  on_ready=on_ready)
    finally:
        if fault_plan is not None:
            faults.uninstall()
    if not args.quiet:
        print("repro serve: drained cleanly", file=sys.stderr)
    return 0


# ---------------------------------------------------------------- worker

def _cmd_worker(args) -> int:
    import signal

    from repro.dist.worker import WorkerNode
    from repro.harness import faults

    host, sep, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not sep or not host or not 0 < port < 65536:
        raise ExperimentError(
            f"--connect must be HOST:PORT, got {args.connect!r}")
    validate_limits(jobs=args.jobs, heartbeat=args.heartbeat,
                    retries=args.retries)
    if args.connect_retries < 1:
        raise ExperimentError(
            f"--connect-retries must be >= 1, got {args.connect_retries}")
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
        faults.install(fault_plan)
    node = WorkerNode(
        host, port, name=args.name, cache_root=args.cache_dir,
        jobs=args.jobs, heartbeat=args.heartbeat, retries=args.retries,
        max_tasks_per_worker=args.max_tasks_per_worker,
        reconnect=not args.no_reconnect,
        connect_retries=args.connect_retries,
        allow_crash=True,  # subprocess: injected crashes may os._exit
        quiet=args.quiet)

    def on_sigterm(_signum, _frame):
        # Graceful drain: stop dialing, close the socket out from under
        # the serve loop; the run() loop exits 0.
        node.stop(timeout=0.0)

    signal.signal(signal.SIGTERM, on_sigterm)
    if not args.quiet:
        print(f"worker {node.name}: connecting to {host}:{port} "
              f"(cache: {node.executor.cache.root})", file=sys.stderr)
    try:
        return node.run()
    finally:
        if fault_plan is not None:
            faults.uninstall()


# ------------------------------------------------------------------ main

def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if not argv or (argv[0] not in _SUBCOMMANDS
                    and argv[0] not in ("-h", "--help")):
        print("error: flag-only invocation has been removed; pick a "
              "subcommand: repro-isa-compare run|report|cache|fuzz|serve "
              "(e.g. 'repro-isa-compare run --scale 0.1'; see --help)",
              file=sys.stderr)
        return 2

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
    except SuiteExecutionError as err:
        print(f"error: {err}", file=sys.stderr)
        return 3 if _render_guest_faults(err) else 2
    except ExperimentError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
