"""Experiment plans: the frozen, hashable description of one configuration.

An :class:`ExperimentPlan` captures *everything* that determines the
result of one workload × ISA × compiler-profile simulation — problem
scale, probe configuration (windowed analysis and its window sizes), the
scaled-critical-path core model, and the instruction budget. Two plans
that compare equal produce identical results; the content-addressed
result cache (:mod:`repro.harness.cache`) and the parallel executor
(:mod:`repro.harness.executor`) both rely on this.

The full paper matrix (5 workloads × 2 ISAs × 2 profiles) is produced by
:func:`plan_suite`; windowed analysis is attached to GCC 12.2 plans only,
per §6.1 of the paper.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.analysis.windowed import PAPER_WINDOW_SIZES
from repro.common.errors import ExperimentError
from repro.workloads import ALL_WORKLOADS

ISAS = ("aarch64", "rv64")
PROFILES = ("gcc9", "gcc12")
#: Figure 1 normalizes every bar to this configuration.
BASELINE = ("aarch64", "gcc9")
CLOCK_GHZ = 2.0

#: §5.1: the TX2 model for AArch64, the TX2-derived model for RISC-V.
SCALED_MODELS = {"aarch64": "tx2", "rv64": "tx2-riscv"}

ISA_DISPLAY = {"aarch64": "AArch64", "rv64": "RISC-V"}
PROFILE_DISPLAY = {"gcc9": "GCC 9.2", "gcc12": "GCC 12.2"}

#: Bump when the serialized shape of :class:`ExperimentPlan` changes.
#: v3 adds ``shards`` (execution strategy, like ``translate`` — part of
#: the serialized plan but excluded from the result fingerprint).
PLAN_SCHEMA = 3


@dataclass(frozen=True)
class ExperimentPlan:
    """One simulation to run: a hashable value object, safe to use as a
    dict key, to ship to a worker process, or to hash into a cache key."""

    workload: str
    isa: str
    profile: str
    scale: float = 1.0
    windowed: bool = False
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES
    slide_fraction: float = 0.5
    #: Core model for the §5 scaled critical path; defaults per ISA.
    model: str = ""
    max_instructions: int = 500_000_000
    #: Use the basic-block translation fast path (:mod:`repro.sim.blocks`).
    #: Results are identical either way (the interpreter is the
    #: differential oracle); False forces per-instruction interpretation.
    translate: bool = True
    #: Deterministic intra-run sharding (:mod:`repro.harness.sharding`):
    #: 1 (default) runs serially, N > 1 analyzes the retirement stream
    #: in N parallel slices, 0 picks a slice count from the CPU count.
    #: Results are byte-identical at any value, so — like ``translate``
    #: — this is an execution strategy, excluded from the fingerprint.
    shards: int = 1

    def __post_init__(self):
        if self.workload not in ALL_WORKLOADS:
            raise ExperimentError(
                f"unknown workload {self.workload!r}; "
                f"known: {sorted(ALL_WORKLOADS)}"
            )
        if self.isa not in ISAS:
            raise ExperimentError(f"unknown ISA {self.isa!r}; known: {ISAS}")
        if self.profile not in PROFILES:
            raise ExperimentError(
                f"unknown profile {self.profile!r}; known: {PROFILES}"
            )
        if not self.model:
            object.__setattr__(self, "model", SCALED_MODELS[self.isa])
        object.__setattr__(self, "window_sizes", tuple(self.window_sizes))
        if self.shards < 0:
            raise ExperimentError(
                f"shards must be >= 0 (0 = auto), got {self.shards}")

    # -- identity --------------------------------------------------------

    @property
    def config_key(self) -> tuple[str, str, str]:
        """The (workload, isa, profile) key used by :class:`SuiteResult`."""
        return (self.workload, self.isa, self.profile)

    @property
    def analysis(self) -> "AnalysisConfig":
        """This plan's analysis parameters as one typed
        :class:`repro.analysis.AnalysisConfig` (always the fused tier;
        probe runs are ad-hoc oracles, never planned suite members)."""
        from repro.analysis.config import AnalysisConfig

        return AnalysisConfig(
            windowed=self.windowed,
            window_sizes=self.window_sizes,
            slide_fraction=self.slide_fraction,
        )

    def describe(self) -> str:
        return f"{self.workload}/{self.isa}/{self.profile}"

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {
            "v": PLAN_SCHEMA,
            "workload": self.workload,
            "isa": self.isa,
            "profile": self.profile,
            "scale": self.scale,
            "windowed": self.windowed,
            "window_sizes": list(self.window_sizes),
            "slide_fraction": self.slide_fraction,
            "model": self.model,
            "max_instructions": self.max_instructions,
            "translate": self.translate,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ExperimentPlan":
        if doc.get("v") not in (2, PLAN_SCHEMA):
            raise ExperimentError(
                f"ExperimentPlan schema {doc.get('v')!r} != {PLAN_SCHEMA}"
            )
        return cls(
            workload=doc["workload"],
            isa=doc["isa"],
            profile=doc["profile"],
            scale=float(doc["scale"]),
            windowed=bool(doc["windowed"]),
            window_sizes=tuple(int(w) for w in doc["window_sizes"]),
            slide_fraction=float(doc["slide_fraction"]),
            model=doc["model"],
            max_instructions=int(doc["max_instructions"]),
            translate=bool(doc["translate"]),
            shards=int(doc.get("shards", 1)),  # v2 docs predate sharding
        )

    def fingerprint(self) -> str:
        """Content-addressed cache key: a sha256 over the canonical plan
        plus the *content* of the core model it references, so editing a
        model YAML (or bumping a result schema) invalidates cached
        results computed under the old definition."""
        from repro.sim.config import load_core_model

        doc = self.to_dict()
        # translate and shards select execution strategies, not results:
        # the translated/interpreted paths are differentially asserted
        # identical and sharded merges are byte-identical to serial by
        # construction, so every variant shares one cache entry
        doc.pop("translate", None)
        doc.pop("shards", None)
        doc["model_fingerprint"] = load_core_model(self.model).fingerprint()
        doc["result_schema"] = _result_schema_versions()
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def trace_fingerprint(self) -> str:
        """Key for the trace level of the cache: a sha256 over only what
        determines the *simulated retirement stream* — workload, scale,
        ISA, profile, budget, and the trace format version. Analysis
        parameters (window sizes, slide fraction, core model) are
        deliberately excluded: plans differing only in those share one
        recorded trace and replay it instead of re-simulating."""
        from repro.sim.trace import VERSION as TRACE_VERSION

        doc = {
            "workload": self.workload,
            "scale": self.scale,
            "isa": self.isa,
            "profile": self.profile,
            "max_instructions": self.max_instructions,
            "trace_version": TRACE_VERSION,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def with_overrides(self, **changes) -> "ExperimentPlan":
        """A copy with the given fields replaced (frozen-safe)."""
        return replace(self, **changes)


def _result_schema_versions() -> dict[str, int]:
    """Schema versions of every serialized result type; part of the cache
    key so a schema bump is an implicit cache invalidation."""
    from repro.analysis.critpath import CRITPATH_SCHEMA
    from repro.analysis.mix import MIX_SCHEMA
    from repro.analysis.pathlength import PATHLENGTH_SCHEMA
    from repro.analysis.windowed import WINDOWED_SCHEMA
    from repro.harness.experiments import CONFIG_RESULT_SCHEMA

    return {
        "config": CONFIG_RESULT_SCHEMA,
        "path": PATHLENGTH_SCHEMA,
        "critpath": CRITPATH_SCHEMA,
        "windowed": WINDOWED_SCHEMA,
        "mix": MIX_SCHEMA,
    }


def suite_params_doc(
    scale: float = 1.0,
    *,
    workloads: tuple[str, ...] | None = None,
    windowed: bool = True,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
    slide_fraction: float = 0.5,
    models: dict[str, str] | None = None,
    max_instructions: int = 500_000_000,
    translate: bool = True,
    shards: int = 1,
) -> dict:
    """The :func:`plan_suite` parameters as a JSON-safe dict — what a
    run journal stores so ``--resume`` can reconstruct the exact plan
    set without re-supplying flags; inverse of :func:`suite_from_params`.
    """
    return {
        "scale": scale,
        "workloads": list(workloads) if workloads else None,
        "windowed": windowed,
        "window_sizes": list(window_sizes),
        "slide_fraction": slide_fraction,
        "models": dict(models) if models else None,
        "max_instructions": max_instructions,
        "translate": translate,
        "shards": shards,
    }


def suite_from_params(doc: dict) -> list[ExperimentPlan]:
    """Reconstruct the plan set from a :func:`suite_params_doc` dict."""
    return plan_suite(
        float(doc["scale"]),
        workloads=tuple(doc["workloads"]) if doc.get("workloads") else None,
        windowed=bool(doc["windowed"]),
        window_sizes=tuple(int(w) for w in doc["window_sizes"]),
        slide_fraction=float(doc.get("slide_fraction", 0.5)),
        models=doc.get("models") or None,
        max_instructions=int(doc["max_instructions"]),
        translate=bool(doc.get("translate", True)),
        shards=int(doc.get("shards", 1)),
    )


def plan_suite(
    scale: float = 1.0,
    *,
    workloads: tuple[str, ...] | None = None,
    windowed: bool = True,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
    slide_fraction: float = 0.5,
    models: dict[str, str] | None = None,
    max_instructions: int = 500_000_000,
    translate: bool = True,
    shards: int = 1,
) -> list[ExperimentPlan]:
    """The paper's full matrix as a list of plans, in deterministic order
    (workload-major, then ISA, then profile). Windowed analysis is
    attached to GCC 12.2 plans only (§6.1) unless ``windowed`` is False.
    """
    names = tuple(workloads) if workloads else tuple(ALL_WORKLOADS)
    plans = []
    for name in names:
        for isa in ISAS:
            for profile in PROFILES:
                plans.append(ExperimentPlan(
                    workload=name,
                    isa=isa,
                    profile=profile,
                    scale=scale,
                    windowed=windowed and profile == "gcc12",
                    window_sizes=tuple(window_sizes),
                    slide_fraction=slide_fraction,
                    model=(models or SCALED_MODELS)[isa],
                    max_instructions=max_instructions,
                    translate=translate,
                    shards=shards,
                ))
    return plans
