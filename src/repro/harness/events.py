"""Structured progress/timing telemetry for the experiment engine.

The executor emits typed events instead of printing: callers subscribe a
callback on an :class:`EventBus` and decide what to do with them — the
bundled :class:`ConsoleReporter` reproduces (and improves on) the old
``run_suite(verbose=True)`` progress lines, :class:`TimingCollector`
accumulates the per-plan wall-clock and cache hit/miss statistics the CLI
and the benchmark script report, and tests can capture the raw stream.

Subscriber isolation: telemetry must never fail a run, and one broken
subscriber must never starve the others. A subscriber that raises is
unsubscribed on the spot and a single :class:`SubscriberError` event is
emitted to the survivors — the suite continues, the failure is visible,
and the dead callback (say, a disconnected SSE bridge) is never called
again.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, TextIO

from repro.harness.plan import ExperimentPlan

__all__ = [
    "Event",
    "SuiteStarted",
    "PlanStarted",
    "PlanFinished",
    "PlanCacheHit",
    "PlanTraceHit",
    "PlanTranslationStats",
    "PlanShardStats",
    "PlanFailed",
    "CacheCorruption",
    "ExecutorDegraded",
    "WorkerRecycled",
    "WarmCacheStats",
    "NodeJoined",
    "NodeLost",
    "PlanRedispatched",
    "DistStats",
    "SubscriberError",
    "SuiteFinished",
    "EventBus",
    "ConsoleReporter",
    "TimingCollector",
]


@dataclass(frozen=True)
class Event:
    """Base class; ``when`` is a ``time.monotonic()`` stamp."""

    when: float = field(init=False, compare=False,
                        default_factory=time.monotonic)


@dataclass(frozen=True)
class SuiteStarted(Event):
    total: int = 0
    jobs: int = 1
    cached: int = 0  # plans already satisfied from the cache


@dataclass(frozen=True)
class PlanStarted(Event):
    plan: ExperimentPlan = None
    index: int = 0       # 1-based position in the batch
    total: int = 0
    attempt: int = 1     # 1 on the first try, 2 on the retry


@dataclass(frozen=True)
class PlanFinished(Event):
    plan: ExperimentPlan = None
    index: int = 0
    total: int = 0
    seconds: float = 0.0
    attempt: int = 1


@dataclass(frozen=True)
class PlanCacheHit(Event):
    plan: ExperimentPlan = None
    index: int = 0
    total: int = 0
    key: str = ""


@dataclass(frozen=True)
class PlanTraceHit(Event):
    """The plan's result was rebuilt by replaying a cached retirement
    trace through the fused analysis engine (no simulation ran). A
    :class:`PlanFinished` for the same plan follows."""

    plan: ExperimentPlan = None
    index: int = 0
    total: int = 0
    key: str = ""  # plan.trace_fingerprint()


@dataclass(frozen=True)
class PlanTranslationStats(Event):
    """Block-translation statistics of a fresh simulation
    (:meth:`EmulationCore.translation_stats`). Emitted just before the
    plan's :class:`PlanFinished`; never emitted for cache hits, trace
    replays, or interpreter (``translate=False``) runs."""

    plan: ExperimentPlan = None
    index: int = 0
    total: int = 0
    stats: dict = None


@dataclass(frozen=True)
class PlanShardStats(Event):
    """Sharded-execution statistics of a fresh simulation
    (:meth:`repro.harness.sharding.ShardRunStats.to_dict`): slice count,
    checkpoints captured, fast-forward seconds, whether slices ran in
    parallel worker processes, and how many fell back to in-process
    serial execution. Emitted just before the plan's
    :class:`PlanFinished`; never emitted for cache hits, trace replays,
    or unsharded runs."""

    plan: ExperimentPlan = None
    index: int = 0
    total: int = 0
    stats: dict = None


@dataclass(frozen=True)
class PlanFailed(Event):
    plan: ExperimentPlan = None
    error: str = ""
    attempt: int = 1
    will_retry: bool = False
    #: Error messages of the *previous* attempts, oldest first — the
    #: per-plan attempt history of the structured failure report.
    history: tuple[str, ...] = ()


@dataclass(frozen=True)
class CacheCorruption(Event):
    """A cache entry failed integrity verification and was moved to the
    quarantine directory (it will never be re-parsed)."""

    level: str = ""       # "result" or "trace"
    key: str = ""         # entry stem (fingerprint)
    path: str = ""        # where the corrupt file now lives
    reason: str = ""


@dataclass(frozen=True)
class ExecutorDegraded(Event):
    """The process pool failed repeatedly at the infrastructure level
    (dead workers, broken pipes); remaining plans run serially
    in-process."""

    failures: int = 0
    remaining: int = 0
    reason: str = ""


@dataclass(frozen=True)
class WorkerRecycled(Event):
    """A warm pool worker was retired and (if plans remain) respawned.

    ``reason`` is one of ``"max-tasks"`` (the ``--max-tasks-per-worker``
    budget), ``"poisoned"`` (warm-state fingerprint check failed),
    ``"fault"`` (worker died / timed out / lost its heartbeat) or
    ``"shutdown"`` (normal end-of-queue retirement)."""

    worker: int = 0      # worker slot index
    tasks: int = 0       # tasks the retiring process completed
    reason: str = ""


@dataclass(frozen=True)
class WarmCacheStats(Event):
    """Aggregated warm-cache counters for a whole ``Executor.run``:
    image hits/misses/evictions, translation-reuse (compiled-code-cache)
    hits, block-source preloads and on-disk block-store traffic —
    summed over every worker plus the parent process."""

    stats: dict = None


@dataclass(frozen=True)
class NodeJoined(Event):
    """A remote worker node registered with the dispatcher.

    ``rejoined`` is True when the node reconnected after a partition
    and reconciled (or discarded) the results it was still holding."""

    node: str = ""
    addr: str = ""
    slots: int = 1
    rejoined: bool = False


@dataclass(frozen=True)
class NodeLost(Event):
    """A remote worker node left the dispatcher.

    ``reason`` discriminates how: ``"dead"`` (socket closed / reset —
    the process is gone), ``"hung"`` (socket alive but heartbeats
    silent past the node-heartbeat budget — the agent is wedged, its
    connection is force-closed), ``"cut"`` (daemon-side injected socket
    cut), ``"torn-frame"`` (the node sent an unparseable result frame)
    or ``"drained"`` (graceful drain handshake completed).
    ``redispatched`` counts the leases it was holding that were
    immediately requeued."""

    node: str = ""
    reason: str = ""
    redispatched: int = 0


@dataclass(frozen=True)
class PlanRedispatched(Event):
    """A lease expired (or its node was lost) without a result; the
    plan goes back on the pending queue for another node — or the
    local fallback pool — after a seeded-jitter backoff."""

    plan: ExperimentPlan = None
    fingerprint: str = ""
    from_node: str = ""
    to_node: str = ""     # "" until the next dispatch picks a node
    attempt: int = 1      # dispatch attempts so far for this plan
    reason: str = ""


@dataclass(frozen=True)
class DistStats(Event):
    """Aggregated dispatcher counters for one distributed run: nodes
    seen, leases granted/expired, plans redispatched, duplicate results
    dropped and plans that fell back to the local warm pool."""

    stats: dict = None


@dataclass(frozen=True)
class SubscriberError(Event):
    """An event subscriber raised and was unsubscribed.

    Emitted exactly once per failing subscriber, to the *remaining*
    subscribers (the dead one is removed first, so a subscriber that
    fails on every event cannot loop). The suite itself is unaffected:
    telemetry must never fail a run."""

    subscriber: str = ""   # repr of the removed callback
    error: str = ""        # "ExcType: message"
    during: str = ""       # class name of the event being delivered


@dataclass(frozen=True)
class SuiteFinished(Event):
    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    seconds: float = 0.0


class EventBus:
    """Minimal fan-out: subscribe callables, emit events to all of them."""

    def __init__(self):
        self._subscribers: list[Callable[[Event], None]] = []

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.remove(callback)

    def emit(self, event: Event) -> None:
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception as err:  # noqa: BLE001 — never fail the run
                # Unsubscribe FIRST (so a subscriber that also fails on
                # SubscriberError cannot recurse), then tell the
                # survivors what happened — once per dead subscriber.
                try:
                    self._subscribers.remove(callback)
                except ValueError:
                    pass
                if not isinstance(event, SubscriberError):
                    self.emit(SubscriberError(
                        subscriber=repr(callback),
                        error=f"{type(err).__name__}: {err}",
                        during=type(event).__name__))


class ConsoleReporter:
    """Human-readable progress lines, one per plan event."""

    def __init__(self, stream: TextIO | None = None):
        self.stream = stream if stream is not None else sys.stdout

    def __call__(self, event: Event) -> None:
        text = None
        if isinstance(event, SuiteStarted):
            live = event.total - event.cached
            text = (f"suite: {event.total} configs "
                    f"({event.cached} cached, {live} to run, "
                    f"jobs={event.jobs})")
        elif isinstance(event, PlanStarted):
            retry = f" (retry {event.attempt - 1})" if event.attempt > 1 else ""
            text = (f"[{event.index}/{event.total}] running "
                    f"{event.plan.describe()}{retry} ...")
        elif isinstance(event, PlanFinished):
            text = (f"[{event.index}/{event.total}] finished "
                    f"{event.plan.describe()} in {event.seconds:.2f}s")
        elif isinstance(event, PlanCacheHit):
            text = (f"[{event.index}/{event.total}] cached   "
                    f"{event.plan.describe()} ({event.key[:12]})")
        elif isinstance(event, PlanTraceHit):
            text = (f"[{event.index}/{event.total}] replayed "
                    f"{event.plan.describe()} from trace ({event.key[:12]})")
        elif isinstance(event, PlanShardStats):
            s = event.stats or {}
            mode = "parallel" if s.get("parallel") else "in-process"
            text = (f"[{event.index}/{event.total}] sharded  "
                    f"{event.plan.describe()}: {s.get('shards', 0)} slices "
                    f"({mode}), {s.get('checkpoints', 0)} checkpoints, "
                    f"fast-forward {s.get('ff_seconds', 0.0):.2f}s")
            if s.get("fallbacks"):
                text += f", {s['fallbacks']} slice(s) fell back to serial"
        elif isinstance(event, PlanFailed):
            action = "retrying" if event.will_retry else "giving up"
            text = (f"FAILED {event.plan.describe()} "
                    f"(attempt {event.attempt}): {event.error} — {action}")
        elif isinstance(event, CacheCorruption):
            text = (f"cache: quarantined corrupt {event.level} entry "
                    f"{event.key[:12]} ({event.reason})")
        elif isinstance(event, ExecutorDegraded):
            text = (f"executor: {event.failures} pool-level failures — "
                    f"degrading to serial for {event.remaining} remaining "
                    f"plans ({event.reason})")
        elif isinstance(event, WorkerRecycled):
            text = (f"pool: recycled worker {event.worker} after "
                    f"{event.tasks} task(s) ({event.reason})")
        elif isinstance(event, WarmCacheStats):
            s = event.stats or {}
            text = (f"warm: {s.get('image_hits', 0)} image reuses, "
                    f"{s.get('translation_reuse_hits', 0)} translation "
                    f"reuse hits, {s.get('blocks_preloaded', 0)} block "
                    f"sources preloaded")
        elif isinstance(event, NodeJoined):
            flavor = "rejoined" if event.rejoined else "joined"
            text = (f"dist: node {event.node} {flavor} from {event.addr} "
                    f"({event.slots} slot(s))")
        elif isinstance(event, NodeLost):
            text = f"dist: node {event.node} lost ({event.reason})"
            if event.redispatched:
                text += f", {event.redispatched} lease(s) requeued"
        elif isinstance(event, PlanRedispatched):
            dest = event.to_node or "pending"
            text = (f"dist: redispatching {event.plan.describe()} "
                    f"{event.from_node} -> {dest} "
                    f"(attempt {event.attempt}, {event.reason})")
        elif isinstance(event, DistStats):
            s = event.stats or {}
            text = (f"dist: {s.get('completed', 0)} plan(s) over "
                    f"{s.get('nodes_seen', 0)} node(s), "
                    f"{s.get('redispatched', 0)} redispatched, "
                    f"{s.get('duplicates_dropped', 0)} duplicate(s) "
                    f"dropped, {s.get('local_fallback', 0)} ran locally")
        elif isinstance(event, SubscriberError):
            text = (f"events: subscriber {event.subscriber} failed during "
                    f"{event.during} ({event.error}) — unsubscribed")
        elif isinstance(event, SuiteFinished):
            text = (f"suite: done in {event.seconds:.2f}s "
                    f"({event.executed} simulated, {event.cached} cache hits"
                    + (f", {event.failed} failed" if event.failed else "")
                    + ")")
        if text is not None:
            print(text, file=self.stream, flush=True)


class TimingCollector:
    """Accumulates the statistics a run summary needs."""

    def __init__(self):
        self.executed = 0
        self.cache_hits = 0
        self.trace_hits = 0
        self.failures = 0
        self.retries = 0
        self.corruptions = 0
        self.degraded = 0
        self.suite_seconds = 0.0
        self.plan_seconds: dict[ExperimentPlan, float] = {}
        #: Summed block-translation counters across fresh translated
        #: simulations (``max_block`` is a maximum, not a sum).
        self.translation: dict[str, int] = {}
        self.translated_plans = 0
        self.sharded_plans = 0
        self.shard_fallbacks = 0
        self.workers_recycled = 0
        self.subscriber_errors = 0
        self.nodes_joined = 0
        self.nodes_lost = 0
        self.redispatches = 0
        #: Latest dispatcher counters (one DistStats per distributed
        #: run; across runs the counters sum).
        self.dist: dict[str, int] = {}
        #: Latest aggregated warm-cache counters (one WarmCacheStats is
        #: emitted per Executor.run; across runs the counters sum).
        self.warm: dict[str, int] = {}

    def __call__(self, event: Event) -> None:
        if isinstance(event, PlanFinished):
            self.executed += 1
            self.plan_seconds[event.plan] = event.seconds
        elif isinstance(event, PlanCacheHit):
            self.cache_hits += 1
        elif isinstance(event, PlanTraceHit):
            self.trace_hits += 1
        elif isinstance(event, PlanTranslationStats):
            self.translated_plans += 1
            for key, value in (event.stats or {}).items():
                if key == "max_block":
                    self.translation[key] = max(
                        self.translation.get(key, 0), value)
                else:
                    self.translation[key] = (
                        self.translation.get(key, 0) + value)
        elif isinstance(event, PlanShardStats):
            self.sharded_plans += 1
            self.shard_fallbacks += (event.stats or {}).get("fallbacks", 0)
        elif isinstance(event, PlanFailed):
            if event.will_retry:
                self.retries += 1
            else:
                self.failures += 1
        elif isinstance(event, CacheCorruption):
            self.corruptions += 1
        elif isinstance(event, ExecutorDegraded):
            self.degraded += 1
        elif isinstance(event, WorkerRecycled):
            self.workers_recycled += 1
        elif isinstance(event, SubscriberError):
            self.subscriber_errors += 1
        elif isinstance(event, NodeJoined):
            self.nodes_joined += 1
        elif isinstance(event, NodeLost):
            self.nodes_lost += 1
        elif isinstance(event, PlanRedispatched):
            self.redispatches += 1
        elif isinstance(event, DistStats):
            for key, value in (event.stats or {}).items():
                if isinstance(value, (int, float)):
                    self.dist[key] = self.dist.get(key, 0) + value
        elif isinstance(event, WarmCacheStats):
            for key, value in (event.stats or {}).items():
                self.warm[key] = self.warm.get(key, 0) + value
        elif isinstance(event, SuiteFinished):
            self.suite_seconds = event.seconds

    def summary(self) -> dict:
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "trace_hits": self.trace_hits,
            "failures": self.failures,
            "retries": self.retries,
            "corruptions": self.corruptions,
            "degraded": self.degraded,
            "suite_seconds": self.suite_seconds,
            "translated_plans": self.translated_plans,
            "translation": dict(self.translation),
            "sharded_plans": self.sharded_plans,
            "shard_fallbacks": self.shard_fallbacks,
            "workers_recycled": self.workers_recycled,
            "subscriber_errors": self.subscriber_errors,
            "nodes_joined": self.nodes_joined,
            "nodes_lost": self.nodes_lost,
            "redispatches": self.redispatches,
            "dist": dict(self.dist),
            "warm": dict(self.warm),
        }
