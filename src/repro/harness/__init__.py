"""Experiment harness: regenerates every table and figure in the paper.

* :func:`repro.harness.experiments.run_suite` — compile and run the full
  benchmark × compiler × ISA matrix once, with all analysis probes attached
  (the expensive step; everything below renders from its result).
* :func:`repro.harness.experiments.run_figure1` — per-kernel path lengths,
  normalized to GCC 9.2/AArch64 (Figure 1).
* :func:`repro.harness.experiments.run_table1` — path length, critical
  path, ILP and 2 GHz runtime (Table 1).
* :func:`repro.harness.experiments.run_table2` — latency-scaled critical
  paths under the TX2 models (Table 2).
* :func:`repro.harness.experiments.run_figure2` — mean ILP per ROB-window
  size, GCC 12.2 binaries (Figure 2).

``python -m repro.harness.cli`` (or the ``repro-isa-compare`` script)
drives these from the command line and writes the artifact-style text
outputs (``kernelCounts.txt``, ``basicCPResult.txt``, ``scaledCPResult.txt``,
``windowAverages.txt``).
"""

from repro.harness.experiments import (
    ConfigResult,
    SuiteResult,
    run_suite,
    run_figure1,
    run_table1,
    run_table2,
    run_figure2,
    run_future_cores,
)

__all__ = [
    "ConfigResult",
    "SuiteResult",
    "run_suite",
    "run_figure1",
    "run_table1",
    "run_table2",
    "run_figure2",
    "run_future_cores",
]
