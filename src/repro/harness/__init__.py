"""Experiment harness: regenerates every table and figure in the paper.

The engine is an explicit plan/execute API:

* :class:`repro.harness.plan.ExperimentPlan` — the frozen, hashable
  description of one workload × ISA × profile configuration;
  :func:`repro.harness.plan.plan_suite` builds the paper's full matrix.
* :class:`repro.harness.executor.Executor` — runs a batch of plans
  in-process or across a persistent warm worker pool
  (:mod:`repro.harness.warmcache`: images and translated blocks reused
  across plans, fingerprint-verified on every hit), with per-plan
  timeout, one retry on transient failure, and structured telemetry
  (:mod:`repro.harness.events`).
* :class:`repro.harness.cache.ResultCache` — the content-addressed
  on-disk result cache (``~/.cache/repro-isa`` by default); a cache hit
  skips simulation entirely. Entries carry integrity envelopes; corrupt
  ones are quarantined, never re-parsed (see docs/robustness.md).
* :class:`repro.harness.faults.FaultPlan` — seeded, serializable fault
  injection for deterministic robustness testing.
* :class:`repro.harness.checkpoint.RunJournal` — per-run completion
  journal backing ``repro-isa-compare run --resume``.

On top of it, the historical entry points:

* :func:`repro.harness.experiments.run_suite` — compile and run the full
  benchmark × compiler × ISA matrix once, with all analysis probes attached
  (the expensive step; everything below renders from its result).
* :func:`repro.harness.experiments.run_figure1` — per-kernel path lengths,
  normalized to GCC 9.2/AArch64 (Figure 1).
* :func:`repro.harness.experiments.run_table1` — path length, critical
  path, ILP and 2 GHz runtime (Table 1).
* :func:`repro.harness.experiments.run_table2` — latency-scaled critical
  paths under the TX2 models (Table 2).
* :func:`repro.harness.experiments.run_figure2` — mean ILP per ROB-window
  size, GCC 12.2 binaries (Figure 2).

``python -m repro.harness.cli`` (or the ``repro-isa-compare`` script)
drives these through ``run``/``report``/``cache`` subcommands and writes
the artifact-style text outputs (``kernelCounts.txt``,
``basicCPResult.txt``, ``scaledCPResult.txt``, ``windowAverages.txt``).
"""

from repro.harness.cache import (
    BlockStore,
    ResultCache,
    TraceStore,
    default_cache_dir,
)
from repro.harness.checkpoint import RunJournal, unfinished_runs
from repro.harness.events import ConsoleReporter, EventBus, TimingCollector
from repro.harness.executor import (
    Executor,
    PlanFailureReport,
    SuiteExecutionError,
    execute_plan,
)
from repro.harness.faults import FaultPlan, FaultSpec
from repro.harness.warmcache import WarmCache, WarmStateError
from repro.harness.experiments import (
    ConfigResult,
    SuiteResult,
    clear_suite_memo,
    run_suite,
    run_figure1,
    run_table1,
    run_table2,
    run_figure2,
    run_future_cores,
)
from repro.harness.plan import ExperimentPlan, plan_suite

__all__ = [
    "ConfigResult",
    "SuiteResult",
    "ExperimentPlan",
    "plan_suite",
    "Executor",
    "execute_plan",
    "PlanFailureReport",
    "SuiteExecutionError",
    "FaultPlan",
    "FaultSpec",
    "RunJournal",
    "unfinished_runs",
    "ResultCache",
    "TraceStore",
    "BlockStore",
    "WarmCache",
    "WarmStateError",
    "default_cache_dir",
    "EventBus",
    "ConsoleReporter",
    "TimingCollector",
    "clear_suite_memo",
    "run_suite",
    "run_figure1",
    "run_table1",
    "run_table2",
    "run_figure2",
    "run_future_cores",
]
