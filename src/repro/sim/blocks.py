"""Basic-block translation: decode-once superblocks compiled to
straight-line Python.

This is the emulation core's QEMU-TCG-style fast path. On first
execution of a PC the translator decodes forward to the next
control-flow instruction (:attr:`DecodedInst.is_branch`, or a
SYSCALL-group instruction, whichever comes first) and ``compile()``s a
specialized Python function for the whole block:

* executor *bodies* are inlined into the block function as source
  text (:mod:`repro.sim.inline`) with operands substituted as
  literals, so a run of ALU/memory instructions compiles to plain
  straight-line statements — no PC lookup, no dict probe, no call per
  instruction, and no per-step budget check. Executors without an
  inline template fall back to a pre-bound call (a ``LOAD_FAST`` plus
  a ``CALL``) inside the same function;
* the per-instruction ``machine.pc`` bump is hoisted to **one**
  assignment per block (executors never read ``machine.pc``; only the
  final instruction — a branch whose not-taken fall-through relies on
  the preset PC, or a syscall whose error paths report ``pc - 4`` —
  observes it);
* on the batched path, the per-retirement bookkeeping (static-table
  indices, cumulative read/write end counts) is emitted as precomputed
  constants: one ``list.extend`` per array per block instead of three
  ``list.append`` calls per instruction.

Blocks are *superblocks*: scanning continues straight through
unconditional **direct** branches (``jal`` on RV64, ``b``/``bl`` on
AArch64 — their targets are decode-time constants), so a loop body
split by a compiler-inserted trampoline still becomes one block.
Conditional and indirect branches end a block. Translated blocks are
cached by entry PC and chained directly when the successor is static
(fall-through after a cap/syscall, or an unconditional direct branch),
so steady-state execution never touches the block cache dict. A block
whose conditional terminator targets its own entry — the inner loop —
gets a *looping* variant that iterates inside the compiled function on
a local ``_pc`` with the budget limit hoisted, so each loop iteration
costs zero dispatches.

Correctness relies on two invariants of this codebase, both asserted by
the differential tests:

1. no executor reads ``machine.pc`` (branch targets and link values are
   decode-time constants; ``auipc``/``adr`` bake the PC in at decode);
2. syscall handlers never change ``machine.pc``, so the fall-through of
   a syscall instruction is static.

The interpreter loops in :mod:`repro.sim.emucore` remain the
differential oracle; ``EmulationCore(..., translate=False)`` or
attaching per-retire probes bypasses translation entirely.
"""

from __future__ import annotations

import re

from repro.common import (
    MASK64, BudgetExhausted, DecodeError, SimulationError, bits, sext)
from repro.isa.base import InstructionGroup
from repro.isa.riscv.encoding import decode_imm_j

__all__ = [
    "MAX_BLOCK",
    "BlockTranslator",
    "BatchTranslator",
    "SummaryTranslator",
    "run_translated",
    "run_batched_translated",
    "run_summary_translated",
    "fast_forward_translated",
]

#: Cap on superblock length; bounds per-block budget overshoot and the
#: size of generated functions.
MAX_BLOCK = 64

#: Fault-injection hook, poked by :mod:`repro.harness.faults` (the sim
#: layer must not import the harness). When set, block compilation calls
#: it with the site name ``"translate-compile"`` and any exception it
#: raises exercises the per-block demotion path. None in normal runs:
#: the guard is a single module-global read.
_FAULT_HOOK = None

#: Semantics-mutation hook, also poked by :mod:`repro.harness.faults`
#: (site ``"semantics"``). When set, every *successfully compiled* block
#: function is passed through it — ``_SEM_HOOK(fn, insts)`` returns a
#: possibly-wrapped function — letting the fault layer inject subtle
#: wrong-result bugs that only differential testing can catch. Demoted
#: (interpreter-path) block functions are never wrapped: they are the
#: oracle. None in normal runs.
_SEM_HOOK = None

_SYSCALL = InstructionGroup.SYSCALL
_ATOMIC = InstructionGroup.ATOMIC

#: Block-local bookkeeping names inlined bodies must not assign.
_BOOKKEEPING = frozenset({"rb", "wb"})

#: A visible, plain PC assignment emitted by the inliner or the hoist.
_PC_ASSIGN = re.compile(r"^\s*m\.pc = ")
#: A fallback executor call — may set ``m.pc`` internally, so its
#: presence disables the loop-local PC transform.
_FALLBACK_CALL = re.compile(r"^\s*_e\d+\(m\)$")

# entry layout (a mutable list, indexed by the run loops):
# [0] fn        compiled block function (None until first execution on
#               the batched path, which observes then compiles)
# [1] length    retirements per execution (per iteration when looping)
# [2] chain     resolved successor entry (filled lazily)
# [3] chain_pc  static successor PC, or None (conditional/indirect)
# [4] insts     the decoded instructions, in execution order
# [5] pc        entry PC
# [6] looping   True when fn is a self-loop taking (machine, cap) and
#               returning the retirement count
# (batched entries append [7] static-table indices, one per inst;
#  summary entries append [8] the BlockSummary id, or -1 when the block
#  stays on per-retirement bookkeeping)


def _static_target(inst):
    """Target of an unconditional *direct* branch, else None.

    Only these mnemonics qualify — their targets are decode-time
    constants recomputable from the raw word: RV64 ``jal`` (J-type
    immediate) and AArch64 ``b``/``bl`` (imm26). Everything else
    (conditional, ``jalr``/``br``/``blr``/``ret``) returns None.
    """
    mnemonic = inst.mnemonic
    if mnemonic == "jal":
        return (inst.pc + decode_imm_j(inst.word)) & MASK64
    if mnemonic == "b" or mnemonic == "bl":
        return (inst.pc + (sext(bits(inst.word, 25, 0), 26) << 2)) & MASK64
    return None


def _cond_taken_target(inst):
    """Taken target of a *direct conditional* branch, else None.

    Direct conditional branches on both ISAs capture their decode-time
    target as an int constant named ``target`` (a default argument or a
    closure cell of the executor); indirect branches compute ``target``
    in the body, so it is never captured as an int.
    """
    if not inst.is_branch:
        return None
    fn = inst.execute
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    defaults = fn.__defaults__ or ()
    if defaults:
        names = code.co_varnames[:code.co_argcount][-len(defaults):]
        for name, value in zip(names, defaults):
            if name == "target" and type(value) is int:
                return value
    for name, cell in zip(code.co_freevars, fn.__closure__ or ()):
        if name == "target":
            try:
                value = cell.cell_contents
            except ValueError:
                return None
            if type(value) is int:
                return value
    return None


def _scan_block(core, pc):
    """Decode a superblock starting at ``pc``.

    Returns ``(insts, chain_pc)``: the instructions executed by one pass
    over the block, and the statically-known successor PC (None when the
    final instruction is a conditional or indirect branch). Scanning
    stops at conditional/indirect branches and SYSCALL-group
    instructions, follows unconditional direct branches, and truncates
    at :data:`MAX_BLOCK`, at a PC already in the block (a back-edge
    would otherwise unroll forever), or at an undecodable word (which
    then faults at the right time, via the chain).
    """
    decode_cache = core.decode_cache
    decode = core._decode_at
    insts = []
    seen = set()
    cur = pc
    while True:
        if cur in seen:
            return insts, cur  # back-edge into this very block
        inst = decode_cache.get(cur)
        if inst is None:
            try:
                inst = decode(cur)
            except (SimulationError, DecodeError):
                if not insts:
                    raise
                return insts, cur  # fault exactly when execution gets here
        seen.add(cur)
        insts.append(inst)
        if inst.group is _SYSCALL:
            # handlers never change pc: fall-through is static
            return insts, cur + 4
        if inst.is_branch:
            target = _static_target(inst)
            if target is None:
                return insts, None  # conditional/indirect: dynamic successor
            if len(insts) >= MAX_BLOCK:
                return insts, target
            cur = target  # superblock: run straight through the jump
            continue
        if len(insts) >= MAX_BLOCK:
            return insts, cur + 4
        cur += 4


#: source text -> code object. Generated sources are deterministic per
#: image, so repeated runs (benchmarks, differential tests, the suite's
#: many configs over the same binaries) skip ``compile()`` entirely.
#: This cache is the in-process warm substrate behind the harness's
#: cross-plan translation reuse (:mod:`repro.harness.warmcache`): a warm
#: worker that has already translated an image pays zero ``compile()``
#: calls when a later plan runs the same binary.
_CODE_CACHE: dict = {}

#: Bump whenever the *shape* of generated block source changes (header
#: layout, bookkeeping names, inlining conventions). The persistent
#: block cache (:class:`repro.harness.cache.BlockStore`) keys on this,
#: so stale on-disk sources are orphaned instead of silently preloaded.
TRANSLATOR_VERSION = 1

#: Compile-cache telemetry: ``hits`` are translation-reuse events (a
#: regenerated block source matched a cached code object), ``misses``
#: are fresh compiles, ``preloaded`` counts sources compiled ahead of
#: demand from the persistent block cache.
_CODE_STATS = {"hits": 0, "misses": 0, "preloaded": 0}

#: When not None, every freshly compiled source is appended here — the
#: warm-cache layer drains it to persist new block sources on disk.
_NEW_SOURCES: list | None = None


def code_cache_stats() -> dict:
    """A copy of the compile-cache counters (see :data:`_CODE_STATS`)."""
    return dict(_CODE_STATS)


def set_source_recording(enabled: bool) -> None:
    """Start (or stop) collecting freshly compiled block sources for
    :func:`drain_new_sources`. Idempotent; recording costs one list
    append per *fresh* compile, nothing on cache hits."""
    global _NEW_SOURCES
    if enabled and _NEW_SOURCES is None:
        _NEW_SOURCES = []
    elif not enabled:
        _NEW_SOURCES = None


def drain_new_sources() -> list:
    """Return (and clear) the block sources compiled since the last
    drain. Empty when recording is off."""
    global _NEW_SOURCES
    if not _NEW_SOURCES:
        return []
    drained = _NEW_SOURCES
    _NEW_SOURCES = []
    return drained


def preload_block_sources(sources) -> int:
    """Compile ``sources`` into the code cache ahead of demand (the
    persistent block cache's warm-up path). Returns the number freshly
    compiled; already-cached and uncompilable sources are skipped (a bad
    source would demote its block at translate time anyway — preloading
    must never be able to fail a run)."""
    loaded = 0
    for source in sources:
        if not isinstance(source, str) or source in _CODE_CACHE:
            continue
        try:
            code = compile(source, "<block>", "exec")
        except (SyntaxError, ValueError):
            continue
        if len(_CODE_CACHE) > 16384:
            _CODE_CACHE.clear()
        _CODE_CACHE[source] = code
        loaded += 1
    _CODE_STATS["preloaded"] += loaded
    return loaded


def clear_code_cache() -> None:
    """Drop every cached code object (tests and cold-start benchmarks)."""
    _CODE_CACHE.clear()


def _compile_fn(source, bindings):
    code = _CODE_CACHE.get(source)
    if code is None:
        _CODE_STATS["misses"] += 1
        if len(_CODE_CACHE) > 16384:
            _CODE_CACHE.clear()
        code = compile(source, "<block>", "exec")
        _CODE_CACHE[source] = code
        if _NEW_SOURCES is not None:
            _NEW_SOURCES.append(source)
    else:
        _CODE_STATS["hits"] += 1
    namespace = dict(bindings)
    exec(code, namespace)  # noqa: S102
    return namespace["_blk"]


class _TranslatorBase:
    """Shared block cache + statistics for both translation modes."""

    def __init__(self, core, fast_memory, record_memory=False):
        from repro.sim.inline import InlineContext

        self.core = core
        self.ctx = InlineContext(core.machine, fast_memory=fast_memory,
                                 record_memory=record_memory)
        self.cache = {}
        self.blocks = 0
        self.block_instructions = 0
        self.max_block = 0
        self.inlined_instructions = 0
        self.looping_blocks = 0
        self.executions = 0
        self.chained = 0
        self.interp_instructions = 0
        self.demoted_blocks = 0
        self._temp_counter = 0

    def _fresh(self):
        self._temp_counter += 1
        return f"_t{self._temp_counter}"

    def _inst_lines(self, i, inst, bindings, reserved=frozenset()):
        """Inlined source lines for one instruction, falling back to a
        call of its pre-bound executor."""
        from repro.sim.inline import inline_statements

        lines = inline_statements(inst, self.ctx, self._fresh, reserved)
        if lines is not None:
            self.inlined_instructions += 1
            return lines
        name = f"_e{i}"
        bindings[name] = inst.execute
        return [f"{name}(m)"]

    def _note_block(self, length):
        self.blocks += 1
        self.block_instructions += length
        if length > self.max_block:
            self.max_block = length

    def _loop_wrap(self, body, length, pc):
        """Wrap a self-loop block body in an in-function iteration loop.

        When every pc touch in the body is a visible plain assignment
        (no fallback executor calls, which could set ``m.pc``
        internally), the pc lives in a local for the loop's duration:
        the per-iteration store and the loop-exit test become LOAD_FAST/
        STORE_FAST instead of attribute traffic on the machine.
        """
        local = True
        for line in body:
            if _FALLBACK_CALL.match(line):
                local = False
                break
            n = line.count("m.pc")
            if n and (n > 1 or not _PC_ASSIGN.match(line)):
                local = False
                break
        self.looping_blocks += 1
        head = ["_n = 0", f"_limit = _cap - {length}", "while True:"]
        if local:
            body = [line.replace("m.pc = ", "_pc = ", 1)
                    if "m.pc" in line else line for line in body]
            # A fully-inlined conditional terminator ends the body with
            #   _pc = <fallthrough>
            #   if <cond>:
            #       _pc = (<entry>)
            # Branch directly on the condition instead: the taken path
            # (the hot one) skips both _pc stores and the entry compare,
            # leaving one counter bump and one budget compare a loop.
            if (len(body) >= 3
                    and body[-1] == f"    _pc = ({pc})"
                    and body[-2].startswith("if ")
                    and body[-2].endswith(":")
                    and body[-3].startswith("_pc = ")):
                fallthrough = body[-3][len("_pc = "):]
                return head + ["    " + line for line in body[:-3]] + [
                    f"    _n += {length}",
                    "    " + body[-2],
                    "        if _n > _limit:",
                    f"            m.pc = {pc}",
                    "            return _n",
                    "    else:",
                    f"        m.pc = {fallthrough}",
                    "        return _n",
                ]
            tail = [f"    _n += {length}",
                    f"    if _pc != {pc} or _n > _limit:",
                    "        m.pc = _pc",
                    "        return _n"]
        else:
            tail = [f"    _n += {length}",
                    f"    if m.pc != {pc} or _n > _limit:",
                    "        return _n"]
        return head + ["    " + line for line in body] + tail

    def _assemble(self, body_lines, local_bindings, params="m"):
        """Compile a block function whose body is ``body_lines``; every
        referenced binding is passed as a default argument (LOAD_FAST in
        the hot path), the rest resolve through the exec namespace."""
        if _FAULT_HOOK is not None:
            _FAULT_HOOK("translate-compile")
        namespace = dict(self.ctx.bindings)
        namespace.update(local_bindings)
        # fold the zero-immediate address form ``A + (0) & M`` to
        # ``A & M`` — safe for any A because ``+`` binds tighter than
        # ``&`` and no operator looser than ``&`` can capture the operand
        body_lines = [line.replace(" + (0) & ", " & ")
                      if " + (0) & " in line else line
                      for line in body_lines]
        text = "\n".join(body_lines)
        used = [name for name in namespace
                if re.search(rf"\b{re.escape(name)}\b", text)]
        header = f"def _blk({params}"
        if used:
            header += ", " + ", ".join(f"{n}={n}" for n in used)
        header += "):"
        source = header + "\n" + "\n".join(
            "    " + line for line in body_lines)
        return _compile_fn(source, namespace)

    def _demoted_plain_fn(self, insts):
        """Interpreter-path block function: per-instruction dispatch with
        the standard PC bump, bit-identical to the interpreter loop."""
        def _blk(m):
            for inst in insts:
                m.pc = inst.pc + 4
                inst.execute(m)
        return _blk

    def stats(self):
        return {
            "blocks": self.blocks,
            "block_instructions": self.block_instructions,
            "max_block": self.max_block,
            "inlined_instructions": self.inlined_instructions,
            "looping_blocks": self.looping_blocks,
            "executions": self.executions,
            "chained": self.chained,
            "interp_instructions": self.interp_instructions,
            "demoted_blocks": self.demoted_blocks,
        }


class BlockTranslator(_TranslatorBase):
    """Probe-free translation: blocks are inlined straight-line bodies."""

    def __init__(self, core):
        # no probes and no batch sinks: the access log is off for the
        # whole run, so memory accesses specialize to direct operations
        super().__init__(core, fast_memory=True)

    def entry_for(self, pc):
        insts, chain_pc = _scan_block(self.core, pc)
        length = len(insts)
        try:
            bindings = {}
            body = []
            for i, inst in enumerate(insts):
                if i == length - 1:
                    # one hoisted PC store per block: the fall-through of
                    # the final instruction (branch executors overwrite
                    # it; a conditional's not-taken path and a syscall's
                    # error reporting rely on it)
                    body.append(f"m.pc = {inst.pc + 4}")
                body.extend(self._inst_lines(i, inst, bindings))
            looping = (chain_pc is None
                       and _cond_taken_target(insts[-1]) == pc)
            if looping:
                # the block is its own taken-successor (a hot loop):
                # iterate inside the generated function, re-dispatching
                # only on loop exit or when the next iteration could
                # overshoot the cap
                body = self._loop_wrap(body, length, pc)
                fn = self._assemble(body, bindings, params="m, _cap")
            else:
                fn = self._assemble(body, bindings)
            if _SEM_HOOK is not None:
                fn = _SEM_HOOK(fn, insts)
        except Exception:
            # compilation failed: demote this block to the interpreter
            # path permanently rather than failing the run
            fn = self._demoted_plain_fn(insts)
            looping = False
            self.demoted_blocks += 1
        entry = [fn, length, None, chain_pc, insts, pc, looping]
        self.cache[pc] = entry
        self._note_block(length)
        return entry


class BatchTranslator(_TranslatorBase):
    """Batched translation: blocks also emit retirement bookkeeping.

    First execution of a block is *observed* — interpreted inline while
    recording each instruction's read/write access counts — and the
    block is then compiled with the cumulative end counts folded to
    constants. ATOMIC-group instructions (store-conditionals may or may
    not perform their store) and SYSCALL-group instructions keep dynamic
    ``len()`` bookkeeping, with the constant folding re-based after
    them.
    """

    def __init__(self, core, needs_memory):
        # with a sink consuming the access streams the log is on for the
        # whole run: inline the appends; otherwise it is off throughout
        # and accesses specialize to direct operations
        super().__init__(core, fast_memory=not needs_memory,
                         record_memory=needs_memory)
        self.needs_memory = needs_memory
        # the run's shared structure-of-arrays batch buffers
        self.indices = []
        self.read_ends = []
        self.write_ends = []

    def entry_for(self, pc):
        core = self.core
        insts, chain_pc = _scan_block(core, pc)
        bcache = core._batch_cache
        new_index = core._batch_entry
        idxs = []
        for inst in insts:
            cached = bcache.get(inst.pc)
            if cached is None:
                cached = new_index(inst.pc)
            idxs.append(cached[1])
        looping = (chain_pc is None
                   and _cond_taken_target(insts[-1]) == pc)
        entry = [None, len(insts), None, chain_pc, insts, pc, looping, idxs]
        self.cache[pc] = entry
        self._note_block(len(insts))
        return entry

    def observe(self, entry):
        """Execute ``entry`` once, interpreted, recording per-instruction
        access-count deltas; then compile the specialized function."""
        machine = self.core.machine
        memory = machine.memory
        reads = memory.reads
        writes = memory.writes
        iappend = self.indices.append
        rappend = self.read_ends.append
        wappend = self.write_ends.append
        insts = entry[4]
        rbase = len(reads)
        wbase = len(writes)
        roffs = []
        woffs = []
        for inst, idx in zip(insts, entry[7]):
            machine.pc = inst.pc + 4
            inst.execute(machine)
            iappend(idx)
            r = len(reads)
            w = len(writes)
            rappend(r)
            wappend(w)
            roffs.append(r - rbase)
            woffs.append(w - wbase)
        try:
            fn = self._compile_block(entry, roffs, woffs)
            if _SEM_HOOK is not None:
                fn = _SEM_HOOK(fn, entry[4])
            entry[0] = fn
        except Exception:
            # compilation failed: demote this block to a per-instruction
            # bookkeeping loop permanently rather than failing the run
            entry[0] = self._demoted_batch_fn(entry)
            entry[6] = False
            self.demoted_blocks += 1

    def _demoted_batch_fn(self, entry):
        """Interpreter-path block function with per-retirement
        bookkeeping, matching :meth:`interp_tail` semantics."""
        memory = self.core.machine.memory
        reads = memory.reads
        writes = memory.writes
        iappend = self.indices.append
        rappend = self.read_ends.append
        wappend = self.write_ends.append
        pairs = list(zip(entry[4], entry[7]))

        def _blk(m):
            for inst, idx in pairs:
                m.pc = inst.pc + 4
                inst.execute(m)
                iappend(idx)
                rappend(len(reads))
                wappend(len(writes))
        return _blk

    def _compile_block(self, entry, roffs, woffs):
        insts = entry[4]
        length = entry[1]
        dynamic = [inst.group is _SYSCALL or inst.group is _ATOMIC
                   for inst in insts]
        memory = self.core.machine.memory
        bindings = {
            "_I": entry[7],
            "_rd": memory.reads,
            "_wr": memory.writes,
            "_iex": self.indices.extend,
            "_rex": self.read_ends.extend,
            "_wex": self.write_ends.extend,
            "_ra": self.read_ends.append,
            "_wa": self.write_ends.append,
            "_len": len,
        }

        def ends(offs, base_off, var):
            # tuple display of cumulative ends relative to the last
            # re-base point; "rb" when the delta is zero folds the add
            return ", ".join(
                var if off == base_off else f"{var} + {off - base_off}"
                for off in offs)

        body = ["rb = _len(_rd)", "wb = _len(_wr)"]
        # executors first (bookkeeping only has to be complete before the
        # next flush, which can only happen between blocks), interrupted
        # only where a dynamic instruction forces a live len() sample
        segment = []  # indices of static insts awaiting bookkeeping
        rbase = 0
        wbase = 0

        def flush_segment():
            if not segment:
                return
            if len(segment) == 1:
                i = segment[0]
                r = ("rb" if roffs[i] == rbase else f"rb + {roffs[i] - rbase}")
                w = ("wb" if woffs[i] == wbase else f"wb + {woffs[i] - wbase}")
                body.append(f"_ra({r})")
                body.append(f"_wa({w})")
            else:
                seg_r = ends([roffs[i] for i in segment], rbase, "rb")
                seg_w = ends([woffs[i] for i in segment], wbase, "wb")
                body.append(f"_rex(({seg_r}))")
                body.append(f"_wex(({seg_w}))")
            del segment[:]

        for i, inst in enumerate(insts):
            if i == length - 1:
                body.append(f"m.pc = {insts[-1].pc + 4}")
            body.extend(self._inst_lines(i, inst, bindings,
                                         reserved=_BOOKKEEPING))
            if dynamic[i]:
                flush_segment()
                body.append("rb = _len(_rd)")
                body.append("wb = _len(_wr)")
                body.append("_ra(rb)")
                body.append("_wa(wb)")
                rbase = roffs[i]
                wbase = woffs[i]
            else:
                segment.append(i)
        flush_segment()
        body.append("_iex(_I)")
        if entry[6]:
            body = self._loop_wrap(body, length, entry[5])
            return self._assemble(body, bindings, params="m, _cap")
        return self._assemble(body, bindings)

    def interp_tail(self, count):
        """Interpret (with bookkeeping) up to ``count`` instructions —
        the precise-budget fallback when a whole block would overshoot.
        Returns the number retired."""
        core = self.core
        machine = core.machine
        memory = machine.memory
        reads = memory.reads
        writes = memory.writes
        bcache = core._batch_cache
        new_index = core._batch_entry
        iappend = self.indices.append
        rappend = self.read_ends.append
        wappend = self.write_ends.append
        executed = 0
        while executed < count and machine.running:
            pc = machine.pc
            cached = bcache.get(pc)
            if cached is None:
                cached = new_index(pc)
            machine.pc = pc + 4
            cached[0](machine)
            iappend(cached[1])
            rappend(len(reads))
            wappend(len(writes))
            executed += 1
        self.interp_instructions += executed
        return executed


class SummaryTranslator(BatchTranslator):
    """Batched translation that also emits translate-time block summaries.

    Static blocks (no SYSCALL/ATOMIC instruction) compile *without* any
    per-retirement bookkeeping — just the inlined executors — and get a
    :class:`repro.analysis.blocksummary.BlockSummary` built once from
    their decoded instructions plus the observed access footprint. The
    run loop (:func:`run_summary_translated`) then reports their
    executions as ``(block id, count)`` events instead of
    structure-of-arrays items. Dynamic and demoted blocks keep the
    per-retirement bookkeeping of :class:`BatchTranslator` and are
    reported as SoA segments, so the event stream losslessly covers
    every retirement.
    """

    def __init__(self, core):
        # the event path exists to feed analysis engines, which always
        # consume the access streams: recording is unconditionally on
        super().__init__(core, needs_memory=True)
        self.summaries: list = []
        self.summary_blocks = 0

    def entry_for(self, pc):
        entry = super().entry_for(pc)
        entry.append(-1)  # [8] summary id; -1 = per-retirement bookkeeping
        return entry

    def _compile_block(self, entry, roffs, woffs):
        insts = entry[4]
        if any(inst.group is _SYSCALL or inst.group is _ATOMIC
               for inst in insts):
            # dynamic access counts: keep live len() bookkeeping
            return super()._compile_block(entry, roffs, woffs)
        from repro.analysis.blocksummary import build_summary

        # the observed execution's accesses are still in the recording
        # buffers (flushes only happen between block executions); their
        # sizes are decode-time constants — the footprint template
        memory = self.core.machine.memory
        reads = memory.reads
        writes = memory.writes
        nr = roffs[-1] if roffs else 0
        nw = woffs[-1] if woffs else 0
        rsizes = [sz for _a, sz in reads[len(reads) - nr:]] if nr else []
        wsizes = [sz for _a, sz in writes[len(writes) - nw:]] if nw else []

        length = entry[1]
        bindings: dict = {}
        body = []
        for i, inst in enumerate(insts):
            if i == length - 1:
                body.append(f"m.pc = {insts[-1].pc + 4}")
            body.extend(self._inst_lines(i, inst, bindings))
        if entry[6]:
            body = self._loop_wrap(body, length, entry[5])
            fn = self._assemble(body, bindings, params="m, _cap")
        else:
            fn = self._assemble(body, bindings)
        # registration only after a successful compile: a demotion in
        # _assemble leaves the entry on bookkeeping with [8] == -1
        entry[8] = len(self.summaries)
        self.summaries.append(
            build_summary(insts, entry[7], roffs, woffs, rsizes, wsizes))
        self.summary_blocks += 1
        return fn

    def stats(self):
        stats = super().stats()
        stats["summary_blocks"] = self.summary_blocks
        return stats


def _interp_tail_plain(core, count):
    """Probe-free bounded interpretation (budget-edge fallback)."""
    machine = core.machine
    cache = core.decode_cache
    decode = core._decode_at
    executed = 0
    while executed < count and machine.running:
        pc = machine.pc
        inst = cache.get(pc)
        if inst is None:
            inst = decode(pc)
        machine.pc = pc + 4
        inst.execute(machine)
        executed += 1
    return executed


def run_translated(core, max_instructions=500_000_000):
    """Probe-free translated run; drop-in for ``EmulationCore.run``."""
    from repro.sim.emucore import RunResult

    machine = core.machine
    translator = core._translator
    if translator is None:
        translator = core._translator = BlockTranslator(core)
    cache_get = translator.cache.get
    new_entry = translator.entry_for
    history = core.history
    happend = history.append if history is not None else None
    remaining = max_instructions
    retired = 0
    execs = 0
    entry = None
    try:
        while machine.running:
            entry = cache_get(machine.pc)
            if entry is None:
                entry = new_entry(machine.pc)
            while True:
                n = entry[1]
                if n > remaining:
                    # a whole block would overshoot the budget: fall
                    # back to bounded interpretation for the tail
                    done = _interp_tail_plain(core, remaining)
                    translator.interp_instructions += done
                    retired += done
                    remaining -= done
                    if machine.running:
                        raise BudgetExhausted(
                            f"instruction budget ({max_instructions}) "
                            f"exhausted",
                            pc=machine.pc,
                        )
                    break
                if happend is not None:
                    happend(entry)
                if entry[6]:
                    # self-loop block: iterates internally, returns the
                    # retirement count (never overshooting the cap)
                    n = entry[0](machine, remaining)
                else:
                    entry[0](machine)
                execs += 1
                retired += n
                remaining -= n
                if not machine.running:
                    break
                if remaining == 0:
                    raise BudgetExhausted(
                        f"instruction budget ({max_instructions}) exhausted",
                        pc=machine.pc,
                    )
                nxt = entry[2]
                if nxt is None:
                    chain_pc = entry[3]
                    if chain_pc is None:
                        break  # conditional/indirect: look the PC up
                    nxt = cache_get(chain_pc)
                    if nxt is None:
                        nxt = new_entry(chain_pc)
                    entry[2] = nxt
                    translator.chained += 1
                entry = nxt
    except (SimulationError, DecodeError) as err:
        # the faulting instruction's PC is not tracked on this path;
        # localize to the executing block's entry for the post-mortem
        if entry is not None and getattr(err, "block_pc", None) is None:
            err.block_pc = entry[5]
        raise
    finally:
        machine.instret += retired
        translator.executions += execs

    return RunResult(
        instructions=retired,
        exit_code=machine.exit_code if machine.exit_code is not None else -1,
        stdout=bytes(machine.stdout),
        stderr=bytes(machine.stderr),
        translation=core.translation_stats(),
    )


def fast_forward_translated(core, count):
    """Advance the machine by exactly ``count`` retired instructions.

    The snapshot layer's fast-forward primitive: translated probe-free
    execution with no sinks, no access recording, and — unlike
    :func:`run_translated` — no budget *error*: landing on instruction
    ``count`` is the goal, not a fault, so this simply returns the
    number retired (``count``, or fewer iff the program exited first).
    The stop is exact: a block that would overshoot falls back to
    bounded interpretation, the same budget-boundary machinery the run
    loops use, so the machine halts precisely between retirement
    ``count`` and ``count + 1`` with ``machine.pc`` at the next
    instruction (mid-block stops are fine — resumed runs re-enter via
    ``entry_for``, which handles branch-into-middle PCs).

    Retirements fold into ``machine.instret`` like every run loop's do,
    so a fast-forwarded prefix plus a resumed run accounts exactly like
    one uninterrupted run. (The guest-visible counter CSRs only ever
    expose run-*start* values — the loops fold retirements in on
    return — and nothing the compilers or the fuzz generator emit reads
    them, so snapshotting the fast-forwarded count is exact for every
    reachable guest.)
    """
    machine = core.machine
    translator = core._translator
    if translator is None:
        translator = core._translator = BlockTranslator(core)
    cache_get = translator.cache.get
    new_entry = translator.entry_for
    remaining = count
    retired = 0
    execs = 0
    entry = None
    try:
        while machine.running and remaining > 0:
            entry = cache_get(machine.pc)
            if entry is None:
                entry = new_entry(machine.pc)
            while True:
                n = entry[1]
                if n > remaining:
                    done = _interp_tail_plain(core, remaining)
                    translator.interp_instructions += done
                    retired += done
                    remaining -= done
                    break
                if entry[6]:
                    n = entry[0](machine, remaining)
                else:
                    entry[0](machine)
                execs += 1
                retired += n
                remaining -= n
                if not machine.running or remaining == 0:
                    break
                nxt = entry[2]
                if nxt is None:
                    chain_pc = entry[3]
                    if chain_pc is None:
                        break
                    nxt = cache_get(chain_pc)
                    if nxt is None:
                        nxt = new_entry(chain_pc)
                    entry[2] = nxt
                    translator.chained += 1
                entry = nxt
    except (SimulationError, DecodeError) as err:
        if entry is not None and getattr(err, "block_pc", None) is None:
            err.block_pc = entry[5]
        raise
    finally:
        machine.instret += retired
        translator.executions += execs
    return retired


def run_batched_translated(core, sinks, *, batch_size,
                           max_instructions=500_000_000):
    """Translated batched run; drop-in for ``EmulationCore.run_batched``.

    Flushes happen at block boundaries, so batches may slightly exceed
    ``batch_size`` (by at most :data:`MAX_BLOCK` - 1); sinks are
    batch-size agnostic by contract.
    """
    from repro.sim.emucore import RunResult

    machine = core.machine
    memory = machine.memory
    sinks = list(sinks)
    needs_memory = any(s.needs_memory for s in sinks)
    translator = core._batch_translators.get(needs_memory)
    if translator is None:
        translator = BatchTranslator(core, needs_memory)
        core._batch_translators[needs_memory] = translator
    if needs_memory:
        memory.start_recording()
    reads = memory.reads
    writes = memory.writes
    table = core.static_table
    indices = translator.indices
    read_ends = translator.read_ends
    write_ends = translator.write_ends
    del indices[:]
    del read_ends[:]
    del write_ends[:]
    cache_get = translator.cache.get
    new_entry = translator.entry_for
    observe = translator.observe
    history = core.history
    happend = history.append if history is not None else None
    remaining = max_instructions
    retired = 0
    execs = 0
    entry = None

    def flush():
        count = len(indices)
        if count:
            for sink in sinks:
                sink.on_batch(table, count, indices, read_ends,
                              write_ends, reads, writes)
            del indices[:]
            del read_ends[:]
            del write_ends[:]
            del reads[:]
            del writes[:]

    try:
        while machine.running:
            entry = cache_get(machine.pc)
            if entry is None:
                entry = new_entry(machine.pc)
            while True:
                n = entry[1]
                if n > remaining:
                    done = translator.interp_tail(remaining)
                    retired += done
                    remaining -= done
                    if machine.running:
                        flush()
                        raise BudgetExhausted(
                            f"instruction budget ({max_instructions}) "
                            f"exhausted",
                            pc=machine.pc,
                        )
                    break
                if happend is not None:
                    happend(entry)
                fn = entry[0]
                if fn is None:
                    observe(entry)  # first execution: interpret + compile
                elif entry[6]:
                    # self-loop block: iterate internally up to the budget
                    # or the batch headroom (first iteration always runs,
                    # so a tiny headroom overshoots by at most length - 1)
                    n = fn(machine, min(remaining,
                                        batch_size - len(indices)))
                else:
                    fn(machine)
                execs += 1
                retired += n
                remaining -= n
                if not machine.running:
                    break
                if len(indices) >= batch_size:
                    flush()
                if remaining == 0:
                    flush()
                    raise BudgetExhausted(
                        f"instruction budget ({max_instructions}) exhausted",
                        pc=machine.pc,
                    )
                nxt = entry[2]
                if nxt is None:
                    chain_pc = entry[3]
                    if chain_pc is None:
                        break
                    nxt = cache_get(chain_pc)
                    if nxt is None:
                        nxt = new_entry(chain_pc)
                    entry[2] = nxt
                    translator.chained += 1
                entry = nxt
        flush()
    except (SimulationError, DecodeError) as err:
        if entry is not None and getattr(err, "block_pc", None) is None:
            err.block_pc = entry[5]
        raise
    finally:
        machine.instret += retired
        translator.executions += execs
        if needs_memory:
            memory.stop_recording()

    return RunResult(
        instructions=retired,
        exit_code=machine.exit_code if machine.exit_code is not None else -1,
        stdout=bytes(machine.stdout),
        stderr=bytes(machine.stderr),
        translation=core.translation_stats(),
    )


def run_summary_translated(core, sinks, *, batch_size,
                           max_instructions=500_000_000):
    """Translated run emitting block-summary *events* instead of
    per-retirement items.

    Sinks must implement the event protocol (``accepts_events`` true,
    ``on_events(table, summaries, events, count, indices, read_ends,
    write_ends, reads, writes)``). ``events`` is a flat
    ``[id0, k0, id1, k1, ...]`` list: ``id >= 0`` means ``k`` executions
    of ``summaries[id]`` (``k * length`` retirements whose accesses sit
    at the stream cursor), ``id == -1`` means ``k`` per-retirement SoA
    items (observation runs, dynamic/demoted blocks, interpreted tails)
    carried in ``indices``/``read_ends``/``write_ends``. Access-end
    counts are absolute within the flush — block executions and SoA
    items share one ``reads``/``writes`` stream in retirement order.
    Flushes happen at block boundaries, as on the batched path.
    """
    from repro.sim.emucore import RunResult

    machine = core.machine
    memory = machine.memory
    sinks = list(sinks)
    translator = core._batch_translators.get("summary")
    if translator is None:
        translator = SummaryTranslator(core)
        core._batch_translators["summary"] = translator
    memory.start_recording()
    reads = memory.reads
    writes = memory.writes
    table = core.static_table
    summaries = translator.summaries
    indices = translator.indices
    read_ends = translator.read_ends
    write_ends = translator.write_ends
    del indices[:]
    del read_ends[:]
    del write_ends[:]
    events: list = []
    eappend = events.append
    cache_get = translator.cache.get
    new_entry = translator.entry_for
    observe = translator.observe
    history = core.history
    happend = history.append if history is not None else None
    remaining = max_instructions
    retired = 0
    execs = 0
    pending = 0
    entry = None

    def flush():
        nonlocal pending
        if pending:
            for sink in sinks:
                sink.on_events(table, summaries, events, pending, indices,
                               read_ends, write_ends, reads, writes)
            del events[:]
            del indices[:]
            del read_ends[:]
            del write_ends[:]
            del reads[:]
            del writes[:]
            pending = 0

    try:
        while machine.running:
            entry = cache_get(machine.pc)
            if entry is None:
                entry = new_entry(machine.pc)
            while True:
                n = entry[1]
                if n > remaining:
                    done = translator.interp_tail(remaining)
                    retired += done
                    remaining -= done
                    if done:
                        if events and events[-2] == -1:
                            events[-1] += done
                        else:
                            eappend(-1)
                            eappend(done)
                        pending += done
                    if machine.running:
                        flush()
                        raise BudgetExhausted(
                            f"instruction budget ({max_instructions}) "
                            f"exhausted",
                            pc=machine.pc,
                        )
                    break
                if happend is not None:
                    happend(entry)
                fn = entry[0]
                if fn is None:
                    # first execution: interpreted with SoA bookkeeping,
                    # then compiled (and summarized when static)
                    observe(entry)
                    bid = -1
                    k = n
                elif entry[6]:
                    n = fn(machine, min(remaining, batch_size - pending))
                    bid = entry[8]
                    k = n // entry[1] if bid >= 0 else n
                else:
                    fn(machine)
                    bid = entry[8]
                    k = 1 if bid >= 0 else n
                if events and events[-2] == bid:
                    events[-1] += k
                else:
                    eappend(bid)
                    eappend(k)
                execs += 1
                retired += n
                remaining -= n
                pending += n
                if not machine.running:
                    break
                if pending >= batch_size:
                    flush()
                if remaining == 0:
                    flush()
                    raise BudgetExhausted(
                        f"instruction budget ({max_instructions}) exhausted",
                        pc=machine.pc,
                    )
                nxt = entry[2]
                if nxt is None:
                    chain_pc = entry[3]
                    if chain_pc is None:
                        break
                    nxt = cache_get(chain_pc)
                    if nxt is None:
                        nxt = new_entry(chain_pc)
                    entry[2] = nxt
                    translator.chained += 1
                entry = nxt
        flush()
    except (SimulationError, DecodeError) as err:
        if entry is not None and getattr(err, "block_pc", None) is None:
            err.block_pc = entry[5]
        raise
    finally:
        machine.instret += retired
        translator.executions += execs
        memory.stop_recording()

    return RunResult(
        instructions=retired,
        exit_code=machine.exit_code if machine.exit_code is not None else -1,
        stdout=bytes(machine.stdout),
        stderr=bytes(machine.stderr),
        translation=core.translation_stats(),
    )
