"""Compact execution traces: record once, re-analyze offline.

The paper's artifact (§A.5) stores raw SimEng output per run and feeds it
to separate Python analysis scripts. This module is that separation for
our stack: a :class:`TraceRecorderProbe` captures the per-retirement
information every analysis consumes (static decode metadata per PC, plus
dynamic memory addresses per event) into a compact binary stream, and
:func:`read_trace`/:meth:`Trace.replay` feed it back into any probes
without re-simulating.

Format (little-endian):

* magic ``b"RTRC"``, version u16, ISA name (u8 length + bytes);
* static table: u32 count, then per entry — pc u64, word u32, group u8,
  flags u8 (load/store/branch bits), srcs (u8 count + u8 each), dsts
  (likewise), mnemonic (u8 length + bytes);
* event stream: per retired instruction — u32 table index, u8 read count,
  u8 write count, then (u64 addr, u8 size) per access;
* trailer: u32 0xFFFFFFFF sentinel, u64 total event count.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Sequence

from repro.common import SimulationError
from repro.isa.base import DecodedInst, InstructionGroup

MAGIC = b"RTRC"
VERSION = 1

_HDR = struct.Struct("<4sH")
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_STATIC = struct.Struct("<QIBB")
_ACCESS = struct.Struct("<QB")
_SENTINEL = 0xFFFFFFFF

_FLAG_LOAD, _FLAG_STORE, _FLAG_BRANCH = 1, 2, 4


def _noop_execute(machine) -> None:  # replayed instructions never execute
    raise SimulationError("replayed trace instructions cannot execute")


class TraceRecorderProbe:
    """Record the retirement stream into a binary buffer or file object."""

    needs_memory = True

    def __init__(self, sink: BinaryIO | None = None):
        self.sink = sink if sink is not None else io.BytesIO()
        self._static_index: dict[int, int] = {}
        self._static_blobs: list[bytes] = []
        self._events = bytearray()
        self.count = 0
        self.isa_name = ""
        self._closed = False

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        index = self._static_index.get(inst.pc)
        if index is None:
            index = len(self._static_blobs)
            self._static_index[inst.pc] = index
            flags = (
                (_FLAG_LOAD if inst.is_load else 0)
                | (_FLAG_STORE if inst.is_store else 0)
                | (_FLAG_BRANCH if inst.is_branch else 0)
            )
            blob = bytearray(_STATIC.pack(inst.pc, inst.word, inst.group, flags))
            blob += _U8.pack(len(inst.srcs))
            blob += bytes(inst.srcs)
            blob += _U8.pack(len(inst.dsts))
            blob += bytes(inst.dsts)
            name = inst.mnemonic.encode()
            blob += _U8.pack(len(name)) + name
            self._static_blobs.append(bytes(blob))
        events = self._events
        events += _U32.pack(index)
        events += _U8.pack(len(reads))
        events += _U8.pack(len(writes))
        for addr, size in reads:
            events += _ACCESS.pack(addr, size)
        for addr, size in writes:
            events += _ACCESS.pack(addr, size)
        self.count += 1

    def finish(self, isa_name: str = "") -> bytes | None:
        """Serialize everything to the sink; returns the bytes for an
        in-memory sink."""
        if self._closed:
            raise SimulationError("trace already finished")
        self._closed = True
        sink = self.sink
        sink.write(_HDR.pack(MAGIC, VERSION))
        name = (isa_name or self.isa_name).encode()
        sink.write(_U8.pack(len(name)) + name)
        sink.write(_U32.pack(len(self._static_blobs)))
        for blob in self._static_blobs:
            sink.write(blob)
        sink.write(self._events)
        sink.write(_U32.pack(_SENTINEL))
        sink.write(_U64.pack(self.count))
        if isinstance(sink, io.BytesIO):
            return sink.getvalue()
        return None


@dataclass
class Trace:
    """A parsed trace, replayable into analysis probes."""

    isa_name: str
    instructions: list[DecodedInst]          # static table
    events: list[tuple[int, list, list]]     # (table index, reads, writes)

    def __len__(self) -> int:
        return len(self.events)

    def replay(self, probes: Sequence) -> None:
        """Feed every recorded retirement into ``probes`` in order."""
        table = self.instructions
        hooks = [p.on_retire for p in probes]
        for index, reads, writes in self.events:
            inst = table[index]
            for hook in hooks:
                hook(inst, reads, writes)


def read_trace(source: bytes | BinaryIO) -> Trace:
    """Parse trace bytes (or a readable binary file object)."""
    blob = source if isinstance(source, bytes) else source.read()
    if len(blob) < _HDR.size or blob[:4] != MAGIC:
        raise SimulationError("not a repro trace (bad magic)")
    _magic, version = _HDR.unpack_from(blob, 0)
    if version != VERSION:
        raise SimulationError(f"unsupported trace version {version}")
    offset = _HDR.size
    (name_len,) = _U8.unpack_from(blob, offset)
    offset += 1
    isa_name = blob[offset : offset + name_len].decode()
    offset += name_len

    (count,) = _U32.unpack_from(blob, offset)
    offset += 4
    table: list[DecodedInst] = []
    for _ in range(count):
        pc, word, group, flags = _STATIC.unpack_from(blob, offset)
        offset += _STATIC.size
        (n_srcs,) = _U8.unpack_from(blob, offset)
        offset += 1
        srcs = tuple(blob[offset : offset + n_srcs])
        offset += n_srcs
        (n_dsts,) = _U8.unpack_from(blob, offset)
        offset += 1
        dsts = tuple(blob[offset : offset + n_dsts])
        offset += n_dsts
        (name_len,) = _U8.unpack_from(blob, offset)
        offset += 1
        mnemonic = blob[offset : offset + name_len].decode()
        offset += name_len
        table.append(DecodedInst(
            pc, word, mnemonic, mnemonic, InstructionGroup(group),
            srcs, dsts, _noop_execute,
            is_load=bool(flags & _FLAG_LOAD),
            is_store=bool(flags & _FLAG_STORE),
            is_branch=bool(flags & _FLAG_BRANCH),
        ))

    events: list[tuple[int, list, list]] = []
    while True:
        (index,) = _U32.unpack_from(blob, offset)
        offset += 4
        if index == _SENTINEL:
            break
        n_reads, n_writes = blob[offset], blob[offset + 1]
        offset += 2
        reads = []
        for _ in range(n_reads):
            addr, size = _ACCESS.unpack_from(blob, offset)
            offset += _ACCESS.size
            reads.append((addr, size))
        writes = []
        for _ in range(n_writes):
            addr, size = _ACCESS.unpack_from(blob, offset)
            offset += _ACCESS.size
            writes.append((addr, size))
        events.append((index, reads, writes))

    (declared,) = _U64.unpack_from(blob, offset)
    if declared != len(events):
        raise SimulationError(
            f"trace truncated: trailer says {declared} events, "
            f"found {len(events)}"
        )
    return Trace(isa_name=isa_name, instructions=table, events=events)
