"""Compact execution traces: record once, re-analyze offline.

The paper's artifact (§A.5) stores raw SimEng output per run and feeds it
to separate Python analysis scripts. This module is that separation for
our stack, and the storage half of the two-level result cache: a
:class:`TraceWriter` (batch sink) or :class:`TraceRecorderProbe` (legacy
per-retire probe) captures the per-retirement information every analysis
consumes, and :func:`read_trace` turns the bytes back into a
:class:`Trace` that can be replayed into probes — or, batch-at-a-time via
:meth:`Trace.iter_batches`, into the fused analysis engine without
re-simulating (or even re-compiling: the kernel regions ride along).

Format v2 (little-endian):

* magic ``b"RTRC"``, version u16, ISA name (u8 length + bytes);
* regions: u16 count, then per region — name (u8 length + bytes),
  start u64, end u64;
* static table: u32 count, then per entry — pc u64, word u32, group u8,
  flags u8 (load/store/branch bits), srcs (u8 count + u8 each), dsts
  (likewise), mnemonic (u8 length + bytes);
* event blocks (columnar, one per recorded batch): u32 instruction
  count ``n``, table indices (u32 × n), read counts (u16 × n), write
  counts (u16 × n), read addrs (u64 × R), read sizes (u8 × R), write
  addrs (u64 × W), write sizes (u8 × W);
* trailer: u32 0xFFFFFFFF sentinel, u64 total event count.

The columnar blocks serialize and parse as single ``numpy`` buffer
copies, so recording adds little to a batched run and replay spends its
time analyzing, not decoding.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator, Sequence

import numpy as np

from repro.common import SimulationError
from repro.isa.base import DecodedInst, InstructionGroup

MAGIC = b"RTRC"
# v3: instruction fetches no longer appear in the recorded access
# stream (they were decode-time artifacts, attributed differently by
# the interpreter and the block translator)
VERSION = 3

_HDR = struct.Struct("<4sH")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_STATIC = struct.Struct("<QIBB")
_SENTINEL = 0xFFFFFFFF

_FLAG_LOAD, _FLAG_STORE, _FLAG_BRANCH = 1, 2, 4


def _noop_execute(machine) -> None:  # replayed instructions never execute
    raise SimulationError("replayed trace instructions cannot execute")


def _pack_static(inst: DecodedInst) -> bytes:
    flags = (
        (_FLAG_LOAD if inst.is_load else 0)
        | (_FLAG_STORE if inst.is_store else 0)
        | (_FLAG_BRANCH if inst.is_branch else 0)
    )
    blob = bytearray(_STATIC.pack(inst.pc, inst.word, inst.group, flags))
    blob += _U8.pack(len(inst.srcs))
    blob += bytes(inst.srcs)
    blob += _U8.pack(len(inst.dsts))
    blob += bytes(inst.dsts)
    name = inst.mnemonic.encode()
    blob += _U8.pack(len(name)) + name
    return bytes(blob)


def _pack_block(count, indices, read_ends, write_ends, reads, writes) -> bytes:
    """One columnar event block from structure-of-arrays batch data."""
    blob = bytearray(_U32.pack(count))
    blob += np.fromiter(indices, np.uint32, count).tobytes()
    rcnt = np.diff(np.fromiter(read_ends, np.int64, count), prepend=0)
    wcnt = np.diff(np.fromiter(write_ends, np.int64, count), prepend=0)
    if int(rcnt.max(initial=0)) > 0xFFFF or int(wcnt.max(initial=0)) > 0xFFFF:
        raise SimulationError(
            "per-instruction access count exceeds the trace format's u16"
        )
    blob += rcnt.astype(np.uint16).tobytes()
    blob += wcnt.astype(np.uint16).tobytes()
    for accesses, total in ((reads, read_ends[count - 1]),
                            (writes, write_ends[count - 1])):
        if total:
            acc = np.array(accesses, dtype=np.uint64)
            blob += acc[:, 0].tobytes()
            blob += acc[:, 1].astype(np.uint8).tobytes()
    return bytes(blob)


class TraceWriter:
    """Batch sink serializing the retirement stream (trace format v2).

    Attach alongside the fused analysis engine on a batched run; call
    :meth:`finish` after the run for the trace bytes. ``isa_name`` and
    ``regions`` may be set any time before ``finish``.
    """

    needs_memory = True

    def __init__(self, isa_name: str = "", regions: Sequence = ()):
        self.isa_name = isa_name
        self.regions = list(regions)
        self._table: Sequence[DecodedInst] = []
        self._blocks: list[bytes] = []
        self.count = 0
        self._closed = False

    def on_batch(self, table, count, indices, read_ends, write_ends,
                 reads, writes) -> None:
        if count == 0:
            return
        self._table = table
        self._blocks.append(
            _pack_block(count, indices, read_ends, write_ends, reads, writes)
        )
        self.count += count

    def finish(self) -> bytes:
        """Serialize header, regions, static table, blocks and trailer."""
        if self._closed:
            raise SimulationError("trace already finished")
        self._closed = True
        out = bytearray(_HDR.pack(MAGIC, VERSION))
        name = self.isa_name.encode()
        out += _U8.pack(len(name)) + name
        out += _U16.pack(len(self.regions))
        for region in self.regions:
            rname = region.name.encode()
            out += _U8.pack(len(rname)) + rname
            out += _U64.pack(region.start) + _U64.pack(region.end)
        out += _U32.pack(len(self._table))
        for inst in self._table:
            out += _pack_static(inst)
        for block in self._blocks:
            out += block
        out += _U32.pack(_SENTINEL)
        out += _U64.pack(self.count)
        return bytes(out)


class TraceRecorderProbe:
    """Record the retirement stream via the legacy per-retire probe API."""

    needs_memory = True

    def __init__(self, sink: BinaryIO | None = None):
        self.sink = sink if sink is not None else io.BytesIO()
        self._static_index: dict[int, int] = {}
        self._table: list[DecodedInst] = []
        self._indices: list[int] = []
        self._read_ends: list[int] = []
        self._write_ends: list[int] = []
        self._reads: list[tuple[int, int]] = []
        self._writes: list[tuple[int, int]] = []
        self.count = 0
        self.isa_name = ""
        self._closed = False

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        index = self._static_index.get(inst.pc)
        if index is None:
            index = len(self._table)
            self._static_index[inst.pc] = index
            self._table.append(inst)
        self._indices.append(index)
        self._reads.extend(reads)
        self._writes.extend(writes)
        self._read_ends.append(len(self._reads))
        self._write_ends.append(len(self._writes))
        self.count += 1

    def finish(self, isa_name: str = "") -> bytes | None:
        """Serialize everything to the sink; returns the bytes for an
        in-memory sink."""
        if self._closed:
            raise SimulationError("trace already finished")
        self._closed = True
        writer = TraceWriter(isa_name or self.isa_name)
        writer._table = self._table
        writer.count = self.count
        if self.count:
            writer._blocks.append(_pack_block(
                self.count, self._indices, self._read_ends,
                self._write_ends, self._reads, self._writes,
            ))
        blob = writer.finish()
        self.sink.write(blob)
        if isinstance(self.sink, io.BytesIO):
            return self.sink.getvalue()
        return None


@dataclass
class Trace:
    """A parsed trace, replayable into probes or batch sinks."""

    isa_name: str
    instructions: list[DecodedInst]          # static table
    regions: list = field(default_factory=list)
    #: Parsed columnar blocks: (idx, rcnt, wcnt, raddr, rsize, waddr, wsize).
    blocks: list[tuple] = field(default_factory=list, repr=False)
    count: int = 0

    def __len__(self) -> int:
        return self.count

    def iter_batches(self) -> Iterator[tuple]:
        """Yield ``on_batch`` argument tuples, one per recorded block."""
        table = self.instructions
        for idx, rcnt, wcnt, raddr, rsize, waddr, wsize in self.blocks:
            count = len(idx)
            indices = idx.tolist()
            read_ends = np.cumsum(rcnt, dtype=np.int64).tolist()
            write_ends = np.cumsum(wcnt, dtype=np.int64).tolist()
            reads = list(zip(raddr.tolist(), rsize.tolist()))
            writes = list(zip(waddr.tolist(), wsize.tolist()))
            yield (table, count, indices, read_ends, write_ends,
                   reads, writes)

    def replay_into(self, sinks: Sequence) -> None:
        """Feed every recorded batch into ``sinks`` (fused-engine path)."""
        for batch in self.iter_batches():
            for sink in sinks:
                sink.on_batch(*batch)

    def replay(self, probes: Sequence) -> None:
        """Feed every recorded retirement into ``probes`` in order."""
        table = self.instructions
        hooks = [p.on_retire for p in probes]
        for (_table, count, indices, read_ends, write_ends,
             reads, writes) in self.iter_batches():
            r0 = 0
            w0 = 0
            for i in range(count):
                inst = table[indices[i]]
                r1 = read_ends[i]
                w1 = write_ends[i]
                rs = reads[r0:r1]
                ws = writes[w0:w1]
                r0 = r1
                w0 = w1
                for hook in hooks:
                    hook(inst, rs, ws)


def read_trace(source: bytes | BinaryIO) -> Trace:
    """Parse trace bytes (or a readable binary file object)."""
    from repro.asm.program import Region

    blob = source if isinstance(source, bytes) else source.read()
    if len(blob) < _HDR.size or blob[:4] != MAGIC:
        raise SimulationError("not a repro trace (bad magic)")
    _magic, version = _HDR.unpack_from(blob, 0)
    if version != VERSION:
        raise SimulationError(f"unsupported trace version {version}")
    offset = _HDR.size
    (name_len,) = _U8.unpack_from(blob, offset)
    offset += 1
    isa_name = blob[offset : offset + name_len].decode()
    offset += name_len

    (n_regions,) = _U16.unpack_from(blob, offset)
    offset += 2
    regions = []
    for _ in range(n_regions):
        (name_len,) = _U8.unpack_from(blob, offset)
        offset += 1
        rname = blob[offset : offset + name_len].decode()
        offset += name_len
        (start,) = _U64.unpack_from(blob, offset)
        (end,) = _U64.unpack_from(blob, offset + 8)
        offset += 16
        regions.append(Region(rname, start, end))

    (count,) = _U32.unpack_from(blob, offset)
    offset += 4
    table: list[DecodedInst] = []
    for _ in range(count):
        pc, word, group, flags = _STATIC.unpack_from(blob, offset)
        offset += _STATIC.size
        (n_srcs,) = _U8.unpack_from(blob, offset)
        offset += 1
        srcs = tuple(blob[offset : offset + n_srcs])
        offset += n_srcs
        (n_dsts,) = _U8.unpack_from(blob, offset)
        offset += 1
        dsts = tuple(blob[offset : offset + n_dsts])
        offset += n_dsts
        (name_len,) = _U8.unpack_from(blob, offset)
        offset += 1
        mnemonic = blob[offset : offset + name_len].decode()
        offset += name_len
        table.append(DecodedInst(
            pc, word, mnemonic, mnemonic, InstructionGroup(group),
            srcs, dsts, _noop_execute,
            is_load=bool(flags & _FLAG_LOAD),
            is_store=bool(flags & _FLAG_STORE),
            is_branch=bool(flags & _FLAG_BRANCH),
        ))

    blocks: list[tuple] = []
    total = 0
    while True:
        (n,) = _U32.unpack_from(blob, offset)
        offset += 4
        if n == _SENTINEL:
            break
        idx = np.frombuffer(blob, np.uint32, n, offset)
        offset += 4 * n
        rcnt = np.frombuffer(blob, np.uint16, n, offset)
        offset += 2 * n
        wcnt = np.frombuffer(blob, np.uint16, n, offset)
        offset += 2 * n
        n_reads = int(rcnt.sum())
        n_writes = int(wcnt.sum())
        raddr = np.frombuffer(blob, np.uint64, n_reads, offset)
        offset += 8 * n_reads
        rsize = np.frombuffer(blob, np.uint8, n_reads, offset)
        offset += n_reads
        waddr = np.frombuffer(blob, np.uint64, n_writes, offset)
        offset += 8 * n_writes
        wsize = np.frombuffer(blob, np.uint8, n_writes, offset)
        offset += n_writes
        if offset > len(blob):
            raise SimulationError("trace truncated mid-block")
        blocks.append((idx, rcnt, wcnt, raddr, rsize, waddr, wsize))
        total += n

    (declared,) = _U64.unpack_from(blob, offset)
    if declared != total:
        raise SimulationError(
            f"trace truncated: trailer says {declared} events, "
            f"found {total}"
        )
    return Trace(isa_name=isa_name, instructions=table, regions=regions,
                 blocks=blocks, count=total)
