"""Dual-issue in-order pipeline timing model (extension).

The paper compiles with ``-mtune=cortex-a55`` / ``-mtune=sifive-7-series``
— dual-issue, in-order cores — but its analyses stop at idealized critical
paths. This model estimates what such a core would actually take: a
trace-driven timing simulation layered over the (architecturally exact)
emulation core as a probe.

Model, per retired instruction:

* up to ``issue_width`` instructions issue per cycle, in program order;
* at most one memory operation and one branch per cycle (typical little
  cores have a single AGU/branch unit);
* an instruction stalls until its source registers' results are ready
  (scoreboarding); results appear ``latency(group)`` cycles after issue;
* loads take the model's load latency (a cache-hit latency — there is no
  cache model, matching the paper's methodology);
* taken branches redirect fetch: the next instruction issues no earlier
  than the branch's issue cycle + ``branch_redirect`` cycles.

The result is a CPI between the ideal CP-derived bound and reality —
exactly the §8 "more than just the critical path matters" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.base import NUM_DEP_REGS, DecodedInst, InstructionGroup
from repro.sim.config import CoreModel


@dataclass
class InOrderResult:
    cycles: int
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def runtime_ms(self, clock_ghz: float = 2.0) -> float:
        return self.cycles / (clock_ghz * 1e9) * 1e3


class InOrderTimingProbe:
    """Attachable timing model (see module docstring)."""

    needs_memory = False

    def __init__(self, model: CoreModel, *, issue_width: int | None = None,
                 branch_redirect: int = 2):
        self.model = model
        self.issue_width = issue_width or min(model.pipeline.issue_width, 2)
        self.branch_redirect = branch_redirect
        self.latency = [model.latency(g) for g in InstructionGroup]
        self.ready = [0] * NUM_DEP_REGS
        self.cycle = 0              # current issue cycle
        self.slots_used = 0         # instructions issued this cycle
        self.mem_used = False
        self.branch_used = False
        self.instructions = 0
        self.last_cycle = 0
        self._pending_redirect = 0  # earliest issue cycle after a taken branch

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        self.instructions += 1
        earliest = self.cycle
        if self._pending_redirect > earliest:
            earliest = self._pending_redirect
        for src in inst.srcs:
            ready = self.ready[src]
            if ready > earliest:
                earliest = ready

        is_mem = inst.is_load or inst.is_store
        while True:
            if earliest > self.cycle:
                self.cycle = earliest
                self.slots_used = 0
                self.mem_used = False
                self.branch_used = False
            # structural constraints at this cycle
            if self.slots_used >= self.issue_width or (
                is_mem and self.mem_used
            ) or (inst.is_branch and self.branch_used):
                earliest = self.cycle + 1
                continue
            break

        issue = self.cycle
        self.slots_used += 1
        if is_mem:
            self.mem_used = True
        if inst.is_branch:
            self.branch_used = True
        latency = self.latency[inst.group]
        done = issue + latency
        for dst in inst.dsts:
            self.ready[dst] = done
        if done > self.last_cycle:
            self.last_cycle = done
        # taken branch = PC changed away from fall-through; the emulation
        # core retires in actual execution order, so detect via a redirect
        # cost applied to every branch (static not-taken would be unfair to
        # loop-heavy codes; a small fixed redirect approximates a simple
        # always-predicted-taken BTB core)
        if inst.is_branch:
            self._pending_redirect = issue + self.branch_redirect

    def result(self) -> InOrderResult:
        return InOrderResult(cycles=self.last_cycle, instructions=self.instructions)
