"""Per-retirement architectural invariant checking.

A pluggable :class:`~repro.sim.emucore.Probe` that asserts, after every
retired instruction, properties that must hold on *any* correct
execution regardless of the program:

* the hardwired-zero register reads as zero — RV64's ``x0`` (slot 0;
  its writes are dropped at decode, so a nonzero value means executor
  state corruption) and the AArch64 decoders' XZR/WZR slot (32);
* the PC of every retired instruction lies inside an executable
  segment (the guest never walked off the text);
* on AArch64, SP is 16-byte aligned at every call (``bl``/``blr``) —
  the AAPCS64 public-interface rule;
* no recorded store lands inside an executable segment (the decode
  cache assumes code is not self-modifying).

Violations raise :class:`InvariantViolation` (a
:class:`SimulationError`, so the post-mortem machinery captures full
state). The checker is the differential fuzzer's per-step oracle; it is
opt-in because, like any probe, it forces the interpreter path —
``bench_emucore.py --mode checked`` tracks its slowdown.
"""

from __future__ import annotations

from repro.common import SimulationError

#: ELF segment-flag bit for "executable".
PF_X = 1


class InvariantViolation(SimulationError):
    """An architectural invariant failed to hold after a retirement."""


class InvariantChecker:
    """Probe asserting architectural invariants after every retirement."""

    needs_memory = True  # store-into-text needs the access log

    def __init__(self, machine, text_ranges):
        self.machine = machine
        #: ``(start, end)`` half-open ranges of executable memory.
        self.text_ranges = tuple(text_ranges)
        self.is_aarch64 = machine.isa_name == "aarch64"
        self.zero_slot = 32 if self.is_aarch64 else 0
        self.checked = 0
        self.call_checks = 0
        self.write_checks = 0

    @classmethod
    def for_image(cls, image, machine):
        """Build a checker whose text ranges come from ``image``'s
        executable segments."""
        text = [(vaddr, vaddr + len(data))
                for vaddr, data, flags in image.segments if flags & PF_X]
        return cls(machine, text)

    def on_retire(self, inst, reads, writes):
        self.checked += 1
        machine = self.machine
        pc = inst.pc

        if machine.r[self.zero_slot] != 0:
            name = "xzr" if self.is_aarch64 else "x0"
            raise InvariantViolation(
                f"invariant violated: zero register {name} holds "
                f"{machine.r[self.zero_slot]:#x}", pc=pc)

        ok = False
        for start, end in self.text_ranges:
            if start <= pc < end:
                ok = True
                break
        if not ok:
            raise InvariantViolation(
                f"invariant violated: retired instruction outside "
                f"executable segments", pc=pc)

        if self.is_aarch64 and (inst.mnemonic == "bl"
                                or inst.mnemonic == "blr"):
            self.call_checks += 1
            sp = machine.r[31]
            if sp & 0xF:
                raise InvariantViolation(
                    f"invariant violated: SP {sp:#x} not 16-byte aligned "
                    f"at call", pc=pc)

        if writes:
            self.write_checks += len(writes)
            for addr, size in writes:
                for start, end in self.text_ranges:
                    if addr < end and addr + size > start:
                        raise InvariantViolation(
                            f"invariant violated: store into executable "
                            f"segment", pc=pc, addr=addr, size=size)

    def stats(self) -> dict:
        return {
            "checked": self.checked,
            "call_checks": self.call_checks,
            "write_checks": self.write_checks,
        }
