"""Linux generic-ABI syscall emulation (the subset static binaries need).

Both AArch64 and RISC-V Linux use the *generic* syscall table, so the
numbers are identical; only the registers differ:

* AArch64: number in ``x8``, arguments in ``x0``–``x5``, result in ``x0``.
* RISC-V:  number in ``a7`` (x17), arguments in ``a0``–``a5`` (x10–x15),
  result in ``a0``.

Our kernelc runtime only issues ``write`` (stdout/stderr capture), ``brk``
(bump heap) and ``exit``/``exit_group``; anything else raises, which is the
honest behaviour for a simulator pointed at an unsupported binary.
"""

from __future__ import annotations

from repro.common import SimulationError
from repro.sim.machine import Machine

SYS_WRITE = 64
SYS_EXIT = 93
SYS_EXIT_GROUP = 94
SYS_BRK = 214

#: Upper bound for the brk heap; collides with nothing (stack sits above).
HEAP_LIMIT = 0xE0_0000


def _regs(machine: Machine) -> tuple[int, list[int], int]:
    """Return (syscall number, arg registers values, result register index)."""
    if machine.isa_name == "aarch64":
        return machine.r[8], machine.r[0:6], 0
    return machine.r[17], machine.r[10:16], 10


def handle_syscall(machine: Machine) -> None:
    """Dispatch one syscall against ``machine`` (installed as the handler)."""
    number, args, result_reg = _regs(machine)

    if number in (SYS_EXIT, SYS_EXIT_GROUP):
        machine.exit_code = args[0] & 0xFF
        machine.running = False
        return

    if number == SYS_WRITE:
        fd, buf, length = args[0], args[1], args[2]
        try:
            data = machine.memory.read_bytes(buf, length)
        except SimulationError as err:
            # memory raises without pc context; localize the fault here
            raise SimulationError(
                f"write syscall buffer fault: {err}", pc=machine.pc,
                addr=err.addr, size=err.size,
            ) from None
        if fd == 1:
            machine.stdout += data
        elif fd == 2:
            machine.stderr += data
        else:
            raise SimulationError(f"write to unsupported fd {fd}", pc=machine.pc)
        machine.r[result_reg] = length
        return

    if number == SYS_BRK:
        requested = args[0]
        if requested == 0:
            machine.r[result_reg] = machine.heap_end
            return
        if requested > HEAP_LIMIT:
            # Linux brk reports failure by returning the old break.
            machine.r[result_reg] = machine.heap_end
            return
        machine.heap_end = max(machine.heap_end, requested)
        machine.r[result_reg] = machine.heap_end
        return

    raise SimulationError(f"unsupported syscall {number}", pc=machine.pc)
