"""The atomic emulation core.

This is the model the paper uses for every experiment: "the included
emulation core model which executes each instruction atomically to
completion in a single cycle" (§3.1), extended — exactly as the authors
extended SimEng — with per-retired-instruction hooks ("probes") that see the
decoded instruction's sources, destinations and memory addresses.

Decoded instructions are cached by PC (code is not self-modifying), so the
hot loop is: fetch from cache → bump PC → run the pre-bound executor →
notify probes. Profiling-informed, per the HPC-Python guides: everything
per-step is attribute-light local-variable access.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.common import BudgetExhausted, DecodeError, SimulationError
from repro.isa.base import DecodedInst, ISA
from repro.loader import LoadedImage, load_program
from repro.sim.machine import Machine
from repro.sim.memory import Memory
from repro.sim.syscalls import handle_syscall


class Probe(Protocol):
    """Analysis hook notified after every retired instruction.

    ``needs_memory`` opts in to per-access address recording (it costs a
    little per load/store, so path-length-only runs skip it). ``on_retire``
    receives the decoded instruction and, when opted in, the live access
    lists (valid only for the duration of the call).
    """

    needs_memory: bool

    def on_retire(
        self,
        inst: DecodedInst,
        reads: Sequence[tuple[int, int]],
        writes: Sequence[tuple[int, int]],
    ) -> None: ...


class BatchSink(Protocol):
    """Consumer of batched retirement streams (``run_batched``).

    ``on_batch`` receives the core's append-only static table (one
    :class:`DecodedInst` per distinct PC, in first-retirement order) plus
    structure-of-arrays batch data: ``indices[i]`` is the static-table
    index of the i-th retirement, ``read_ends[i]``/``write_ends[i]`` are
    cumulative access counts (so retirement i's reads are
    ``reads[read_ends[i-1]:read_ends[i]]``), and ``reads``/``writes`` are
    flat ``(addr, size)`` lists for the whole batch. All batch buffers
    are reused after the call returns; the table is shared and only ever
    appended to.
    """

    needs_memory: bool

    def on_batch(self, table, count, indices, read_ends, write_ends,
                 reads, writes) -> None: ...


@dataclass
class RunResult:
    """Outcome of an emulation run."""

    instructions: int
    exit_code: int
    stdout: bytes
    stderr: bytes
    #: Block-translation statistics (:meth:`EmulationCore.translation_stats`)
    #: when the run used the translated fast path; None on interpreter runs.
    translation: dict | None = None

    @property
    def cycles(self) -> int:
        """The emulation core retires one instruction per cycle (§3.1)."""
        return self.instructions


_EMPTY: tuple = ()

#: Default retirement-batch size for ``run_batched``. Large enough that
#: per-batch numpy/flush overhead amortizes, small enough that the batch
#: buffers stay cache-resident and that steady loops repeat whole batches
#: often (the fused engine's batch-level window memo keys on exact batch
#: repetition, so shorter batches repeat sooner and hit more).
DEFAULT_BATCH_SIZE = 1024

#: Probe-free budget accounting granularity: the inner loop runs up to
#: this many instructions with the budget check hoisted out of it.
_BUDGET_CHUNK = 1 << 16


class EmulationCore:
    """Atomic, one-instruction-per-cycle execution of a loaded image."""

    def __init__(self, isa: ISA, machine: Machine, probes: Sequence[Probe] = (),
                 *, translate: bool = True):
        if isa.name != machine.isa_name:
            raise SimulationError(
                f"ISA {isa.name!r} does not match machine {machine.isa_name!r}"
            )
        self.isa = isa
        self.machine = machine
        self.probes = list(probes)
        #: Use the basic-block translation fast path (:mod:`repro.sim.blocks`)
        #: where possible. Per-retire probes force the interpreter — they
        #: need control between every instruction — so ``run`` with probes
        #: attached interprets regardless of this flag.
        self.translate = translate
        self.decode_cache: dict[int, DecodedInst] = {}
        #: Distinct decoded instructions in first-retirement order; the
        #: batched path hands indices into this table to its sinks.
        self.static_table: list[DecodedInst] = []
        self._batch_cache: dict[int, tuple] = {}  # pc -> (execute, index)
        self._translator = None          # lazy BlockTranslator
        self._batch_translators: dict[bool, object] = {}  # needs_memory -> BT
        #: Retirement-history ring for post-mortem diagnostics; None (the
        #: default) keeps the hot loops free of any history bookkeeping.
        #: Holds DecodedInsts on the interpreter paths and block entries
        #: on the translated paths (:func:`postmortem.capture` flattens).
        self.history: deque | None = None
        machine.syscall_handler = handle_syscall

    def enable_history(self, n: int = 64) -> None:
        """Keep the last ``n`` retired instructions (interpreter) or
        dispatched blocks (translated path) for post-mortem reports."""
        self.history = deque(maxlen=n)

    def translation_stats(self) -> dict | None:
        """Aggregated block-translation statistics across this core's
        translators (probe-free and batched), or None if the core never
        translated anything."""
        translators = []
        if self._translator is not None:
            translators.append(self._translator)
        translators.extend(self._batch_translators.values())
        if not translators:
            return None
        merged = None
        for translator in translators:
            stats = translator.stats()
            if merged is None:
                merged = dict(stats)
            else:
                for key, value in stats.items():
                    if key == "max_block":
                        merged[key] = max(merged.get(key, 0), value)
                    else:
                        merged[key] = merged.get(key, 0) + value
        return merged

    def run(self, max_instructions: int = 500_000_000) -> RunResult:
        """Run until the program exits; raises on budget exhaustion.

        Guest faults (:data:`repro.sim.postmortem.GUEST_FAULTS`) leave
        here with a :class:`~repro.sim.postmortem.GuestFaultReport`
        attached as ``err.fault_report``.
        """
        try:
            return self._run(max_instructions)
        except (SimulationError, DecodeError) as err:
            from repro.sim import postmortem

            postmortem.attach(self, err)
            raise

    def _run(self, max_instructions: int) -> RunResult:
        if self.translate and not self.probes:
            from repro.sim.blocks import run_translated

            return run_translated(self, max_instructions)
        machine = self.machine
        memory = machine.memory
        cache = self.decode_cache
        probes = self.probes
        needs_memory = any(p.needs_memory for p in probes)
        if needs_memory:
            memory.start_recording()
        reads = memory.reads
        writes = memory.writes
        history = self.history
        happend = history.append if history is not None else None

        retired = 0
        pc = machine.pc
        try:
            # hot loops: direct dict indexing (hits are the common case by
            # orders of magnitude) and locals for everything touched per step
            if probes:
                on_retire = tuple(p.on_retire for p in probes)
                single = on_retire[0] if len(on_retire) == 1 else None
                while machine.running:
                    pc = machine.pc
                    try:
                        inst = cache[pc]
                    except KeyError:
                        inst = self._decode_at(pc)
                    machine.pc = pc + 4
                    if happend is not None:
                        happend(inst)
                    if needs_memory:
                        del reads[:]
                        del writes[:]
                        inst.execute(machine)
                        if single is not None:
                            single(inst, reads, writes)
                        else:
                            for hook in on_retire:
                                hook(inst, reads, writes)
                    else:
                        inst.execute(machine)
                        if single is not None:
                            single(inst, _EMPTY, _EMPTY)
                        else:
                            for hook in on_retire:
                                hook(inst, _EMPTY, _EMPTY)
                    retired += 1
                    if retired >= max_instructions and machine.running:
                        # a clean exit on exactly the last budgeted
                        # instruction is a normal completion
                        raise BudgetExhausted(
                            f"instruction budget ({max_instructions}) exhausted",
                            pc=pc,
                        )
            else:
                # probe-free: hoist the budget check out of the hot loop —
                # run bounded chunks and only account between them
                remaining = max_instructions
                pc = machine.pc
                while machine.running:
                    chunk = (_BUDGET_CHUNK if remaining > _BUDGET_CHUNK
                             else remaining)
                    executed = chunk
                    if happend is not None:
                        # history variant: identical but for the ring
                        # append (kept separate so the common path pays
                        # nothing for the diagnostics feature)
                        for n in range(chunk):
                            pc = machine.pc
                            try:
                                inst = cache[pc]
                            except KeyError:
                                inst = self._decode_at(pc)
                            machine.pc = pc + 4
                            happend(inst)
                            inst.execute(machine)
                            if not machine.running:
                                executed = n + 1
                                break
                    else:
                        for n in range(chunk):
                            pc = machine.pc
                            try:
                                inst = cache[pc]
                            except KeyError:
                                inst = self._decode_at(pc)
                            machine.pc = pc + 4
                            inst.execute(machine)
                            if not machine.running:
                                executed = n + 1
                                break
                    retired += executed
                    remaining -= executed
                    if remaining == 0 and machine.running:
                        raise BudgetExhausted(
                            f"instruction budget ({max_instructions}) "
                            f"exhausted",
                            pc=pc,
                        )
        except (SimulationError, DecodeError) as err:
            from repro.sim.postmortem import annotate_pc

            annotate_pc(err, pc)  # memory faults raise without PC context
            raise
        finally:
            machine.instret += retired
            if needs_memory:
                memory.stop_recording()

        return RunResult(
            instructions=retired,
            exit_code=machine.exit_code if machine.exit_code is not None else -1,
            stdout=bytes(machine.stdout),
            stderr=bytes(machine.stderr),
        )

    def fast_forward(self, count: int) -> int:
        """Advance by exactly ``count`` retired instructions, no sinks.

        The sharded executor's fast-forward primitive: probe-free
        execution (translated when this core translates, bounded
        interpretation otherwise) that stops precisely at retirement
        ``count`` instead of treating it as budget exhaustion. Returns
        the number retired — ``count``, or fewer iff the program
        exited. Retirements fold into ``machine.instret`` exactly as a
        run's would, so fast-forward + resumed run == one uninterrupted
        run, state-for-state (see
        :func:`repro.sim.blocks.fast_forward_translated`).
        """
        try:
            if self.translate:
                from repro.sim.blocks import fast_forward_translated

                return fast_forward_translated(self, count)
            from repro.sim.blocks import _interp_tail_plain

            executed = _interp_tail_plain(self, count)
            self.machine.instret += executed
            return executed
        except (SimulationError, DecodeError) as err:
            from repro.sim import postmortem

            postmortem.attach(self, err)
            raise

    def run_batched(
        self,
        sinks: Sequence[BatchSink],
        *,
        batch_size: int | None = None,
        max_instructions: int = 500_000_000,
    ) -> RunResult:
        """Run with retirements accumulated into structure-of-arrays
        buffers and flushed to ``sinks`` in batches of ``batch_size``
        (``None`` honors the sinks' ``preferred_batch_size`` hints,
        falling back to ``DEFAULT_BATCH_SIZE``).

        This is the fast path behind the fused analysis engine: the hot
        loop does three list appends per retirement instead of one Python
        callback per probe, and sinks amortize their work over whole
        batches (vectorizing where possible). ``self.probes`` is ignored.
        """
        try:
            return self._run_batched(
                sinks, batch_size=batch_size,
                max_instructions=max_instructions,
            )
        except (SimulationError, DecodeError) as err:
            from repro.sim import postmortem

            postmortem.attach(self, err)
            raise

    def _run_batched(
        self,
        sinks: Sequence[BatchSink],
        *,
        batch_size: int | None,
        max_instructions: int,
    ) -> RunResult:
        if batch_size is None:
            prefs = [getattr(s, "preferred_batch_size", None)
                     for s in sinks]
            prefs = [p for p in prefs if p]
            # the smallest preference wins: a sink that needs small
            # flushes (windowed memo locality) must not be starved by a
            # throughput-hungry neighbor
            batch_size = min(prefs) if prefs else DEFAULT_BATCH_SIZE
        if self.translate:
            sinks = list(sinks)
            if sinks and all(getattr(s, "accepts_events", False)
                             for s in sinks):
                # every sink understands block-summary events: use the
                # translate-time-summary fast path (per-block events
                # instead of per-retirement SoA items); events are
                # pre-aggregated, so a flush covers far more
                # instructions at similar sink cost.
                from repro.sim.blocks import run_summary_translated

                return run_summary_translated(
                    self, sinks, batch_size=batch_size,
                    max_instructions=max_instructions,
                )
            from repro.sim.blocks import run_batched_translated

            return run_batched_translated(
                self, sinks, batch_size=batch_size,
                max_instructions=max_instructions,
            )
        machine = self.machine
        memory = machine.memory
        sinks = list(sinks)
        needs_memory = any(s.needs_memory for s in sinks)
        if needs_memory:
            memory.start_recording()
        reads = memory.reads
        writes = memory.writes
        table = self.static_table
        cache = self._batch_cache
        indices: list[int] = []
        read_ends: list[int] = []
        write_ends: list[int] = []
        iappend = indices.append
        rappend = read_ends.append
        wappend = write_ends.append
        retired = 0
        remaining = max_instructions
        pc = machine.pc
        try:
            while machine.running:
                room = batch_size if remaining > batch_size else remaining
                executed = room
                for n in range(room):
                    pc = machine.pc
                    try:
                        entry = cache[pc]
                    except KeyError:
                        entry = self._batch_entry(pc)
                    machine.pc = pc + 4
                    entry[0](machine)
                    iappend(entry[1])
                    rappend(len(reads))
                    wappend(len(writes))
                    if not machine.running:
                        executed = n + 1
                        break
                retired += executed
                remaining -= executed
                count = len(indices)
                if count:
                    for sink in sinks:
                        sink.on_batch(table, count, indices, read_ends,
                                      write_ends, reads, writes)
                    del indices[:]
                    del read_ends[:]
                    del write_ends[:]
                    del reads[:]
                    del writes[:]
                if remaining == 0 and machine.running:
                    raise BudgetExhausted(
                        f"instruction budget ({max_instructions}) exhausted",
                        pc=pc,
                    )
        except (SimulationError, DecodeError) as err:
            from repro.sim.postmortem import annotate_pc

            annotate_pc(err, pc)  # memory faults raise without PC context
            raise
        finally:
            machine.instret += retired
            if needs_memory:
                memory.stop_recording()

        return RunResult(
            instructions=retired,
            exit_code=machine.exit_code if machine.exit_code is not None else -1,
            stdout=bytes(machine.stdout),
            stderr=bytes(machine.stderr),
        )

    def _batch_entry(self, pc: int) -> tuple:
        inst = self.decode_cache.get(pc)
        if inst is None:
            inst = self._decode_at(pc)
        index = len(self.static_table)
        self.static_table.append(inst)
        entry = (inst.execute, index)
        self._batch_cache[pc] = entry
        return entry

    def _decode_at(self, pc: int) -> DecodedInst:
        try:
            # read_bytes, not load: a fetch is not a data access, so it
            # must never appear in the recorded access log (the block
            # translator decodes whole blocks ahead of execution, which
            # would otherwise attribute fetches to arbitrary instructions)
            word = int.from_bytes(
                self.machine.memory.read_bytes(pc, 4), "little")
        except SimulationError:
            raise SimulationError("instruction fetch out of bounds", pc=pc) from None
        try:
            inst = self.isa.decode(word, pc)
        except DecodeError as err:
            raise DecodeError(word, pc, f"at pc {pc:#x}: {err}") from None
        self.decode_cache[pc] = inst
        return inst


def run_image(
    image: LoadedImage,
    isa: ISA,
    probes: Sequence[Probe] = (),
    *,
    memory_size: int = 1 << 24,
    max_instructions: int = 500_000_000,
    batch_sinks: Sequence[BatchSink] | None = None,
    batch_size: int | None = None,
    translate: bool = True,
    history: int = 0,
    check_invariants: bool = False,
) -> tuple[RunResult, Machine]:
    """Load ``image`` into a fresh machine and run it to completion.

    This is the standard entry point used by the harness: it wires the
    memory, machine, syscalls and probes together and returns both the run
    statistics and the final machine (whose memory holds the program's
    results, for validation against reference implementations). With
    ``batch_sinks`` the run uses the batched retirement path
    (:meth:`EmulationCore.run_batched`) instead of per-instruction probes.
    ``translate=False`` forces the per-instruction interpreter (the
    differential oracle for the basic-block translation fast path).
    ``history`` keeps that many retired instructions/blocks for
    post-mortem reports; ``check_invariants`` attaches an
    :class:`~repro.sim.invariants.InvariantChecker` probe (which forces
    the interpreter, like any probe).
    """
    if image.isa_name != isa.name:
        raise SimulationError(
            f"image is for {image.isa_name!r}, ISA is {isa.name!r}"
        )
    if batch_sinks is not None and probes:
        raise SimulationError(
            "probes and batch_sinks are mutually exclusive; attach analyses "
            "to one path or the other"
        )
    if check_invariants and batch_sinks is not None:
        raise SimulationError(
            "check_invariants uses the probe path; it cannot combine "
            "with batch_sinks"
        )
    memory = Memory(memory_size)
    load_program(image, memory)
    machine = Machine(isa.name, memory)
    machine.reset_stack()
    machine.pc = image.entry
    if check_invariants:
        from repro.sim.invariants import InvariantChecker

        probes = list(probes) + [InvariantChecker.for_image(image, machine)]
    core = EmulationCore(isa, machine, probes, translate=translate)
    if history:
        core.enable_history(history)
    if batch_sinks is not None:
        result = core.run_batched(
            batch_sinks, batch_size=batch_size,
            max_instructions=max_instructions,
        )
    else:
        result = core.run(max_instructions=max_instructions)
    return result, machine
