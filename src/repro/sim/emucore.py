"""The atomic emulation core.

This is the model the paper uses for every experiment: "the included
emulation core model which executes each instruction atomically to
completion in a single cycle" (§3.1), extended — exactly as the authors
extended SimEng — with per-retired-instruction hooks ("probes") that see the
decoded instruction's sources, destinations and memory addresses.

Decoded instructions are cached by PC (code is not self-modifying), so the
hot loop is: fetch from cache → bump PC → run the pre-bound executor →
notify probes. Profiling-informed, per the HPC-Python guides: everything
per-step is attribute-light local-variable access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.common import DecodeError, SimulationError
from repro.isa.base import DecodedInst, ISA
from repro.loader import LoadedImage, load_program
from repro.sim.machine import Machine
from repro.sim.memory import Memory
from repro.sim.syscalls import handle_syscall


class Probe(Protocol):
    """Analysis hook notified after every retired instruction.

    ``needs_memory`` opts in to per-access address recording (it costs a
    little per load/store, so path-length-only runs skip it). ``on_retire``
    receives the decoded instruction and, when opted in, the live access
    lists (valid only for the duration of the call).
    """

    needs_memory: bool

    def on_retire(
        self,
        inst: DecodedInst,
        reads: Sequence[tuple[int, int]],
        writes: Sequence[tuple[int, int]],
    ) -> None: ...


@dataclass
class RunResult:
    """Outcome of an emulation run."""

    instructions: int
    exit_code: int
    stdout: bytes
    stderr: bytes

    @property
    def cycles(self) -> int:
        """The emulation core retires one instruction per cycle (§3.1)."""
        return self.instructions


_EMPTY: tuple = ()


class EmulationCore:
    """Atomic, one-instruction-per-cycle execution of a loaded image."""

    def __init__(self, isa: ISA, machine: Machine, probes: Sequence[Probe] = ()):
        if isa.name != machine.isa_name:
            raise SimulationError(
                f"ISA {isa.name!r} does not match machine {machine.isa_name!r}"
            )
        self.isa = isa
        self.machine = machine
        self.probes = list(probes)
        self.decode_cache: dict[int, DecodedInst] = {}
        machine.syscall_handler = handle_syscall

    def run(self, max_instructions: int = 500_000_000) -> RunResult:
        """Run until the program exits; raises on budget exhaustion."""
        machine = self.machine
        memory = machine.memory
        cache = self.decode_cache
        decode = self.isa.decode
        probes = self.probes
        needs_memory = any(p.needs_memory for p in probes)
        if needs_memory:
            memory.start_recording()
        reads = memory.reads
        writes = memory.writes

        retired = 0
        try:
            # hot loops: direct dict indexing (hits are the common case by
            # orders of magnitude) and locals for everything touched per step
            if probes:
                on_retire = tuple(p.on_retire for p in probes)
                single = on_retire[0] if len(on_retire) == 1 else None
                while machine.running:
                    pc = machine.pc
                    try:
                        inst = cache[pc]
                    except KeyError:
                        inst = self._decode_at(pc)
                    machine.pc = pc + 4
                    if needs_memory:
                        del reads[:]
                        del writes[:]
                        inst.execute(machine)
                        if single is not None:
                            single(inst, reads, writes)
                        else:
                            for hook in on_retire:
                                hook(inst, reads, writes)
                    else:
                        inst.execute(machine)
                        if single is not None:
                            single(inst, _EMPTY, _EMPTY)
                        else:
                            for hook in on_retire:
                                hook(inst, _EMPTY, _EMPTY)
                    retired += 1
                    if retired >= max_instructions:
                        raise SimulationError(
                            f"instruction budget ({max_instructions}) exhausted",
                            pc=pc,
                        )
            else:
                while machine.running:
                    pc = machine.pc
                    try:
                        inst = cache[pc]
                    except KeyError:
                        inst = self._decode_at(pc)
                    machine.pc = pc + 4
                    inst.execute(machine)
                    retired += 1
                    if retired >= max_instructions:
                        raise SimulationError(
                            f"instruction budget ({max_instructions}) exhausted",
                            pc=pc,
                        )
        finally:
            machine.instret += retired
            if needs_memory:
                memory.stop_recording()

        return RunResult(
            instructions=retired,
            exit_code=machine.exit_code if machine.exit_code is not None else -1,
            stdout=bytes(machine.stdout),
            stderr=bytes(machine.stderr),
        )

    def _decode_at(self, pc: int) -> DecodedInst:
        try:
            word = self.machine.memory.load(pc, 4)
        except SimulationError:
            raise SimulationError("instruction fetch out of bounds", pc=pc) from None
        try:
            inst = self.isa.decode(word, pc)
        except DecodeError as err:
            raise DecodeError(word, pc, f"at pc {pc:#x}: {err}") from None
        self.decode_cache[pc] = inst
        return inst


def run_image(
    image: LoadedImage,
    isa: ISA,
    probes: Sequence[Probe] = (),
    *,
    memory_size: int = 1 << 24,
    max_instructions: int = 500_000_000,
) -> tuple[RunResult, Machine]:
    """Load ``image`` into a fresh machine and run it to completion.

    This is the standard entry point used by the harness: it wires the
    memory, machine, syscalls and probes together and returns both the run
    statistics and the final machine (whose memory holds the program's
    results, for validation against reference implementations).
    """
    if image.isa_name != isa.name:
        raise SimulationError(
            f"image is for {image.isa_name!r}, ISA is {isa.name!r}"
        )
    memory = Memory(memory_size)
    load_program(image, memory)
    machine = Machine(isa.name, memory)
    machine.reset_stack()
    machine.pc = image.entry
    core = EmulationCore(isa, machine, probes)
    result = core.run(max_instructions=max_instructions)
    return result, machine
