"""Core-model configuration: per-instruction-group execution latencies.

§5.1 of the paper: SimEng ships YAML models for Marvell's ThunderX2,
Fujitsu's A64FX and Apple's M1 Firestorm; the authors defined a RISC-V model
"based off of the TX2 microarchitecture and latencies" and used the TX2
latencies for the scaled-critical-path experiment. The yamlite files under
``repro/sim/models/`` mirror that setup:

========================  =====================================================
``tx2.yaml``              ThunderX2-derived AArch64 model (the paper's choice)
``tx2-riscv.yaml``        the TX2-derived RISC-V port (§5.1)
``a64fx.yaml``            A64FX-flavoured latencies (ablation A3)
``m1-firestorm.yaml``     M1-Firestorm-flavoured latencies (ablation A3)
``ideal.yaml``            unit latencies (reduces scaled CP to the plain CP)
========================  =====================================================

Latency values are representative per-group numbers for each
microarchitecture (e.g. TX2: 6-cycle FP add/mul, 23-cycle FP divide), not
per-opcode tables; the scaled-CP analysis only consumes group latencies.
"""

from __future__ import annotations

import hashlib
import importlib.resources
import json
from dataclasses import dataclass, field

from repro import yamlite
from repro.common import ConfigError
from repro.isa.base import GROUP_NAMES, InstructionGroup


@dataclass(frozen=True)
class PipelineParams:
    """Microarchitectural sizes used by the in-order/OoO extension cores."""

    issue_width: int = 2
    rob_size: int = 64
    fetch_width: int = 4
    lsq_size: int = 32


@dataclass(frozen=True)
class CoreModel:
    """A named latency model (plus optional pipeline parameters)."""

    name: str
    isa: str | None
    clock_ghz: float
    latencies: dict[InstructionGroup, int] = field(default_factory=dict)
    pipeline: PipelineParams = field(default_factory=PipelineParams)

    def latency(self, group: InstructionGroup) -> int:
        """Execution latency (cycles) for an instruction group."""
        try:
            return self.latencies[group]
        except KeyError:
            raise ConfigError(
                f"model {self.name!r} has no latency for group {group.name}"
            ) from None

    def fingerprint(self) -> str:
        """Stable content hash of the model (name, ISA, clock, every group
        latency and pipeline parameter). Experiment cache keys embed this,
        so editing a model YAML invalidates every cached result computed
        under it."""
        doc = {
            "name": self.name,
            "isa": self.isa,
            "clock_ghz": self.clock_ghz,
            "latencies": {g.name: self.latencies[g]
                          for g in sorted(self.latencies, key=lambda g: g.name)},
            "pipeline": {
                "issue_width": self.pipeline.issue_width,
                "rob_size": self.pipeline.rob_size,
                "fetch_width": self.pipeline.fetch_width,
                "lsq_size": self.pipeline.lsq_size,
            },
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def scaled(self, factor: float) -> "CoreModel":
        """A copy with every latency scaled by ``factor`` (hypothetical-core
        exploration; latencies stay >= 1)."""
        return CoreModel(
            name=f"{self.name}-x{factor:g}",
            isa=self.isa,
            clock_ghz=self.clock_ghz,
            latencies={
                group: max(1, round(value * factor))
                for group, value in self.latencies.items()
            },
            pipeline=self.pipeline,
        )


def _parse_model(doc: dict, source: str) -> CoreModel:
    if not isinstance(doc, dict):
        raise ConfigError(f"{source}: model file must be a mapping")
    try:
        name = doc["name"]
        raw_latencies = doc["latencies"]
    except KeyError as err:
        raise ConfigError(f"{source}: missing required key {err}") from None
    if not isinstance(raw_latencies, dict):
        raise ConfigError(f"{source}: 'latencies' must be a mapping")

    latencies: dict[InstructionGroup, int] = {}
    for key, value in raw_latencies.items():
        group = GROUP_NAMES.get(str(key))
        if group is None:
            raise ConfigError(f"{source}: unknown instruction group {key!r}")
        if not isinstance(value, int) or value < 1:
            raise ConfigError(f"{source}: latency for {key} must be an int >= 1")
        latencies[group] = value
    missing = [g.name for g in InstructionGroup if g not in latencies]
    if missing:
        raise ConfigError(f"{source}: missing latencies for {missing}")

    pipeline_doc = doc.get("pipeline") or {}
    pipeline = PipelineParams(
        issue_width=pipeline_doc.get("issue_width", 2),
        rob_size=pipeline_doc.get("rob_size", 64),
        fetch_width=pipeline_doc.get("fetch_width", 4),
        lsq_size=pipeline_doc.get("lsq_size", 32),
    )
    return CoreModel(
        name=name,
        isa=doc.get("isa"),
        clock_ghz=float(doc.get("clock_ghz", 2.0)),
        latencies=latencies,
        pipeline=pipeline,
    )


def load_core_model(name_or_path: str) -> CoreModel:
    """Load a core model by bundled name (``"tx2"``) or filesystem path."""
    text: str | None = None
    source = name_or_path
    if name_or_path.endswith((".yaml", ".yml")) and "/" in name_or_path:
        with open(name_or_path, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        resource = importlib.resources.files("repro.sim") / "models" / f"{name_or_path}.yaml"
        if resource.is_file():
            text = resource.read_text(encoding="utf-8")
        else:
            try:
                with open(name_or_path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                raise ConfigError(
                    f"no bundled model or file named {name_or_path!r}; "
                    f"bundled: {available_models()}"
                ) from None
    return _parse_model(yamlite.loads(text), source)


def available_models() -> list[str]:
    """Names of the bundled core models."""
    models_dir = importlib.resources.files("repro.sim") / "models"
    return sorted(
        entry.name[: -len(".yaml")]
        for entry in models_dir.iterdir()
        if entry.name.endswith(".yaml")
    )
