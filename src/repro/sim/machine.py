"""Architectural machine state.

One :class:`Machine` serves both ISAs: 32 integer registers (AArch64 uses
index 31 as SP and models XZR in the decoders), 32 FP registers stored as
Python floats, the PC, the AArch64 NZCV flags, a small CSR file for RISC-V,
and the process-level odds and ends statically linked binaries expect
(stack, brk heap, captured stdout/stderr).
"""

from __future__ import annotations

from repro.common import SimulationError
from repro.sim.memory import Memory

#: Default stack top — grows down, well clear of text (64 KiB) and data (2 MiB).
STACK_TOP = 0xF0_0000
#: Default brk base for the heap.
HEAP_BASE = 0x40_0000

# CSR numbers the simulator recognises.
CSR_FFLAGS = 0x001
CSR_FRM = 0x002
CSR_FCSR = 0x003
CSR_CYCLE = 0xC00
CSR_TIME = 0xC01
CSR_INSTRET = 0xC02


class Machine:
    """Architectural state plus minimal process state for one simulation."""

    __slots__ = (
        "isa_name", "r", "f", "pc", "nzcv", "memory", "reservation",
        "csr_file", "heap_end", "stack_top", "running", "exit_code",
        "stdout", "stderr", "instret", "syscall_handler",
    )

    def __init__(self, isa_name: str, memory: Memory | None = None,
                 stack_top: int = STACK_TOP, heap_base: int = HEAP_BASE):
        self.isa_name = isa_name
        self.memory = memory if memory is not None else Memory()
        # 33 integer slots: 0–30 are X/x registers, 31 is SP (AArch64) or x31
        # (RISC-V), and 32 is the AArch64 decoders' hardwired-zero slot for
        # XZR/WZR (reads yield 0; writes are skipped at decode time).
        self.r: list[int] = [0] * 33
        self.f: list[float] = [0.0] * 32
        self.pc = 0
        self.nzcv = 0          # AArch64 condition flags, bits NZCV = 3..0
        self.reservation: int | None = None  # RISC-V LR/SC reservation
        self.csr_file: dict[int, int] = {CSR_FFLAGS: 0, CSR_FRM: 0, CSR_FCSR: 0}
        self.heap_end = heap_base
        self.stack_top = stack_top
        self.running = True
        self.exit_code: int | None = None
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.instret = 0
        # Set by the core (avoids a circular import); called by SVC/ECALL.
        self.syscall_handler = None

    def reset_stack(self) -> None:
        """Point the stack register at the stack top (SP for AArch64 lives in
        r[31]; RISC-V's sp is x2)."""
        if self.isa_name == "aarch64":
            self.r[31] = self.stack_top
        else:
            self.r[2] = self.stack_top

    def raise_syscall(self) -> None:
        """Invoked by SVC/ECALL executors."""
        if self.syscall_handler is None:
            raise SimulationError("syscall raised but no handler installed", pc=self.pc)
        self.syscall_handler(self)

    # -- CSR file (RISC-V) -------------------------------------------------

    def read_csr(self, csr: int) -> int:
        if csr == CSR_CYCLE or csr == CSR_TIME or csr == CSR_INSTRET:
            return self.instret
        if csr == CSR_FCSR:
            return (self.csr_file[CSR_FRM] << 5) | self.csr_file[CSR_FFLAGS]
        value = self.csr_file.get(csr)
        if value is None:
            raise SimulationError(f"read of unsupported CSR {csr:#x}", pc=self.pc)
        return value

    def write_csr(self, csr: int, value: int) -> None:
        if csr == CSR_FCSR:
            self.csr_file[CSR_FRM] = (value >> 5) & 0x7
            self.csr_file[CSR_FFLAGS] = value & 0x1F
            return
        if csr in (CSR_FFLAGS, CSR_FRM):
            self.csr_file[csr] = value & (0x1F if csr == CSR_FFLAGS else 0x7)
            return
        if csr in (CSR_CYCLE, CSR_TIME, CSR_INSTRET):
            raise SimulationError(f"write to read-only CSR {csr:#x}", pc=self.pc)
        raise SimulationError(f"write to unsupported CSR {csr:#x}", pc=self.pc)

    # -- snapshot support --------------------------------------------------

    def capture_state(self) -> dict:
        """Architectural + process state as a plain serializable dict.

        Everything except ``memory`` (the snapshot layer diffs that
        separately) and ``syscall_handler`` (re-installed by whichever
        core resumes the machine). The restoring side must keep object
        identities intact — see :meth:`apply_state`.
        """
        return {
            "isa_name": self.isa_name,
            "r": list(self.r),
            "f": list(self.f),
            "pc": self.pc,
            "nzcv": self.nzcv,
            "reservation": self.reservation,
            "csr_file": dict(self.csr_file),
            "heap_end": self.heap_end,
            "stack_top": self.stack_top,
            "running": self.running,
            "exit_code": self.exit_code,
            "stdout": bytes(self.stdout),
            "stderr": bytes(self.stderr),
            "instret": self.instret,
        }

    def apply_state(self, doc: dict) -> None:
        """Restore state captured by :meth:`capture_state`, in place.

        ``r``/``f``/``stdout``/``stderr`` are mutated with slice
        assignment, never rebound: compiled block functions close over
        these objects by identity, so rebinding them would silently
        decouple a warm translation cache from the machine.
        """
        if doc["isa_name"] != self.isa_name:
            raise SimulationError(
                f"snapshot is for {doc['isa_name']!r}, "
                f"machine is {self.isa_name!r}")
        self.r[:] = doc["r"]
        self.f[:] = doc["f"]
        self.pc = doc["pc"]
        self.nzcv = doc["nzcv"]
        self.reservation = doc["reservation"]
        self.csr_file.clear()
        self.csr_file.update(doc["csr_file"])
        self.heap_end = doc["heap_end"]
        self.stack_top = doc["stack_top"]
        self.running = doc["running"]
        self.exit_code = doc["exit_code"]
        self.stdout[:] = doc["stdout"]
        self.stderr[:] = doc["stderr"]
        self.instret = doc["instret"]

    # -- debugging helpers ---------------------------------------------------

    def dump_registers(self) -> str:
        """Human-readable register dump (debugging aid)."""
        lines = [f"pc = {self.pc:#x}   nzcv = {self.nzcv:04b}"]
        for i in range(0, 32, 4):
            lines.append(
                "  ".join(f"r{j:<2}= {self.r[j]:#018x}" for j in range(i, i + 4))
            )
        for i in range(0, 32, 4):
            lines.append(
                "  ".join(f"f{j:<2}= {self.f[j]:<24.17g}" for j in range(i, i + 4))
            )
        return "\n".join(lines)
