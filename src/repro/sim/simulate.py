"""One-call simulation with a pipeline model choice.

SimEng selects its core archetype (emulation / in-order / out-of-order)
from the YAML config; this mirrors that convenience over our probe-based
timing models::

    outcome = simulate(image, isa, pipeline="ooo", model="tx2")
    print(outcome.cycles, outcome.ipc)

``pipeline="emulation"`` is the paper's model (1 instruction per cycle);
``"inorder"`` and ``"ooo"`` are the §8-extension timing models layered on
the same architecturally-exact execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common import SimulationError
from repro.isa.base import ISA
from repro.loader import LoadedImage
from repro.sim.config import CoreModel, load_core_model
from repro.sim.emucore import Probe, RunResult, run_image
from repro.sim.inorder import InOrderTimingProbe
from repro.sim.ooo import OoOTimingProbe

PIPELINES = ("emulation", "inorder", "ooo")


@dataclass
class SimulationOutcome:
    """RunResult plus the selected pipeline's timing."""

    run: RunResult
    pipeline: str
    cycles: int
    model: CoreModel | None

    @property
    def instructions(self) -> int:
        return self.run.instructions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def runtime_ms(self, clock_ghz: float | None = None) -> float:
        clock = clock_ghz or (self.model.clock_ghz if self.model else 2.0)
        return self.cycles / (clock * 1e9) * 1e3


def simulate(
    image: LoadedImage,
    isa: ISA,
    *,
    pipeline: str = "emulation",
    model: str | CoreModel | None = None,
    probes: Sequence[Probe] = (),
    max_instructions: int = 500_000_000,
) -> SimulationOutcome:
    """Load and run ``image``, timing it with the chosen pipeline model."""
    if pipeline not in PIPELINES:
        raise SimulationError(
            f"unknown pipeline {pipeline!r}; expected one of {PIPELINES}"
        )
    core_model: CoreModel | None = None
    if model is not None:
        core_model = load_core_model(model) if isinstance(model, str) else model
    if pipeline != "emulation" and core_model is None:
        raise SimulationError(f"pipeline {pipeline!r} needs a core model")

    timing_probe = None
    all_probes = list(probes)
    if pipeline == "inorder":
        timing_probe = InOrderTimingProbe(core_model)
        all_probes.append(timing_probe)
    elif pipeline == "ooo":
        timing_probe = OoOTimingProbe(core_model)
        all_probes.append(timing_probe)

    run, _machine = run_image(image, isa, all_probes,
                              max_instructions=max_instructions)
    if timing_probe is None:
        cycles = run.cycles  # the emulation core: 1 instruction per cycle
    else:
        cycles = timing_probe.result().cycles
    return SimulationOutcome(run=run, pipeline=pipeline, cycles=cycles,
                             model=core_model)
