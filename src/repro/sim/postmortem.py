"""Guest-fault post-mortem capture.

A guest fault — any :class:`SimulationError` or :class:`DecodeError`
raised while the emulation core is executing — used to surface as a bare
one-line exception. This module captures the machine state at the fault
into a structured :class:`GuestFaultReport` and attaches it to the
exception as ``err.fault_report``, so every layer above (the CLI, the
harness's :class:`~repro.harness.executor.PlanFailureReport`, the fuzz
campaign's reproducer files) can render or serialize full diagnostics:

* the faulting PC (back-filled from the core's loop state when the
  raiser did not know it) and, on the translated path, the entry PC of
  the block that was executing (``err.block_pc``);
* the full architectural register file, NZCV and ``instret``;
* the last N retired instructions — exact retirement order on the
  interpreter paths, block granularity on the translated fast path
  (enable with :meth:`EmulationCore.enable_history`; off by default, it
  costs one append per retirement / per block dispatch);
* a disassembly window around the faulting PC (via
  :mod:`repro.tools.objdump`) and, for memory faults, the offending
  access with a surrounding hexdump;
* block-translation statistics (blocks compiled, demotions, ...).

Reports serialize to plain dicts (``to_dict``/``from_dict``) so they
survive the harness's worker pipes and the result cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import DecodeError, SimulationError

#: The exception family that counts as a *guest* fault (a defect in the
#: simulated program or in the simulator's semantics), as opposed to a
#: harness/configuration problem.
GUEST_FAULTS = (SimulationError, DecodeError)

#: Serialization format version (bump on incompatible dict changes).
VERSION = 1

#: Hexdump context bytes shown on each side of a faulting access.
_HEX_CONTEXT = 32


def annotate_pc(err, pc):
    """Back-fill ``err.pc`` (and the message) from loop state.

    The memory layer raises without PC context — it does not know which
    instruction asked. The core's run loops hold the PC of the
    instruction being executed; they call this in their fault handlers
    so the exception always localizes the fault. No-op when the raiser
    already knew its PC.
    """
    if getattr(err, "pc", None) is None and pc is not None:
        err.pc = pc
        if err.args:
            err.args = (f"{err.args[0]} (pc={pc:#x})",) + err.args[1:]


def capture(core, err=None, *, reason=None, pc_hint=None):
    """Snapshot ``core``'s machine state into a :class:`GuestFaultReport`.

    Works both for exceptions (pass ``err``) and for non-exception
    snapshots such as a fuzzing divergence (pass ``reason``).
    """
    machine = core.machine
    pc = pc_hint
    block_pc = None
    access = None
    if err is not None:
        pc = getattr(err, "pc", None) if pc is None else pc
        block_pc = getattr(err, "block_pc", None)
        addr = getattr(err, "addr", None)
        if addr is not None:
            access = {"addr": addr, "size": getattr(err, "size", None)}
    if pc is None and err is None:
        pc = machine.pc

    history, history_kind = _drain_history(core)
    disasm_pc = pc if pc is not None else block_pc
    hexdump = []
    if access is not None:
        hexdump = _hexdump(machine.memory, access["addr"],
                           access["size"] or 1)

    return GuestFaultReport(
        error_type=type(err).__name__ if err is not None else "divergence",
        error=str(err) if err is not None else str(reason or ""),
        isa=machine.isa_name,
        pc=pc,
        block_pc=block_pc,
        instret=machine.instret,
        regs=list(machine.r),
        fregs=list(machine.f),
        nzcv=machine.nzcv,
        history=history,
        history_kind=history_kind,
        disassembly=_disassemble(core, disasm_pc),
        access=access,
        hexdump=hexdump,
        translation=core.translation_stats(),
    )


def attach(core, err, *, pc_hint=None):
    """Attach a fresh :class:`GuestFaultReport` to ``err`` (idempotent:
    the innermost capture — closest to the fault — wins)."""
    if getattr(err, "fault_report", None) is None:
        err.fault_report = capture(core, err, pc_hint=pc_hint)
    return err


def _drain_history(core):
    """Flatten the core's retirement history (DecodedInst on interpreter
    paths, block entries on translated paths) into dict records."""
    history = getattr(core, "history", None)
    if not history:
        return [], "none"
    records = []
    kind = "instruction"
    for item in history:
        if isinstance(item, list):  # a block entry: [4] holds its insts
            kind = "block"
            for inst in item[4]:
                records.append(
                    {"pc": inst.pc, "word": inst.word, "text": inst.text})
        else:
            records.append(
                {"pc": item.pc, "word": item.word, "text": item.text})
    limit = history.maxlen or 64
    return records[-limit:], kind


def _disassemble(core, pc):
    from repro.tools.objdump import disassemble_window

    if pc is None:
        return []
    try:
        return disassemble_window(core.isa, core.machine.memory, pc)
    except Exception:
        return []  # never let diagnostics capture raise over the fault


def _hexdump(memory, addr, size):
    """16-byte-per-row hexdump lines around ``[addr, addr+size)``,
    clamped to memory bounds."""
    start = max(0, (addr - _HEX_CONTEXT) & ~0xF)
    end = min(memory.size, (addr + size + _HEX_CONTEXT + 15) & ~0xF)
    lines = []
    for row in range(start, end, 16):
        chunk = memory.data[row:min(row + 16, memory.size)]
        hexed = " ".join(f"{b:02x}" for b in chunk)
        marker = " <--" if row <= addr < row + 16 else ""
        lines.append(f"{row:#010x}: {hexed}{marker}")
    return lines


@dataclass
class GuestFaultReport:
    """Structured diagnostics for one guest fault. Plain-data throughout
    so it serializes losslessly over worker pipes and into caches."""

    error_type: str
    error: str
    isa: str
    pc: int | None
    block_pc: int | None
    instret: int
    regs: list[int]
    fregs: list[float]
    nzcv: int
    history: list[dict] = field(default_factory=list)
    history_kind: str = "none"
    disassembly: list[dict] = field(default_factory=list)
    access: dict | None = None
    hexdump: list[str] = field(default_factory=list)
    translation: dict | None = None
    version: int = VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "error_type": self.error_type,
            "error": self.error,
            "isa": self.isa,
            "pc": self.pc,
            "block_pc": self.block_pc,
            "instret": self.instret,
            "regs": list(self.regs),
            "fregs": list(self.fregs),
            "nzcv": self.nzcv,
            "history": list(self.history),
            "history_kind": self.history_kind,
            "disassembly": list(self.disassembly),
            "access": self.access,
            "hexdump": list(self.hexdump),
            "translation": self.translation,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "GuestFaultReport":
        return cls(
            error_type=doc.get("error_type", "?"),
            error=doc.get("error", ""),
            isa=doc.get("isa", "?"),
            pc=doc.get("pc"),
            block_pc=doc.get("block_pc"),
            instret=doc.get("instret", 0),
            regs=list(doc.get("regs", [])),
            fregs=list(doc.get("fregs", [])),
            nzcv=doc.get("nzcv", 0),
            history=list(doc.get("history", [])),
            history_kind=doc.get("history_kind", "none"),
            disassembly=list(doc.get("disassembly", [])),
            access=doc.get("access"),
            hexdump=list(doc.get("hexdump", [])),
            translation=doc.get("translation"),
            version=doc.get("version", VERSION),
        )

    def render(self) -> str:
        """Human-readable multi-line rendering (what the CLI prints)."""
        fmt_pc = (f"{self.pc:#x}" if self.pc is not None else "unknown")
        lines = [
            f"guest fault: {self.error_type}: {self.error}",
            f"  isa: {self.isa}   pc: {fmt_pc}   instret: {self.instret}",
        ]
        if self.block_pc is not None:
            lines.append(f"  translated block entry: {self.block_pc:#x}")
        if self.access is not None:
            size = self.access.get("size")
            lines.append(
                f"  faulting access: addr={self.access['addr']:#x}"
                + (f" size={size}" if size is not None else ""))
        lines.append("  registers:")
        for i in range(0, min(len(self.regs), 32), 4):
            row = "  ".join(
                f"r{j:<2}= {self.regs[j]:#018x}"
                for j in range(i, min(i + 4, len(self.regs))))
            lines.append(f"    {row}")
        if len(self.regs) > 32:
            lines.append(f"    zr = {self.regs[32]:#018x}")
        lines.append(f"    nzcv = {self.nzcv:04b}")
        nonzero_f = [(i, v) for i, v in enumerate(self.fregs) if v != 0.0]
        if nonzero_f:
            lines.append("  fp registers (nonzero):")
            for i, v in nonzero_f[:16]:
                lines.append(f"    f{i:<2}= {v!r}")
        if self.history:
            label = ("retired instructions"
                     if self.history_kind == "instruction"
                     else "retired blocks (flattened)")
            lines.append(f"  last {label}:")
            for rec in self.history:
                lines.append(
                    f"    {rec['pc']:x}:  {rec['word']:08x}   {rec['text']}")
        if self.disassembly:
            lines.append("  code around fault:")
            for rec in self.disassembly:
                marker = " <--" if rec["pc"] == self.pc else ""
                lines.append(
                    f"    {rec['pc']:x}:  {rec['word']:08x}   "
                    f"{rec['text']}{marker}")
        if self.hexdump:
            lines.append("  memory around access:")
            for row in self.hexdump:
                lines.append(f"    {row}")
        if self.translation:
            stats = ", ".join(
                f"{k}={v}" for k, v in sorted(self.translation.items()))
            lines.append(f"  translation: {stats}")
        return "\n".join(lines)
