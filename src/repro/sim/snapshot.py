"""Compact, versioned machine snapshots for deterministic sharding.

A :class:`MachineSnapshot` captures one machine at an exact retirement
position: the full architectural/process state from
:meth:`Machine.capture_state` plus the memory pages that differ from the
freshly loaded program image. Diffing against the image baseline keeps
snapshots proportional to the guest's *working set* — a 10M-element
STREAM run dirties its arrays, not the whole 16 MiB address space — and
makes every snapshot self-contained: restoring never needs an earlier
snapshot, so the checkpoint recorder can thin its history by simply
dropping entries.

Restoration is exact and in-place. Compiled block functions (see
:mod:`repro.sim.inline`) bind ``machine.r``, ``machine.f``,
``memory.data`` and the access-log ``append`` methods by *object
identity*, so a restore zeroes memory in place, re-plays the image
segments, applies the page diff, and slice-assigns the register files —
never rebinding any of those objects. A machine restored this way is
byte-identical to one that executed serially to the same retirement
position, which is what makes sharded analysis results byte-identical to
serial ones by construction.

The wire format reuses the cache/trace framing idiom from
:mod:`repro.harness.cache` (PR 4): a fixed header of magic ``RSNP``,
format version, CRC-32 and payload length, followed by a
zlib-compressed pickled document. Corruption or truncation anywhere
raises :class:`SnapshotError` instead of feeding garbage to a shard.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field

from repro.common import SnapshotError
from repro.loader import LoadedImage, load_program
from repro.sim.machine import Machine

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "PAGE_SIZE",
    "MachineSnapshot",
    "CheckpointRecorder",
]

#: Framing magic for serialized snapshots ("Repro SNaPshot").
SNAPSHOT_MAGIC = b"RSNP"
#: Bumped whenever the snapshot document layout changes.
SNAPSHOT_VERSION = 1
#: Diff granularity. 4 KiB balances diff precision against per-page
#: overhead for the statically linked workloads' access patterns.
PAGE_SIZE = 4096

_HEADER = struct.Struct("<4sIIQ")  # magic, version, crc32, payload length


def _zeros(size: int, _cache: dict = {}) -> bytes:
    """A shared all-zero buffer per memory size (restores zero in place)."""
    blob = _cache.get(size)
    if blob is None:
        blob = _cache[size] = bytes(size)
    return blob


@dataclass(frozen=True)
class MachineSnapshot:
    """One machine at an exact retirement position, self-contained.

    ``retired`` is the number of instructions retired since the run
    started — the snapshot's position in the retirement stream, and the
    coordinate the sharding layer partitions on. It equals the captured
    ``instret`` when the snapshot comes from the fast-forward loop
    (which folds retirements in per chunk) but is kept as its own field
    so positions stay well-defined however the machine got here.
    """

    isa_name: str
    retired: int
    memory_size: int
    machine: dict
    pages: dict[int, bytes] = field(repr=False)
    page_size: int = PAGE_SIZE
    version: int = SNAPSHOT_VERSION

    # -- capture / restore -------------------------------------------------

    @classmethod
    def capture(cls, machine: Machine, retired: int,
                baseline: bytes | bytearray,
                page_size: int = PAGE_SIZE) -> "MachineSnapshot":
        """Snapshot ``machine`` against the fresh-image ``baseline``."""
        return cls(
            isa_name=machine.isa_name,
            retired=retired,
            memory_size=machine.memory.size,
            machine=machine.capture_state(),
            pages=machine.memory.diff_pages(baseline, page_size),
            page_size=page_size,
        )

    def restore(self, machine: Machine, image: LoadedImage) -> None:
        """Restore this snapshot into ``machine`` exactly, in place.

        ``image`` must be the same program the snapshot was taken from
        (the page diff is relative to its freshly loaded segments).
        """
        memory = machine.memory
        if memory.size != self.memory_size:
            raise SnapshotError(
                f"snapshot memory size {self.memory_size} != "
                f"machine memory size {memory.size}")
        if machine.isa_name != self.isa_name:
            raise SnapshotError(
                f"snapshot is for {self.isa_name!r}, "
                f"machine is {machine.isa_name!r}")
        memory.data[:] = _zeros(memory.size)
        load_program(image, memory)
        memory.apply_pages(self.pages, self.page_size)
        machine.apply_state(self.machine)

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        doc = {
            "version": self.version,
            "isa_name": self.isa_name,
            "retired": self.retired,
            "memory_size": self.memory_size,
            "machine": self.machine,
            "pages": self.pages,
            "page_size": self.page_size,
        }
        payload = zlib.compress(pickle.dumps(doc, protocol=4), 6)
        return _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
                            zlib.crc32(payload), len(payload)) + payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MachineSnapshot":
        if len(blob) < _HEADER.size:
            raise SnapshotError(
                f"snapshot truncated: {len(blob)} bytes < "
                f"{_HEADER.size}-byte header")
        magic, version, crc, length = _HEADER.unpack_from(blob)
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"bad snapshot magic {magic!r}")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(f"unsupported snapshot version {version}")
        payload = blob[_HEADER.size:]
        if len(payload) != length:
            raise SnapshotError(
                f"snapshot truncated: payload {len(payload)} bytes, "
                f"header claims {length}")
        if zlib.crc32(payload) != crc:
            raise SnapshotError("snapshot CRC mismatch")
        try:
            doc = pickle.loads(zlib.decompress(payload))
        except Exception as err:
            raise SnapshotError(
                f"snapshot payload undecodable: {err}") from err
        return cls(
            isa_name=doc["isa_name"],
            retired=doc["retired"],
            memory_size=doc["memory_size"],
            machine=doc["machine"],
            pages=doc["pages"],
            page_size=doc["page_size"],
            version=doc["version"],
        )


class CheckpointRecorder:
    """Capture a series of self-contained snapshots against one baseline.

    Built once per run from the *freshly loaded* machine (before any
    instruction retires): the constructor copies ``memory.data`` as the
    diff baseline and records checkpoint 0 at ``retired == 0`` so shard
    0 restores through exactly the same code path as every other shard.

    Because snapshots are self-contained, :meth:`thin` halves the
    history by dropping every other snapshot — the adaptive
    fast-forward loop uses this to keep the checkpoint count bounded
    without knowing the run length in advance.
    """

    def __init__(self, machine: Machine, *, page_size: int = PAGE_SIZE):
        self._machine = machine
        self._page_size = page_size
        self._baseline = bytes(machine.memory.data)
        self.snapshots: list[MachineSnapshot] = [
            MachineSnapshot.capture(machine, 0, self._baseline, page_size)]

    def capture(self, retired: int) -> MachineSnapshot:
        """Snapshot the machine at retirement position ``retired``."""
        snap = MachineSnapshot.capture(
            self._machine, retired, self._baseline, self._page_size)
        self.snapshots.append(snap)
        return snap

    def thin(self) -> None:
        """Drop every other snapshot (keeps first; preserves order)."""
        kept = self.snapshots[::2]
        # Never silently lose the newest checkpoint — it bounds the
        # final shard's fast-forward distance.
        if self.snapshots and kept[-1] is not self.snapshots[-1]:
            kept.append(self.snapshots[-1])
        self.snapshots = kept
