"""Parameterized out-of-order core timing model (the paper's §8 plan).

"SimEng provides the capability for simulating OoO superscalar
microarchitectures ... We plan to perform similar analysis through this
simulation, using real-world sizes for OoO resources." This module is that
analysis: a trace-driven OoO timing model with a finite reorder buffer,
finite fetch/issue/commit widths and the core model's execution latencies —
the step past §6's windowed-critical-path proxy.

Model (per retired instruction, O(1)):

* **dispatch**: ``fetch_width`` instructions enter the ROB per cycle, in
  order; instruction *i* cannot dispatch until instruction ``i - rob_size``
  has committed (ROB full);
* **issue**: when all sources are ready and one of ``issue_width``
  universal function units is free (modelled as a scoreboard of unit
  free-times);
* **complete**: ``latency(group)`` cycles after issue (loads use the load
  latency — a flat cache-hit memory, as everywhere in the paper);
* **commit**: in order, ``commit_width`` per cycle;
* branch prediction is perfect (matching §6's windowed analysis, which
  this model refines with real issue/commit constraints).

Memory dependences are honored through the same 8-byte-cell tracking the
critical-path analysis uses (store→load forwarding is implicit: the load's
source cell becomes ready when the store completes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.critpath import mem_cells
from repro.isa.base import NUM_DEP_REGS, DecodedInst, InstructionGroup
from repro.sim.config import CoreModel


@dataclass
class OoOResult:
    cycles: int
    instructions: int
    rob_size: int
    issue_width: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def runtime_ms(self, clock_ghz: float = 2.0) -> float:
        return self.cycles / (clock_ghz * 1e9) * 1e3


class OoOTimingProbe:
    """Attachable OoO timing model (see module docstring)."""

    needs_memory = True

    def __init__(
        self,
        model: CoreModel,
        *,
        rob_size: int | None = None,
        issue_width: int | None = None,
        fetch_width: int | None = None,
        commit_width: int | None = None,
    ):
        pipeline = model.pipeline
        self.model = model
        self.rob_size = rob_size or pipeline.rob_size
        self.issue_width = issue_width or pipeline.issue_width
        self.fetch_width = fetch_width or pipeline.fetch_width
        self.commit_width = commit_width or max(self.issue_width, 2)
        self.latency = [model.latency(g) for g in InstructionGroup]

        self.reg_ready = [0] * NUM_DEP_REGS
        self.mem_ready: dict[int, int] = {}
        # free times of the universal function units (min-heap-ish small list)
        self.units = [0] * self.issue_width
        # commit cycles of the last rob_size instructions
        self.rob_commits: deque[int] = deque()
        self.instructions = 0
        self.last_commit = 0
        self._dispatch_cycle = 0
        self._dispatched_this_cycle = 0
        self._commit_cycle = 0
        self._committed_this_cycle = 0

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        self.instructions += 1

        # -- dispatch ----------------------------------------------------
        dispatch = self._dispatch_cycle
        if self._dispatched_this_cycle >= self.fetch_width:
            dispatch += 1
            self._dispatched_this_cycle = 0
        if len(self.rob_commits) >= self.rob_size:
            rob_free = self.rob_commits.popleft()
            if rob_free > dispatch:
                dispatch = rob_free
                self._dispatched_this_cycle = 0
        if dispatch > self._dispatch_cycle:
            self._dispatch_cycle = dispatch
        self._dispatched_this_cycle += 1

        # -- operand readiness ---------------------------------------------
        ready = dispatch
        for src in inst.srcs:
            value = self.reg_ready[src]
            if value > ready:
                ready = value
        if reads:
            get = self.mem_ready.get
            for addr, size in reads:
                for cell in mem_cells(addr, size):
                    value = get(cell, 0)
                    if value > ready:
                        ready = value

        # -- issue: earliest free universal unit ---------------------------
        units = self.units
        best = 0
        for i in range(1, len(units)):
            if units[i] < units[best]:
                best = i
        issue = ready if ready > units[best] else units[best]
        units[best] = issue + 1  # fully pipelined units

        # -- complete -------------------------------------------------------
        done = issue + self.latency[inst.group]
        for dst in inst.dsts:
            self.reg_ready[dst] = done
        if writes:
            for addr, size in writes:
                for cell in mem_cells(addr, size):
                    self.mem_ready[cell] = done

        # -- commit (in order, commit_width per cycle) ----------------------
        commit = done if done > self._commit_cycle else self._commit_cycle
        if commit == self._commit_cycle:
            if self._committed_this_cycle >= self.commit_width:
                commit += 1
                self._committed_this_cycle = 0
        else:
            self._committed_this_cycle = 0
        self._commit_cycle = commit
        self._committed_this_cycle += 1
        self.rob_commits.append(commit)
        if commit > self.last_commit:
            self.last_commit = commit

    def result(self) -> OoOResult:
        return OoOResult(
            cycles=self.last_commit,
            instructions=self.instructions,
            rob_size=self.rob_size,
            issue_width=self.issue_width,
        )
