"""Flat little-endian simulated memory.

One contiguous ``bytearray`` covers the whole simulated address space
(default 16 MiB — plenty for the statically linked workloads, which place
text at 64 KiB, data at 2 MiB and the stack just below the top). A flat
array keeps loads/stores on the emulation hot path to a couple of slice
operations; per the profiling guidance in the HPC-Python guides, this is
the single hottest data structure in the repository.

When ``start_recording`` has been called, every access appends
``(address, size)`` to the read/write logs — the emulation core drains
these per instruction to feed memory-carried dependence tracking (§4.1 of
the paper tracks critical paths "for each memory address used").
"""

from __future__ import annotations

import struct

from repro.common import SimulationError

_F64 = struct.Struct("<d")
_F32 = struct.Struct("<f")


class Memory:
    """Byte-addressed little-endian memory with optional access recording."""

    __slots__ = ("data", "size", "reads", "writes", "recording")

    def __init__(self, size: int = 1 << 24):
        self.size = size
        self.data = bytearray(size)
        self.reads: list[tuple[int, int]] = []
        self.writes: list[tuple[int, int]] = []
        self.recording = False

    # -- bulk access (loader, result inspection) ------------------------------

    def write_bytes(self, addr: int, blob: bytes) -> None:
        """Bulk write (used by the loader; not recorded)."""
        if addr < 0 or addr + len(blob) > self.size:
            raise SimulationError(
                f"segment [{addr:#x}, {addr + len(blob):#x}) outside memory",
                addr=addr, size=len(blob),
            )
        self.data[addr : addr + len(blob)] = blob

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Bulk read (result inspection; not recorded)."""
        self._check(addr, length)
        return bytes(self.data[addr : addr + length])

    # -- scalar access (instruction semantics) --------------------------------

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        self._check(addr, size)
        if self.recording:
            self.reads.append((addr, size))
        return int.from_bytes(self.data[addr : addr + size], "little", signed=signed)

    def store(self, addr: int, size: int, value: int) -> None:
        self._check(addr, size)
        if self.recording:
            self.writes.append((addr, size))
        try:
            self.data[addr : addr + size] = value.to_bytes(size, "little")
        except OverflowError:
            # out-of-range/negative value: a semantics bug (executors mask
            # to the access width). Report it as a guest fault the
            # post-mortem/fuzzing layers can localize, not a raw
            # OverflowError that crashes the harness.
            raise SimulationError(
                f"store of out-of-range value {value:#x} "
                f"({size}-byte store at {addr:#x})",
                addr=addr, size=size,
            ) from None

    def load_f64(self, addr: int) -> float:
        self._check(addr, 8)
        if self.recording:
            self.reads.append((addr, 8))
        return _F64.unpack_from(self.data, addr)[0]

    def store_f64(self, addr: int, value: float) -> None:
        self._check(addr, 8)
        if self.recording:
            self.writes.append((addr, 8))
        _F64.pack_into(self.data, addr, value)

    def load_f32(self, addr: int) -> float:
        self._check(addr, 4)
        if self.recording:
            self.reads.append((addr, 4))
        return _F32.unpack_from(self.data, addr)[0]

    def store_f32(self, addr: int, value: float) -> None:
        self._check(addr, 4)
        if self.recording:
            self.writes.append((addr, 4))
        _F32.pack_into(self.data, addr, value)

    # -- snapshot support --------------------------------------------------

    def diff_pages(self, shadow: bytearray | bytes,
                   page_size: int = 4096) -> dict[int, bytes]:
        """Pages of ``data`` that differ from ``shadow``, keyed by page index.

        ``shadow`` must cover the same address space. Comparison is
        page-granular: a page with any differing byte is returned whole,
        so applying the result on top of ``shadow`` reproduces ``data``
        exactly. The snapshot layer keeps ``shadow`` at the freshly
        loaded image state, making the diff proportional to the guest's
        working set rather than the 16 MiB address space.
        """
        if len(shadow) != self.size:
            raise SimulationError(
                f"shadow size {len(shadow)} != memory size {self.size}")
        data = self.data
        pages: dict[int, bytes] = {}
        view_d = memoryview(data)
        view_s = memoryview(shadow)
        for off in range(0, self.size, page_size):
            end = min(off + page_size, self.size)
            if view_d[off:end] != view_s[off:end]:
                pages[off // page_size] = bytes(view_d[off:end])
        return pages

    def apply_pages(self, pages: dict[int, bytes],
                    page_size: int = 4096) -> None:
        """Write page diffs produced by :meth:`diff_pages` back in place.

        Mutates ``data`` in place (never rebinds it) — compiled block
        functions hold the bytearray by object identity.
        """
        data = self.data
        for index, blob in pages.items():
            off = index * page_size
            if off < 0 or off + len(blob) > self.size:
                raise SimulationError(
                    f"snapshot page [{off:#x}, +{len(blob)}) outside memory",
                    addr=off, size=len(blob))
            data[off:off + len(blob)] = blob

    # -- recording control -----------------------------------------------

    def start_recording(self) -> None:
        """Begin appending (addr, size) pairs to ``reads``/``writes``."""
        self.recording = True

    def stop_recording(self) -> None:
        self.recording = False
        self.reads.clear()
        self.writes.clear()

    def drain_accesses(self) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Return and clear the pending access logs (core calls this per step).

        Returns the live lists for speed — callers must finish with them
        before the next instruction executes.
        """
        return self.reads, self.writes

    # -- internals -------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise SimulationError(
                f"memory access [{addr:#x}, +{size}) out of bounds",
                addr=addr, size=size,
            )
