"""The Simulation Engine substrate.

This package mirrors the parts of SimEng the paper relies on:

* :mod:`repro.sim.memory` — flat little-endian byte-addressed memory,
* :mod:`repro.sim.machine` — architectural state for either ISA,
* :mod:`repro.sim.syscalls` — the tiny Linux-ABI syscall surface statically
  linked binaries need (exit/write/brk),
* :mod:`repro.sim.emucore` — the atomic emulation core (one instruction per
  cycle, executed to completion) with the probe hooks the paper's modified
  core used for its path-length and critical-path experiments,
* :mod:`repro.sim.blocks` — the basic-block translation layer: decode-once
  superblocks compiled to straight-line Python executors (a QEMU-TCG-style
  fast path over the emulation core; the interpreter stays as its
  differential oracle),
* :mod:`repro.sim.postmortem` / :mod:`repro.sim.invariants` — guest-fault
  diagnostics (structured post-mortem reports attached to exceptions) and
  per-retirement architectural invariant checking (the differential
  fuzzer's oracle),
* :mod:`repro.sim.config` — latency core models (ThunderX2 and the
  TX2-derived RISC-V model of §5.1) parsed from yamlite files,
* :mod:`repro.sim.inorder` / :mod:`repro.sim.ooo` — pipeline models beyond
  the paper (its §8 future work).
"""

from repro.sim.memory import Memory
from repro.sim.machine import Machine
from repro.sim.snapshot import CheckpointRecorder, MachineSnapshot
from repro.sim.blocks import (
    MAX_BLOCK,
    BatchTranslator,
    BlockTranslator,
    fast_forward_translated,
)
from repro.sim.emucore import (
    DEFAULT_BATCH_SIZE,
    BatchSink,
    EmulationCore,
    Probe,
    RunResult,
    run_image,
)
from repro.sim.config import CoreModel, load_core_model, available_models
from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.postmortem import GUEST_FAULTS, GuestFaultReport, capture, attach
from repro.sim.inorder import InOrderResult, InOrderTimingProbe
from repro.sim.ooo import OoOResult, OoOTimingProbe
from repro.sim.trace import Trace, TraceRecorderProbe, TraceWriter, read_trace
from repro.sim.simulate import PIPELINES, SimulationOutcome, simulate

__all__ = [
    "PIPELINES",
    "SimulationOutcome",
    "simulate",
    "Memory",
    "Machine",
    "MachineSnapshot",
    "CheckpointRecorder",
    "fast_forward_translated",
    "MAX_BLOCK",
    "BlockTranslator",
    "BatchTranslator",
    "EmulationCore",
    "Probe",
    "BatchSink",
    "DEFAULT_BATCH_SIZE",
    "RunResult",
    "run_image",
    "GUEST_FAULTS",
    "GuestFaultReport",
    "capture",
    "attach",
    "InvariantChecker",
    "InvariantViolation",
    "CoreModel",
    "load_core_model",
    "available_models",
    "InOrderResult",
    "InOrderTimingProbe",
    "OoOResult",
    "OoOTimingProbe",
    "Trace",
    "TraceRecorderProbe",
    "TraceWriter",
    "read_trace",
]
