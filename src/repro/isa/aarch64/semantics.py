"""AArch64 arithmetic semantics helpers.

Flag-setting arithmetic, operand shifting/extension, and the FP compare
flag mapping. Pure functions over unsigned bit patterns, unit-tested in
isolation (the NZCV corner cases — carry on subtraction, signed overflow —
are exactly where hand-rolled emulators go wrong).
"""

from __future__ import annotations

import math

from repro.common import MASK32, MASK64, s32, s64, sext

# NZCV packed as a 4-bit int: bit3=N, bit2=Z, bit1=C, bit0=V.


def pack_nzcv(n: int, z: int, c: int, v: int) -> int:
    return (n << 3) | (z << 2) | (c << 1) | v


def add_with_flags(a: int, b: int, carry_in: int, is64: bool) -> tuple[int, int]:
    """``a + b + carry`` with NZCV, on 64- or 32-bit operands.

    SUBS is ``add_with_flags(a, ~b, 1)`` — C is then the no-borrow flag,
    matching the architecture.
    """
    mask = MASK64 if is64 else MASK32
    width = 64 if is64 else 32
    a &= mask
    b &= mask
    unsigned_sum = a + b + carry_in
    result = unsigned_sum & mask
    signed_sum = sext(a, width) + sext(b, width) + carry_in
    n = (result >> (width - 1)) & 1
    z = 1 if result == 0 else 0
    c = 1 if unsigned_sum != result else 0
    v = 1 if sext(result, width) != signed_sum else 0
    return result, pack_nzcv(n, z, c, v)


def logic_flags(result: int, is64: bool) -> int:
    """NZCV after a flag-setting logical op (ANDS/BICS): C=V=0."""
    width = 64 if is64 else 32
    n = (result >> (width - 1)) & 1
    z = 1 if result == 0 else 0
    return pack_nzcv(n, z, 0, 0)


def shift_operand(value: int, shift_type: int, amount: int, is64: bool) -> int:
    """Apply an LSL/LSR/ASR/ROR shift to a register operand."""
    mask = MASK64 if is64 else MASK32
    width = 64 if is64 else 32
    value &= mask
    amount %= width if shift_type == 3 else (width + 1)
    if amount == 0:
        return value
    if shift_type == 0:  # LSL
        return (value << amount) & mask
    if shift_type == 1:  # LSR
        return value >> amount
    if shift_type == 2:  # ASR
        return (sext(value, width) >> amount) & mask
    # ROR
    return ((value >> amount) | (value << (width - amount))) & mask


def extend_operand(value: int, option: int, shift: int, is64: bool) -> int:
    """Apply an extended-register transform (UXTB..SXTX) then shift left."""
    mask = MASK64 if is64 else MASK32
    if option == 0:      # UXTB
        value &= 0xFF
    elif option == 1:    # UXTH
        value &= 0xFFFF
    elif option == 2:    # UXTW
        value &= MASK32
    elif option == 3:    # UXTX / LSL
        value &= MASK64
    elif option == 4:    # SXTB
        value = sext(value, 8) & MASK64
    elif option == 5:    # SXTH
        value = sext(value, 16) & MASK64
    elif option == 6:    # SXTW
        value = sext(value, 32) & MASK64
    else:                # SXTX
        value &= MASK64
    return (value << shift) & mask


def fp_compare_flags(a: float, b: float) -> int:
    """NZCV from an FP comparison (FCMP): unordered→0011, <→1000, =→0110,
    >→0010."""
    if math.isnan(a) or math.isnan(b):
        return pack_nzcv(0, 0, 1, 1)
    if a < b:
        return pack_nzcv(1, 0, 0, 0)
    if a == b:
        return pack_nzcv(0, 1, 1, 0)
    return pack_nzcv(0, 0, 1, 0)


def fcvt_to_int(value: float, signed: bool, width: int) -> int:
    """FCVTZS/FCVTZU: truncate toward zero with saturation; NaN → 0."""
    if math.isnan(value):
        return 0
    if signed:
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    else:
        lo, hi = 0, (1 << width) - 1
    if math.isinf(value):
        result = hi if value > 0 else lo
    else:
        result = max(lo, min(hi, math.trunc(value)))
    return result & ((1 << width) - 1)


def count_leading_sign_bits(value: int, width: int) -> int:
    """CLS: number of consecutive bits equal to the sign bit, minus one."""
    sign = (value >> (width - 1)) & 1
    count = 0
    for i in range(width - 2, -1, -1):
        if (value >> i) & 1 == sign:
            count += 1
        else:
            break
    return count


def round_f32(value: float) -> float:
    """Round a double to float32 precision (shared with the RISC-V side)."""
    from repro.isa.riscv.semantics import round_f32 as _impl

    return _impl(value)


def s_width(is64: bool):
    """Signed-view helper selected by operand width."""
    return s64 if is64 else s32
