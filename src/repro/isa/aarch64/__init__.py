"""Scalar AArch64 (Armv8-a ``+nosimd``) instruction set implementation.

The paper compiles with ``-march=armv8-a+nosimd``, so this package covers
the A64 scalar integer and scalar floating-point instruction classes, plus
exactly one NEON instruction — ``movi dN, #0`` — which the paper notes
cannot be eliminated from statically linked binaries (it is how toolchains
zero FP registers).
"""

from repro.isa.aarch64.isa import AArch64

__all__ = ["AArch64"]
