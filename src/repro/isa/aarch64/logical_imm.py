"""AArch64 logical (bitmask) immediate encoding.

AND/ORR/EOR-immediate encode their constant as ``(N, immr, imms)``: a run of
``s+1`` ones inside an element of width 2/4/8/16/32/64, rotated right by
``r`` and replicated across the register. Encoding an arbitrary constant —
deciding whether it *is* such a pattern — is the classic fiddly algorithm
reimplemented here; decode is mechanical. Round-trip correctness is covered
by hypothesis property tests.
"""

from __future__ import annotations

from repro.common import EncodingError, MASK32, MASK64, replicate, rotate_right64

_ELEMENT_SIZES = (2, 4, 8, 16, 32, 64)


def decode_bitmask_immediate(n: int, immr: int, imms: int, width: int) -> int:
    """Decode an ``(N, immr, imms)`` triple to its ``width``-bit constant.

    Raises :class:`EncodingError` for reserved encodings (e.g. all-ones
    element), mirroring the architecture's UNDEFINED cases.
    """
    if width not in (32, 64):
        raise EncodingError("width must be 32 or 64")
    if n == 1 and width == 32:
        raise EncodingError("N=1 is reserved for 32-bit logical immediates")

    combined = (n << 6) | ((~imms) & 0x3F)
    length = combined.bit_length() - 1
    if length < 1:
        raise EncodingError(f"reserved bitmask immediate N={n} imms={imms:#x}")
    esize = 1 << length
    if esize > width:
        raise EncodingError("element size exceeds register width")

    levels = esize - 1
    s = imms & levels
    r = immr & levels
    if s == levels:
        raise EncodingError("all-ones element is a reserved bitmask immediate")

    welem = (1 << (s + 1)) - 1
    # rotate the element right by r within esize
    r %= esize
    if r:
        welem = ((welem >> r) | (welem << (esize - r))) & ((1 << esize) - 1)
    return replicate(welem, esize, width)


def encode_bitmask_immediate(value: int, width: int) -> tuple[int, int, int]:
    """Encode ``value`` as ``(N, immr, imms)``, or raise if not encodable.

    Not every constant is a bitmask immediate — 0 and all-ones never are.
    """
    if width not in (32, 64):
        raise EncodingError("width must be 32 or 64")
    mask = MASK64 if width == 64 else MASK32
    value &= mask
    if value == 0 or value == mask:
        raise EncodingError(f"{value:#x} is not a valid bitmask immediate")

    for esize in _ELEMENT_SIZES:
        if esize > width:
            break
        emask = (1 << esize) - 1
        element = value & emask
        # the element must replicate exactly across the width
        if replicate(element, esize, width) != value:
            continue
        # element must be a rotated run of ones: find rotation that makes it
        # a contiguous low run.
        ones_count = element.bit_count()
        if ones_count == 0 or ones_count == esize:
            continue
        for rotation in range(esize):
            rotated = ((element << rotation) | (element >> (esize - rotation))) & emask
            if rotated == (1 << ones_count) - 1:
                s = ones_count - 1
                r = rotation % esize
                if esize == 64:
                    n, imms_high = 1, 0
                else:
                    n = 0
                    imms_high = (~(esize * 2 - 1)) & 0x3F
                imms = (imms_high | s) & 0x3F
                # sanity: decode must round-trip (cheap, done once per encode)
                assert decode_bitmask_immediate(n, r, imms, width) == value
                return n, r, imms
        # element replicates but is not a rotated run: not encodable at any
        # larger esize either (larger elements contain this one)
        break
    raise EncodingError(f"{value:#x} is not a valid bitmask immediate")


def is_bitmask_immediate(value: int, width: int) -> bool:
    """True if ``value`` can be encoded as a logical immediate."""
    try:
        encode_bitmask_immediate(value, width)
        return True
    except EncodingError:
        return False
