"""Shared helpers for the A64 decoder modules.

Register-field convention: executors index ``machine.r``, which has 33
slots — 0–30 are X0–X30, 31 is SP, and 32 is a hardwired-zero slot standing
in for XZR/WZR (reads of slot 32 yield 0; closures simply skip writes to
it). The helpers below map a 5-bit register field to the right slot
depending on whether the instruction treats field 31 as SP or as the zero
register, and produce the matching dependency ids (SP participates in
dependence chains; XZR never does, per §4.1).
"""

from __future__ import annotations

from repro.isa.base import DEP_FP_BASE

#: machine.r slot of the hardwired zero register.
ZR_SLOT = 32
SP_SLOT = 31


def gp_slot(field: int, sp: bool) -> int:
    """Map a 5-bit register field to a machine.r slot."""
    if field == 31:
        return SP_SLOT if sp else ZR_SLOT
    return field


def gp_deps(*slots: int) -> tuple[int, ...]:
    """Dep ids for GP slots (drops the zero slot)."""
    return tuple(s for s in slots if s != ZR_SLOT)


def fp_deps(*regs: int) -> tuple[int, ...]:
    return tuple(DEP_FP_BASE + r for r in regs)


def gp_text(slot: int, is64: bool, sp: bool = False) -> str:
    """Disassembly name for a machine.r slot."""
    if slot == ZR_SLOT:
        return "xzr" if is64 else "wzr"
    if slot == SP_SLOT:
        return "sp" if is64 else "wsp"
    return f"{'x' if is64 else 'w'}{slot}"


def fp_text(reg: int, is_double: bool) -> str:
    return f"{'d' if is_double else 's'}{reg}"
