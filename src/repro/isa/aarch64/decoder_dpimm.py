"""A64 decoder: data-processing (immediate) class — bits 28:26 = 100.

Covers PC-relative addressing (ADR/ADRP), add/subtract immediate, logical
immediate, move wide, bitfield and extract.
"""

from __future__ import annotations

from repro.common import DecodeError, MASK32, MASK64, bits, sext
from repro.isa.base import DEP_NZCV, DecodedInst, InstructionGroup
from repro.isa.aarch64 import semantics as sem
from repro.isa.aarch64.decoder_util import ZR_SLOT, gp_deps, gp_slot, gp_text
from repro.isa.aarch64.logical_imm import decode_bitmask_immediate

_G = InstructionGroup


def decode_dp_imm(word: int, pc: int) -> DecodedInst:
    op0 = bits(word, 25, 23)
    if op0 in (0b000, 0b001):
        return _decode_adr(word, pc)
    if op0 in (0b010, 0b011):
        return _decode_add_sub_imm(word, pc)
    if op0 == 0b100:
        return _decode_logical_imm(word, pc)
    if op0 == 0b101:
        return _decode_move_wide(word, pc)
    if op0 == 0b110:
        return _decode_bitfield(word, pc)
    if op0 == 0b111:
        return _decode_extract(word, pc)
    raise DecodeError(word, pc)


def _decode_adr(word: int, pc: int) -> DecodedInst:
    is_page = bits(word, 31, 31)
    rd = gp_slot(word & 0x1F, sp=False)
    imm = sext((bits(word, 23, 5) << 2) | bits(word, 30, 29), 21)
    if is_page:
        value = ((pc >> 12) + imm) << 12 & MASK64
        mnemonic = "adrp"
    else:
        value = (pc + imm) & MASK64
        mnemonic = "adr"
    if rd == ZR_SLOT:
        def execute(m):
            pass
    else:
        def execute(m, rd=rd, value=value):
            m.r[rd] = value
    return DecodedInst(
        pc, word, mnemonic, f"{mnemonic} {gp_text(rd, True)},{value:#x}",
        _G.INT_SIMPLE, (), gp_deps(rd), execute,
    )


def _decode_add_sub_imm(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    op = bits(word, 30, 30)       # 0=add 1=sub
    set_flags = bits(word, 29, 29)
    shift12 = bits(word, 22, 22)
    imm = bits(word, 21, 10) << (12 if shift12 else 0)
    rn = gp_slot(bits(word, 9, 5), sp=True)
    rd = gp_slot(word & 0x1F, sp=not set_flags)
    is64 = bool(sf)
    mask = MASK64 if is64 else MASK32

    if set_flags:
        operand_b = (~imm) & mask if op else imm
        carry = 1 if op else 0
        if rd == ZR_SLOT:
            def execute(m, rn=rn, b=operand_b, carry=carry, is64=is64):
                _res, m.nzcv = sem.add_with_flags(m.r[rn], b, carry, is64)
        else:
            def execute(m, rd=rd, rn=rn, b=operand_b, carry=carry, is64=is64):
                result, m.nzcv = sem.add_with_flags(m.r[rn], b, carry, is64)
                m.r[rd] = result
        mnemonic = "subs" if op else "adds"
        dsts = gp_deps(rd) + (DEP_NZCV,)
    else:
        mnemonic = "sub" if op else "add"
        dsts = gp_deps(rd)
        if rd == ZR_SLOT:
            def execute(m):
                pass
        elif op:
            def execute(m, rd=rd, rn=rn, imm=imm, mask=mask):
                m.r[rd] = (m.r[rn] - imm) & mask
        else:
            def execute(m, rd=rd, rn=rn, imm=imm, mask=mask):
                m.r[rd] = (m.r[rn] + imm) & mask

    if mnemonic == "subs" and rd == ZR_SLOT:
        text = f"cmp {gp_text(rn, is64, sp=True)},#{imm}"
    elif mnemonic == "adds" and rd == ZR_SLOT:
        text = f"cmn {gp_text(rn, is64, sp=True)},#{imm}"
    else:
        text = (
            f"{mnemonic} {gp_text(rd, is64, sp=not set_flags)},"
            f"{gp_text(rn, is64, sp=True)},#{imm}"
        )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, gp_deps(rn), dsts, execute,
    )


def _decode_logical_imm(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    opc = bits(word, 30, 29)
    n = bits(word, 22, 22)
    immr = bits(word, 21, 16)
    imms = bits(word, 15, 10)
    is64 = bool(sf)
    width = 64 if is64 else 32
    try:
        imm = decode_bitmask_immediate(n, immr, imms, width)
    except Exception:
        raise DecodeError(word, pc) from None
    rn = gp_slot(bits(word, 9, 5), sp=False)
    set_flags = opc == 0b11
    rd = gp_slot(word & 0x1F, sp=not set_flags)

    if opc == 0b00 or opc == 0b11:
        mnemonic = "ands" if set_flags else "and"
        def combine(a, b):
            return a & b
    elif opc == 0b01:
        mnemonic = "orr"
        def combine(a, b):
            return a | b
    else:
        mnemonic = "eor"
        def combine(a, b):
            return a ^ b

    mask = MASK64 if is64 else MASK32
    if set_flags:
        if rd == ZR_SLOT:
            def execute(m, rn=rn, imm=imm, is64=is64):
                m.nzcv = sem.logic_flags(m.r[rn] & imm & (MASK64 if is64 else MASK32), is64)
        else:
            def execute(m, rd=rd, rn=rn, imm=imm, is64=is64, mask=mask):
                result = m.r[rn] & imm & mask
                m.nzcv = sem.logic_flags(result, is64)
                m.r[rd] = result
        dsts = gp_deps(rd) + (DEP_NZCV,)
        if rd == ZR_SLOT:
            text = f"tst {gp_text(rn, is64)},#{imm:#x}"
        else:
            text = f"ands {gp_text(rd, is64)},{gp_text(rn, is64)},#{imm:#x}"
    else:
        dsts = gp_deps(rd)
        if rd == ZR_SLOT:
            def execute(m):
                pass
        else:
            def execute(m, rd=rd, rn=rn, imm=imm, mask=mask, combine=combine):
                m.r[rd] = combine(m.r[rn], imm) & mask
        text = (
            f"{mnemonic} {gp_text(rd, is64, sp=True)},{gp_text(rn, is64)},#{imm:#x}"
        )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, gp_deps(rn), dsts, execute,
    )


def _decode_move_wide(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    opc = bits(word, 30, 29)
    hw = bits(word, 22, 21)
    imm16 = bits(word, 20, 5)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    mask = MASK64 if is64 else MASK32
    shift = hw * 16

    if opc == 0b00:      # MOVN
        mnemonic = "movn"
        value = (~(imm16 << shift)) & mask
        if rd == ZR_SLOT:
            def execute(m):
                pass
        else:
            def execute(m, rd=rd, value=value):
                m.r[rd] = value
        srcs: tuple[int, ...] = ()
    elif opc == 0b10:    # MOVZ
        mnemonic = "movz"
        value = (imm16 << shift) & mask
        if rd == ZR_SLOT:
            def execute(m):
                pass
        else:
            def execute(m, rd=rd, value=value):
                m.r[rd] = value
        srcs = ()
    elif opc == 0b11:    # MOVK — keeps other bits: reads rd
        mnemonic = "movk"
        keep_mask = mask & ~(0xFFFF << shift)
        part = imm16 << shift
        if rd == ZR_SLOT:
            def execute(m):
                pass
        else:
            def execute(m, rd=rd, keep_mask=keep_mask, part=part):
                m.r[rd] = (m.r[rd] & keep_mask) | part
        srcs = gp_deps(rd)
    else:
        raise DecodeError(word, pc)
    text = f"{mnemonic} {gp_text(rd, is64)},#{imm16}"
    if hw:
        text += f", lsl #{shift}"
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, srcs, gp_deps(rd), execute,
    )


def _bitfield_execute(opc: int, rd: int, rn: int, immr: int, imms: int, is64: bool):
    """SBFM (opc 0) / BFM (1) / UBFM (2) semantics."""
    width = 64 if is64 else 32
    mask = MASK64 if is64 else MASK32
    r, s = immr, imms
    if s >= r:
        # extract bits s..r to the bottom
        field_width = s - r + 1
        def extract_field(src):
            return (src >> r) & ((1 << field_width) - 1)
        position = 0
    else:
        # insert bits s..0 at position width - r
        field_width = s + 1
        position = width - r
        def extract_field(src):
            return (src & ((1 << field_width) - 1))

    top_bit = position + field_width - 1

    if opc == 2:  # UBFM
        def execute(m, rd=rd, rn=rn):
            m.r[rd] = (extract_field(m.r[rn]) << position) & mask
    elif opc == 0:  # SBFM: sign-extend from the top of the field
        def execute(m, rd=rd, rn=rn):
            value = extract_field(m.r[rn]) << position
            if value & (1 << top_bit):
                value |= mask & ~((1 << (top_bit + 1)) - 1)
            m.r[rd] = value & mask
    else:  # BFM: insert into existing rd
        field_mask = ((1 << field_width) - 1) << position
        def execute(m, rd=rd, rn=rn):
            inserted = (extract_field(m.r[rn]) << position) & field_mask
            m.r[rd] = (m.r[rd] & ~field_mask & mask) | inserted
    if rd == ZR_SLOT:
        def execute(m):
            pass
    return execute


def _bitfield_alias(opc: int, immr: int, imms: int, is64: bool) -> str:
    """Friendly mnemonic for common SBFM/UBFM aliases."""
    width = 64 if is64 else 32
    if opc == 2:  # UBFM
        if imms + 1 == immr:
            return f"lsl #{width - immr}"
        if imms == width - 1:
            return f"lsr #{immr}"
        if immr == 0 and imms == 7:
            return "uxtb"
        if immr == 0 and imms == 15:
            return "uxth"
    if opc == 0:  # SBFM
        if imms == width - 1:
            return f"asr #{immr}"
        if immr == 0 and imms == 7:
            return "sxtb"
        if immr == 0 and imms == 15:
            return "sxth"
        if immr == 0 and imms == 31:
            return "sxtw"
    return ""


def _decode_bitfield(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    opc = bits(word, 30, 29)
    n = bits(word, 22, 22)
    if opc == 0b11 or n != sf:
        raise DecodeError(word, pc)
    immr = bits(word, 21, 16)
    imms = bits(word, 15, 10)
    is64 = bool(sf)
    if not is64 and (immr >= 32 or imms >= 32):
        raise DecodeError(word, pc)  # UNDEFINED for 32-bit forms
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    execute = _bitfield_execute(opc, rd, rn, immr, imms, is64)
    mnemonic = {0: "sbfm", 1: "bfm", 2: "ubfm"}[opc]
    alias = _bitfield_alias(opc, immr, imms, is64)
    text = f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},#{immr},#{imms}"
    if alias:
        text += f"  // {alias}"
    srcs = gp_deps(rn) if opc != 1 else gp_deps(rn, rd)
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, srcs, gp_deps(rd), execute,
    )


def _decode_extract(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    imms = bits(word, 15, 10)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    width = 64 if is64 else 32
    mask = MASK64 if is64 else MASK32
    if imms >= width:
        raise DecodeError(word, pc)

    if rd == ZR_SLOT:
        def execute(m):
            pass
    else:
        def execute(m, rd=rd, rn=rn, rm=rm, imms=imms, width=width, mask=mask):
            combined = (m.r[rn] << width) | m.r[rm]
            m.r[rd] = (combined >> imms) & mask
    text = f"extr {gp_text(rd, is64)},{gp_text(rn, is64)},{gp_text(rm, is64)},#{imms}"
    return DecodedInst(
        pc, word, "extr", text, _G.INT_SIMPLE, gp_deps(rn, rm), gp_deps(rd), execute,
    )
