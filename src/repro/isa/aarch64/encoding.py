"""A64 instruction-word encoders.

Pure functions from operand fields to 32-bit words, used by the assembler.
The decoder (:mod:`repro.isa.aarch64.decoder`) extracts the same fields back
out; round-trips are property-tested.

Field layouts follow the Arm ARM (DDI 0487) instruction classes:
data-processing immediate/register, branches, loads/stores, scalar FP.
"""

from __future__ import annotations

from repro.common import EncodingError, bits_to_f64, f64_to_bits, fits_signed

# shift types for shifted-register operands
SHIFT_LSL, SHIFT_LSR, SHIFT_ASR, SHIFT_ROR = 0, 1, 2, 3
SHIFT_NAMES = ["lsl", "lsr", "asr", "ror"]

# extend options for extended-register operands and register-offset loads
EXT_UXTB, EXT_UXTH, EXT_UXTW, EXT_UXTX = 0, 1, 2, 3
EXT_SXTB, EXT_SXTH, EXT_SXTW, EXT_SXTX = 4, 5, 6, 7
EXTEND_NAMES = ["uxtb", "uxth", "uxtw", "uxtx", "sxtb", "sxth", "sxtw", "sxtx"]


def _check_reg(value: int, name: str = "register") -> int:
    if not 0 <= value <= 31:
        raise EncodingError(f"{name} field {value} out of range")
    return value


def add_sub_imm(sf: int, op: int, set_flags: int, rd: int, rn: int,
                imm12: int, shift12: bool) -> int:
    """ADD/SUB (immediate): optionally LSL #12 shifted 12-bit immediate."""
    if not 0 <= imm12 < (1 << 12):
        raise EncodingError(f"add/sub immediate {imm12} out of 12-bit range")
    return (
        (sf << 31) | (op << 30) | (set_flags << 29) | (0b100010 << 23)
        | ((1 if shift12 else 0) << 22) | (imm12 << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def logical_imm(sf: int, opc: int, rd: int, rn: int, n: int, immr: int, imms: int) -> int:
    """AND/ORR/EOR/ANDS (immediate) with a pre-encoded bitmask immediate."""
    return (
        (sf << 31) | (opc << 29) | (0b100100 << 23) | (n << 22)
        | (immr << 16) | (imms << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def move_wide(sf: int, opc: int, rd: int, imm16: int, hw: int) -> int:
    """MOVN (opc=0) / MOVZ (opc=2) / MOVK (opc=3)."""
    if not 0 <= imm16 < (1 << 16):
        raise EncodingError(f"move-wide immediate {imm16} out of 16-bit range")
    max_hw = 3 if sf else 1
    if not 0 <= hw <= max_hw:
        raise EncodingError(f"move-wide shift hw={hw} invalid for sf={sf}")
    return (
        (sf << 31) | (opc << 29) | (0b100101 << 23) | (hw << 21)
        | (imm16 << 5) | _check_reg(rd)
    )


def adr(op: int, rd: int, imm21: int) -> int:
    """ADR (op=0) / ADRP (op=1) with a signed 21-bit offset."""
    if not fits_signed(imm21, 21):
        raise EncodingError(f"adr offset {imm21} out of 21-bit range")
    imm21 &= (1 << 21) - 1
    immlo = imm21 & 0x3
    immhi = imm21 >> 2
    return (op << 31) | (immlo << 29) | (0b10000 << 24) | (immhi << 5) | _check_reg(rd)


def bitfield(sf: int, opc: int, rd: int, rn: int, immr: int, imms: int) -> int:
    """SBFM (opc=0) / BFM (opc=1) / UBFM (opc=2)."""
    n = sf
    return (
        (sf << 31) | (opc << 29) | (0b100110 << 23) | (n << 22)
        | (immr << 16) | (imms << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def extract(sf: int, rd: int, rn: int, rm: int, imms: int) -> int:
    """EXTR (the ROR-immediate alias uses rn == rm)."""
    return (
        (sf << 31) | (0b00100111 << 23) | (sf << 22) | (_check_reg(rm) << 16)
        | (imms << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def logical_shifted(sf: int, opc: int, neg: int, rd: int, rn: int, rm: int,
                    shift_type: int, amount: int) -> int:
    """AND/ORR/EOR/ANDS (opc 0..3) shifted register; neg selects BIC/ORN/EON."""
    limit = 64 if sf else 32
    if not 0 <= amount < limit:
        raise EncodingError(f"shift amount {amount} out of range")
    return (
        (sf << 31) | (opc << 29) | (0b01010 << 24) | (shift_type << 22)
        | (neg << 21) | (_check_reg(rm) << 16) | (amount << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def add_sub_shifted(sf: int, op: int, set_flags: int, rd: int, rn: int, rm: int,
                    shift_type: int, amount: int) -> int:
    """ADD/SUB(S) (shifted register). ROR shift is not architecturally valid."""
    if shift_type == SHIFT_ROR:
        raise EncodingError("ROR shift invalid for add/sub")
    limit = 64 if sf else 32
    if not 0 <= amount < limit:
        raise EncodingError(f"shift amount {amount} out of range")
    return (
        (sf << 31) | (op << 30) | (set_flags << 29) | (0b01011 << 24)
        | (shift_type << 22) | (_check_reg(rm) << 16) | (amount << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def add_sub_extended(sf: int, op: int, set_flags: int, rd: int, rn: int, rm: int,
                     option: int, shift: int) -> int:
    """ADD/SUB(S) (extended register); shift is 0–4."""
    if not 0 <= shift <= 4:
        raise EncodingError(f"extended-register shift {shift} out of 0..4")
    return (
        (sf << 31) | (op << 30) | (set_flags << 29) | (0b01011001 << 21)
        | (_check_reg(rm) << 16) | (option << 13) | (shift << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def cond_select(sf: int, op: int, op2: int, rd: int, rn: int, rm: int, cond: int) -> int:
    """CSEL (op=0,op2=0) / CSINC (0,1) / CSINV (1,0) / CSNEG (1,1)."""
    return (
        (sf << 31) | (op << 30) | (0b11010100 << 21) | (_check_reg(rm) << 16)
        | (cond << 12) | (op2 << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def dp3(sf: int, op31: int, o0: int, rd: int, rn: int, rm: int, ra: int) -> int:
    """Three-source: MADD/MSUB (op31=0), SMULH (2), UMULH (6)."""
    return (
        (sf << 31) | (0b0011011 << 24) | (op31 << 21) | (_check_reg(rm) << 16)
        | (o0 << 15) | (_check_reg(ra) << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def dp2(sf: int, opcode: int, rd: int, rn: int, rm: int) -> int:
    """Two-source: UDIV (opcode=2), SDIV (3), LSLV (8), LSRV (9), ASRV (10),
    RORV (11)."""
    return (
        (sf << 31) | (0b0011010110 << 21) | (_check_reg(rm) << 16)
        | (opcode << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def dp1(sf: int, opcode: int, rd: int, rn: int) -> int:
    """One-source: RBIT (0), REV16 (1), REV32 (2), REV (3), CLZ (4), CLS (5)."""
    return (
        (sf << 31) | (0b1011010110 << 21) | (opcode << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def branch_imm(op: int, offset: int) -> int:
    """B (op=0) / BL (op=1) with byte offset."""
    if offset % 4:
        raise EncodingError(f"branch offset {offset} not word aligned")
    imm26 = offset >> 2
    if not fits_signed(imm26, 26):
        raise EncodingError(f"branch offset {offset} out of range")
    return (op << 31) | (0b00101 << 26) | (imm26 & ((1 << 26) - 1))


def branch_cond(cond: int, offset: int) -> int:
    """B.cond with byte offset."""
    if offset % 4:
        raise EncodingError(f"branch offset {offset} not word aligned")
    imm19 = offset >> 2
    if not fits_signed(imm19, 19):
        raise EncodingError(f"conditional branch offset {offset} out of range")
    return (0b01010100 << 24) | ((imm19 & ((1 << 19) - 1)) << 5) | cond


def compare_branch(sf: int, op: int, rt: int, offset: int) -> int:
    """CBZ (op=0) / CBNZ (op=1)."""
    if offset % 4:
        raise EncodingError(f"branch offset {offset} not word aligned")
    imm19 = offset >> 2
    if not fits_signed(imm19, 19):
        raise EncodingError(f"cbz/cbnz offset {offset} out of range")
    return (
        (sf << 31) | (0b011010 << 25) | (op << 24)
        | ((imm19 & ((1 << 19) - 1)) << 5) | _check_reg(rt)
    )


def test_branch(op: int, rt: int, bit_pos: int, offset: int) -> int:
    """TBZ (op=0) / TBNZ (op=1) testing ``bit_pos`` of rt."""
    if not 0 <= bit_pos <= 63:
        raise EncodingError(f"tbz bit position {bit_pos} out of range")
    if offset % 4:
        raise EncodingError(f"branch offset {offset} not word aligned")
    imm14 = offset >> 2
    if not fits_signed(imm14, 14):
        raise EncodingError(f"tbz/tbnz offset {offset} out of range")
    b5 = bit_pos >> 5
    b40 = bit_pos & 0x1F
    return (
        (b5 << 31) | (0b011011 << 25) | (op << 24) | (b40 << 19)
        | ((imm14 & ((1 << 14) - 1)) << 5) | _check_reg(rt)
    )


def branch_reg(opc: int, rn: int) -> int:
    """BR (opc=0) / BLR (opc=1) / RET (opc=2)."""
    return (0b1101011 << 25) | (opc << 21) | (0b11111 << 16) | (_check_reg(rn) << 5)


def load_store_unsigned(size: int, v: int, opc: int, rt: int, rn: int, imm12: int) -> int:
    """LDR/STR (unsigned scaled immediate offset)."""
    if not 0 <= imm12 < (1 << 12):
        raise EncodingError(f"scaled offset field {imm12} out of 12-bit range")
    return (
        (size << 30) | (0b111 << 27) | (v << 26) | (0b01 << 24) | (opc << 22)
        | (imm12 << 10) | (_check_reg(rn) << 5) | _check_reg(rt)
    )


def load_store_unscaled(size: int, v: int, opc: int, rt: int, rn: int,
                        imm9: int, mode: int) -> int:
    """LDUR/STUR (mode=0), post-index (mode=1), pre-index (mode=3)."""
    if not fits_signed(imm9, 9):
        raise EncodingError(f"unscaled offset {imm9} out of 9-bit range")
    return (
        (size << 30) | (0b111 << 27) | (v << 26) | (opc << 22)
        | ((imm9 & 0x1FF) << 12) | (mode << 10) | (_check_reg(rn) << 5)
        | _check_reg(rt)
    )


def load_store_reg_offset(size: int, v: int, opc: int, rt: int, rn: int, rm: int,
                          option: int, s: int) -> int:
    """LDR/STR (register offset with extend/shift)."""
    if option not in (EXT_UXTW, EXT_UXTX, EXT_SXTW, EXT_SXTX):
        raise EncodingError(f"invalid register-offset extend option {option}")
    return (
        (size << 30) | (0b111 << 27) | (v << 26) | (opc << 22) | (1 << 21)
        | (_check_reg(rm) << 16) | (option << 13) | (s << 12) | (0b10 << 10)
        | (_check_reg(rn) << 5) | _check_reg(rt)
    )


def load_store_pair(opc: int, v: int, mode: int, load: int, rt: int, rt2: int,
                    rn: int, imm7: int) -> int:
    """LDP/STP. mode: 1=post-index, 2=signed offset, 3=pre-index."""
    if not fits_signed(imm7, 7):
        raise EncodingError(f"pair offset field {imm7} out of 7-bit range")
    return (
        (opc << 30) | (0b101 << 27) | (v << 26) | (mode << 23) | (load << 22)
        | ((imm7 & 0x7F) << 15) | (_check_reg(rt2) << 10) | (_check_reg(rn) << 5)
        | _check_reg(rt)
    )


def fp_dp2(ftype: int, opcode: int, rd: int, rn: int, rm: int) -> int:
    """Scalar FP two-source: FMUL 0, FDIV 1, FADD 2, FSUB 3, FMAX 4, FMIN 5,
    FMAXNM 6, FMINNM 7, FNMUL 8. ftype: 0=S, 1=D."""
    return (
        (0b00011110 << 24) | (ftype << 22) | (1 << 21) | (_check_reg(rm) << 16)
        | (opcode << 12) | (0b10 << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def fp_dp1(ftype: int, opcode: int, rd: int, rn: int) -> int:
    """Scalar FP one-source: FMOV 0, FABS 1, FNEG 2, FSQRT 3, FCVT (4|dst)."""
    return (
        (0b00011110 << 24) | (ftype << 22) | (1 << 21) | (opcode << 15)
        | (0b10000 << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def fp_compare(ftype: int, rn: int, rm: int, opcode2: int) -> int:
    """FCMP/FCMPE; opcode2: 0=FCMP, 8=FCMP #0.0, 16=FCMPE, 24=FCMPE #0.0."""
    return (
        (0b00011110 << 24) | (ftype << 22) | (1 << 21) | (_check_reg(rm) << 16)
        | (0b001000 << 10) | (_check_reg(rn) << 5) | opcode2
    )


def fp_csel(ftype: int, rd: int, rn: int, rm: int, cond: int) -> int:
    """FCSEL."""
    return (
        (0b00011110 << 24) | (ftype << 22) | (1 << 21) | (_check_reg(rm) << 16)
        | (cond << 12) | (0b11 << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def fp_imm(ftype: int, rd: int, imm8: int) -> int:
    """FMOV (scalar, immediate)."""
    return (
        (0b00011110 << 24) | (ftype << 22) | (1 << 21) | (imm8 << 13)
        | (0b100 << 10) | _check_reg(rd)
    )


def fp_int(sf: int, ftype: int, rmode: int, opcode: int, rd: int, rn: int) -> int:
    """FP<->integer: FCVTZS (rmode=3,opc=0), FCVTZU (3,1), SCVTF (0,2),
    UCVTF (0,3), FMOV to-gp (0,6), FMOV from-gp (0,7)."""
    return (
        (sf << 31) | (0b0011110 << 24) | (ftype << 22) | (1 << 21)
        | (rmode << 19) | (opcode << 16) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def fp_dp3(ftype: int, o1: int, o0: int, rd: int, rn: int, rm: int, ra: int) -> int:
    """FMADD (o1=0,o0=0) / FMSUB (0,1) / FNMADD (1,0) / FNMSUB (1,1)."""
    return (
        (0b00011111 << 24) | (ftype << 22) | (o1 << 21) | (_check_reg(rm) << 16)
        | (o0 << 15) | (_check_reg(ra) << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


#: The single permitted NEON instruction: ``movi dN, #0`` (see package doc).
MOVI_D_ZERO_BASE = 0x2F00E400


def movi_d_zero(rd: int) -> int:
    return MOVI_D_ZERO_BASE | _check_reg(rd)


def svc(imm16: int) -> int:
    if not 0 <= imm16 < (1 << 16):
        raise EncodingError(f"svc immediate {imm16} out of range")
    return 0xD4000001 | (imm16 << 5)


NOP = 0xD503201F


# --- FMOV immediate expansion -------------------------------------------------

def vfp_expand_imm8(imm8: int) -> float:
    """Expand an FMOV 8-bit immediate to its double value (VFPExpandImm)."""
    if not 0 <= imm8 < 256:
        raise EncodingError(f"imm8 {imm8} out of range")
    a = (imm8 >> 7) & 1
    b = (imm8 >> 6) & 1
    cd = (imm8 >> 4) & 3
    efgh = imm8 & 0xF
    exp_field = ((1 - b) << 10) | ((0xFF if b else 0) << 2) | cd
    frac = efgh << 48
    pattern = (a << 63) | (exp_field << 52) | frac
    return bits_to_f64(pattern)


def vfp_encode_imm8(value: float) -> int:
    """Encode a double as an FMOV imm8, or raise if not representable."""
    pattern = f64_to_bits(value)
    a = (pattern >> 63) & 1
    exp_field = (pattern >> 52) & 0x7FF
    frac = pattern & ((1 << 52) - 1)
    if frac & ((1 << 48) - 1):
        raise EncodingError(f"{value!r} not an FMOV immediate (mantissa)")
    efgh = frac >> 48
    top = (exp_field >> 10) & 1
    mid = (exp_field >> 2) & 0xFF
    cd = exp_field & 3
    if top == 0 and mid == 0xFF:
        b = 1
    elif top == 1 and mid == 0:
        b = 0
    else:
        raise EncodingError(f"{value!r} not an FMOV immediate (exponent)")
    imm8 = (a << 7) | (b << 6) | (cd << 4) | efgh
    assert vfp_expand_imm8(imm8) == value
    return imm8
