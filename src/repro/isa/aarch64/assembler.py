"""A64 instruction encoder: one parsed assembly line → machine words.

Accepts standard GNU-style A64 syntax (``ldr d1, [x22, x0, lsl #3]``,
``b.ne label``, ``cmp x0, x20``, ...) including the common aliases (mov,
cmp, cmn, tst, neg, mvn, lsl/lsr/asr/ror immediate, cset/cinc/cneg,
ubfx/sbfx/ubfiz/sbfiz, mul/mneg) and two multi-instruction pseudos of our
own for the compiler back-end:

* ``movl xd, #imm64`` — materialize an arbitrary 64-bit constant
  (MOVZ/MOVN + up to three MOVK),
* ``adrl xd, symbol`` — ADRP + ADD :lo12:, always 8 bytes.
"""

from __future__ import annotations

from typing import Sequence

from repro.common import AssemblerError, EncodingError, MASK64, fits_signed, u64
from repro.isa.base import AssemblyContext
from repro.isa.aarch64 import encoding as enc
from repro.isa.aarch64.logical_imm import encode_bitmask_immediate
from repro.isa.aarch64.registers import (
    SP,
    ZR,
    parse_condition,
    parse_fp_reg,
    parse_gp_reg,
)

_SHIFT_TYPES = {"lsl": 0, "lsr": 1, "asr": 2, "ror": 3}
_EXTEND_OPTIONS = {name: i for i, name in enumerate(enc.EXTEND_NAMES)}


def parse_immediate(token: str) -> int:
    """Parse ``#imm`` or a bare integer literal (decimal/hex, signed)."""
    text = token.strip()
    if text.startswith("#"):
        text = text[1:].strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"invalid immediate {token!r}") from None


def _imm_or_label(token: str, ctx: AssemblyContext) -> int:
    token = token.strip()
    try:
        return parse_immediate(token)
    except AssemblerError:
        return ctx.lookup(token)


def _field(reg: int) -> int:
    """Map a parsed register (index / SP / ZR) to its 5-bit encoding field."""
    return 31 if reg in (SP, ZR) else reg


class _Shift:
    __slots__ = ("kind", "amount")

    def __init__(self, kind: int, amount: int):
        self.kind = kind
        self.amount = amount


class _Extend:
    __slots__ = ("option", "amount", "explicit_amount")

    def __init__(self, option: int, amount: int, explicit_amount: bool):
        self.option = option
        self.amount = amount
        self.explicit_amount = explicit_amount


def _parse_modifier(token: str):
    """Parse a trailing operand like ``lsl #3`` or ``sxtw`` / ``sxtw #2``."""
    parts = token.strip().split()
    name = parts[0].lower()
    amount = parse_immediate(parts[1]) if len(parts) > 1 else 0
    if name in _SHIFT_TYPES:
        if name == "lsl" and len(parts) == 1:
            # bare "lsl" only appears as an extend alias in memory operands
            return _Extend(enc.EXT_UXTX, 0, False)
        return _Shift(_SHIFT_TYPES[name], amount)
    if name in _EXTEND_OPTIONS:
        return _Extend(_EXTEND_OPTIONS[name], amount, len(parts) > 1)
    raise AssemblerError(f"unknown shift/extend {token!r}")


class _MemOperand:
    """A parsed ``[...]`` operand (plus pre/post index information)."""

    __slots__ = ("base", "offset_imm", "offset_reg", "offset_reg_is64",
                 "extend", "pre_index", "post_index")

    def __init__(self):
        self.base = 0
        self.offset_imm: int | None = None
        self.offset_reg: int | None = None
        self.offset_reg_is64 = True
        self.extend: _Extend | None = None
        self.pre_index = False
        self.post_index = False


def _parse_mem(token: str, post_imm: str | None = None) -> _MemOperand:
    token = token.strip()
    mem = _MemOperand()
    if token.endswith("!"):
        mem.pre_index = True
        token = token[:-1].strip()
    if not (token.startswith("[") and token.endswith("]")):
        raise AssemblerError(f"expected memory operand, got {token!r}")
    inner = token[1:-1]
    parts = [p.strip() for p in inner.split(",")]
    if not parts or not parts[0]:
        raise AssemblerError(f"empty memory operand {token!r}")
    base, base_is64, _sp = parse_gp_reg(parts[0])
    if not base_is64:
        raise AssemblerError(f"memory base must be an X register or sp: {token!r}")
    if base == ZR:
        raise AssemblerError("xzr cannot be a memory base")
    mem.base = base
    if len(parts) == 1:
        mem.offset_imm = 0
    elif parts[1].startswith("#") or parts[1].lstrip("+-").isdigit():
        mem.offset_imm = parse_immediate(parts[1])
        if len(parts) > 2:
            raise AssemblerError(f"unexpected extra operand in {token!r}")
    else:
        reg, is64, sp_slot = parse_gp_reg(parts[1])
        if sp_slot and reg == SP:
            raise AssemblerError("sp cannot be a memory index")
        mem.offset_reg = reg
        mem.offset_reg_is64 = is64
        if len(parts) > 2:
            modifier = _parse_modifier(parts[2])
            if isinstance(modifier, _Shift):
                if modifier.kind != 0:
                    raise AssemblerError("only lsl is valid in memory operands")
                modifier = _Extend(enc.EXT_UXTX, modifier.amount, True)
            mem.extend = modifier
        else:
            mem.extend = _Extend(
                enc.EXT_UXTX if is64 else enc.EXT_UXTW, 0, False
            )
    if post_imm is not None:
        if mem.offset_imm not in (0, None) or mem.offset_reg is not None:
            raise AssemblerError("post-index base must be plain [Xn]")
        mem.post_index = True
        mem.offset_imm = parse_immediate(post_imm)
    return mem


def movl_expansion(value: int) -> list[tuple[int, int]]:
    """Chunks for materializing ``value``: list of (opc, hw) MOVZ/MOVN/MOVK.

    Returns [(first_opc, hw, imm16), ...] encoded as tuples
    (opc, hw, imm16); first element is MOVZ (2) or MOVN (0), rest MOVK (3).
    """
    value = u64(value)
    chunks = [(value >> (16 * i)) & 0xFFFF for i in range(4)]
    zero_count = sum(1 for c in chunks if c == 0)
    ones_count = sum(1 for c in chunks if c == 0xFFFF)
    steps: list[tuple[int, int, int]] = []
    if ones_count > zero_count:
        # start from MOVN (all-ones value: a single MOVN #0)
        first = next((i for i, c in enumerate(chunks) if c != 0xFFFF), 0)
        steps.append((0b00, first, (~chunks[first]) & 0xFFFF))
        for i in range(4):
            if i != first and chunks[i] != 0xFFFF:
                steps.append((0b11, i, chunks[i]))
    else:
        first = next((i for i, c in enumerate(chunks) if c != 0), 0)
        steps.append((0b10, first, chunks[first]))
        for i in range(4):
            if i != first and chunks[i] != 0:
                steps.append((0b11, i, chunks[i]))
    return steps


def instruction_size(mnemonic: str, operands: Sequence[str]) -> int:
    """Byte size after pseudo expansion (exact; see the RISC-V counterpart)."""
    name = mnemonic.lower()
    if name == "movl":
        if len(operands) != 2:
            raise AssemblerError("movl expects 2 operands")
        return 4 * len(movl_expansion(parse_immediate(operands[1])))
    if name == "adrl":
        return 8
    return 4


def _try_mov_imm(rd: int, is64: bool, value: int) -> int | None:
    """Single-instruction mov-immediate if one exists (MOVZ/MOVN/ORR-imm)."""
    sf = 1 if is64 else 0
    mask = MASK64 if is64 else 0xFFFF_FFFF
    value &= mask
    hw_range = 4 if is64 else 2
    for hw in range(hw_range):
        if value == ((value >> (16 * hw)) & 0xFFFF) << (16 * hw):
            return enc.move_wide(sf, 0b10, _field(rd), (value >> (16 * hw)) & 0xFFFF, hw)
    inverted = (~value) & mask
    for hw in range(hw_range):
        if inverted == ((inverted >> (16 * hw)) & 0xFFFF) << (16 * hw):
            return enc.move_wide(sf, 0b00, _field(rd), (inverted >> (16 * hw)) & 0xFFFF, hw)
    try:
        n, immr, imms = encode_bitmask_immediate(value, 64 if is64 else 32)
        return enc.logical_imm(sf, 0b01, _field(rd), 31, n, immr, imms)
    except EncodingError:
        return None


# mnemonic tables ------------------------------------------------------------

_ADDSUB = {"add": (0, 0), "adds": (0, 1), "sub": (1, 0), "subs": (1, 1)}
_LOGICAL_SHIFTED = {
    "and": (0b00, 0), "bic": (0b00, 1), "orr": (0b01, 0), "orn": (0b01, 1),
    "eor": (0b10, 0), "eon": (0b10, 1), "ands": (0b11, 0), "bics": (0b11, 1),
}
_LOGICAL_IMM_OPC = {"and": 0b00, "orr": 0b01, "eor": 0b10, "ands": 0b11}
_CSEL = {"csel": (0, 0), "csinc": (0, 1), "csinv": (1, 0), "csneg": (1, 1)}
_DP2 = {"udiv": 0b000010, "sdiv": 0b000011, "lslv": 0b001000, "lsrv": 0b001001,
        "asrv": 0b001010, "rorv": 0b001011}
_DP1 = {"rbit": 0, "rev16": 1, "clz": 4, "cls": 5}
_FP2 = {"fmul": 0, "fdiv": 1, "fadd": 2, "fsub": 3, "fmax": 4, "fmin": 5,
        "fmaxnm": 6, "fminnm": 7, "fnmul": 8}
_FP1 = {"fmov": 0, "fabs": 1, "fneg": 2, "fsqrt": 3}
_FP3 = {"fmadd": (0, 0), "fmsub": (0, 1), "fnmadd": (1, 0), "fnmsub": (1, 1)}
_LDST_INT = {
    # name -> (size, opc_load) ; stores use opc 0
    "ldr": (None, 0b01), "str": (None, 0b00),
    "ldrb": (0, 0b01), "strb": (0, 0b00),
    "ldrh": (1, 0b01), "strh": (1, 0b00),
    "ldrsb": (0, 0b10), "ldrsh": (1, 0b10), "ldrsw": (2, 0b10),
}


def encode_instruction(
    mnemonic: str, operands: Sequence[str], ctx: AssemblyContext
) -> list[int]:
    name = mnemonic.lower()
    ops = [o.strip() for o in operands]
    pc = ctx.pc

    def expect(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(f"{name} expects {n} operands, got {len(ops)}")

    # ---- pseudos ------------------------------------------------------------
    if name == "nop":
        return [enc.NOP]
    if name == "movl":
        expect(2)
        rd, is64, _sp = parse_gp_reg(ops[0])
        value = parse_immediate(ops[1])
        words = []
        for opc, hw, imm16 in movl_expansion(value):
            words.append(enc.move_wide(1 if is64 else 0, opc, _field(rd), imm16, hw))
        return words
    if name == "adrl":
        expect(2)
        rd, is64, _sp = parse_gp_reg(ops[0])
        if not is64:
            raise AssemblerError("adrl needs an X register")
        target = ctx.lookup(ops[1])
        page_delta = (target >> 12) - (pc >> 12)
        lo12 = target & 0xFFF
        words = [enc.adr(1, _field(rd), page_delta)]
        words.append(enc.add_sub_imm(1, 0, 0, _field(rd), _field(rd), lo12, False))
        return words
    if name == "mov":
        expect(2)
        rd, rd64, rd_sp = parse_gp_reg(ops[0])
        if ops[1].startswith("#") or ops[1].lstrip("+-").isdigit():
            value = parse_immediate(ops[1])
            word = _try_mov_imm(rd, rd64, value)
            if word is None:
                raise AssemblerError(
                    f"mov immediate {value:#x} not encodable; use movl"
                )
            return [word]
        rm, rm64, rm_sp = parse_gp_reg(ops[1])
        if rd64 != rm64:
            raise AssemblerError("mov operands must be the same width")
        sf = 1 if rd64 else 0
        if (rd_sp and rd == SP) or (rm_sp and rm == SP):
            # mov to/from sp is an ADD #0 alias
            return [enc.add_sub_imm(sf, 0, 0, _field(rd), _field(rm), 0, False)]
        return [enc.logical_shifted(sf, 0b01, 0, _field(rd), 31, _field(rm), 0, 0)]
    if name == "mvn":
        expect(2)
        rd, is64, _ = parse_gp_reg(ops[0])
        rm, _, _ = parse_gp_reg(ops[1])
        sf = 1 if is64 else 0
        return [enc.logical_shifted(sf, 0b01, 1, _field(rd), 31, _field(rm), 0, 0)]
    if name in ("neg", "negs"):
        expect(2)
        rd, is64, _ = parse_gp_reg(ops[0])
        rm, _, _ = parse_gp_reg(ops[1])
        sf = 1 if is64 else 0
        return [enc.add_sub_shifted(sf, 1, 1 if name == "negs" else 0,
                                    _field(rd), 31, _field(rm), 0, 0)]
    if name in ("cmp", "cmn"):
        op = 1 if name == "cmp" else 0
        rn, is64, rn_sp = parse_gp_reg(ops[0])
        sf = 1 if is64 else 0
        if len(ops) == 2 and (ops[1].startswith("#") or ops[1].lstrip("+-").isdigit()):
            imm = parse_immediate(ops[1])
            if 0 <= imm < (1 << 12):
                return [enc.add_sub_imm(sf, op, 1, 31, _field(rn), imm, False)]
            if imm % (1 << 12) == 0 and 0 <= (imm >> 12) < (1 << 12):
                return [enc.add_sub_imm(sf, op, 1, 31, _field(rn), imm >> 12, True)]
            raise AssemblerError(f"cmp immediate {imm} not encodable")
        rm, _, _ = parse_gp_reg(ops[1])
        shift = _parse_modifier(ops[2]) if len(ops) == 3 else _Shift(0, 0)
        if not isinstance(shift, _Shift):
            raise AssemblerError("cmp only takes a shift modifier")
        return [enc.add_sub_shifted(sf, op, 1, 31, _field(rn), _field(rm),
                                    shift.kind, shift.amount)]
    if name == "tst":
        rn, is64, _ = parse_gp_reg(ops[0])
        sf = 1 if is64 else 0
        if ops[1].startswith("#") or ops[1].lstrip("+-").isdigit():
            value = parse_immediate(ops[1])
            n, immr, imms = encode_bitmask_immediate(value, 64 if is64 else 32)
            return [enc.logical_imm(sf, 0b11, 31, _field(rn), n, immr, imms)]
        rm, _, _ = parse_gp_reg(ops[1])
        return [enc.logical_shifted(sf, 0b11, 0, 31, _field(rn), _field(rm), 0, 0)]
    if name in ("cset", "csetm"):
        expect(2)
        rd, is64, _ = parse_gp_reg(ops[0])
        cond = parse_condition(ops[1]) ^ 1
        sf = 1 if is64 else 0
        op, op2 = (0, 1) if name == "cset" else (1, 0)
        return [enc.cond_select(sf, op, op2, _field(rd), 31, 31, cond)]
    if name in ("cinc", "cneg", "cinv"):
        expect(3)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        cond = parse_condition(ops[2]) ^ 1
        sf = 1 if is64 else 0
        op, op2 = {"cinc": (0, 1), "cinv": (1, 0), "cneg": (1, 1)}[name]
        return [enc.cond_select(sf, op, op2, _field(rd), _field(rn), _field(rn), cond)]
    if name in ("lsl", "lsr", "asr", "ror") and len(ops) == 3 and (
        ops[2].startswith("#") or ops[2].lstrip("+-").isdigit()
    ):
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        sh = parse_immediate(ops[2])
        sf = 1 if is64 else 0
        width = 64 if is64 else 32
        if not 0 <= sh < width:
            raise AssemblerError(f"shift {sh} out of range")
        if name == "lsl":
            immr = (width - sh) % width
            imms = width - 1 - sh
            return [enc.bitfield(sf, 0b10, _field(rd), _field(rn), immr, imms)]
        if name == "lsr":
            return [enc.bitfield(sf, 0b10, _field(rd), _field(rn), sh, width - 1)]
        if name == "asr":
            return [enc.bitfield(sf, 0b00, _field(rd), _field(rn), sh, width - 1)]
        rn2, _, _ = parse_gp_reg(ops[1])
        return [enc.extract(sf, _field(rd), _field(rn), _field(rn2), sh)]
    if name in ("lsl", "lsr", "asr", "ror") and len(ops) == 3:
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        sf = 1 if is64 else 0
        opcode = _DP2[name + "v"]
        return [enc.dp2(sf, opcode, _field(rd), _field(rn), _field(rm))]
    if name in ("sxtb", "sxth", "sxtw", "uxtb", "uxth"):
        expect(2)
        rd, rd64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        imms = {"b": 7, "h": 15, "w": 31}[name[-1]]
        signed = name.startswith("s")
        sf = 1 if (rd64 and signed) else 0
        if name == "sxtw" and not rd64:
            raise AssemblerError("sxtw destination must be an X register")
        opc = 0b00 if signed else 0b10
        return [enc.bitfield(sf, opc, _field(rd), _field(rn), 0, imms)]
    if name in ("ubfx", "sbfx", "ubfiz", "sbfiz", "bfi", "bfxil"):
        expect(4)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        lsb = parse_immediate(ops[2])
        width_f = parse_immediate(ops[3])
        sf = 1 if is64 else 0
        regw = 64 if is64 else 32
        if name in ("ubfx", "sbfx"):
            immr, imms = lsb, lsb + width_f - 1
            opc = 0b10 if name == "ubfx" else 0b00
        elif name in ("ubfiz", "sbfiz"):
            immr, imms = (regw - lsb) % regw, width_f - 1
            opc = 0b10 if name == "ubfiz" else 0b00
        elif name == "bfi":
            immr, imms = (regw - lsb) % regw, width_f - 1
            opc = 0b01
        else:  # bfxil
            immr, imms = lsb, lsb + width_f - 1
            opc = 0b01
        return [enc.bitfield(sf, opc, _field(rd), _field(rn), immr, imms)]
    if name in ("mul", "mneg"):
        expect(3)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        sf = 1 if is64 else 0
        o0 = 0 if name == "mul" else 1
        return [enc.dp3(sf, 0, o0, _field(rd), _field(rn), _field(rm), 31)]

    # ---- real instructions --------------------------------------------------
    if name in _ADDSUB:
        op, set_flags = _ADDSUB[name]
        rd, rd64, rd_sp = parse_gp_reg(ops[0])
        rn, rn64, rn_sp = parse_gp_reg(ops[1])
        sf = 1 if rd64 else 0
        if len(ops) >= 3 and (ops[2].startswith("#") or ops[2].lstrip("+-").isdigit()):
            imm = parse_immediate(ops[2])
            shift12 = False
            if len(ops) == 4:
                modifier = _parse_modifier(ops[3])
                if not isinstance(modifier, _Shift) or modifier.kind != 0 or modifier.amount != 12:
                    raise AssemblerError("only 'lsl #12' allowed on add/sub imm")
                shift12 = True
            if imm < 0:
                op, imm = 1 - op, -imm
            if imm >= (1 << 12) and not shift12 and imm % (1 << 12) == 0 and (imm >> 12) < (1 << 12):
                imm >>= 12
                shift12 = True
            return [enc.add_sub_imm(sf, op, set_flags, _field(rd), _field(rn),
                                    imm, shift12)]
        rm, rm64, _ = parse_gp_reg(ops[2])
        modifier = _parse_modifier(ops[3]) if len(ops) == 4 else None
        needs_extended = (
            isinstance(modifier, _Extend)
            or (rn_sp and rn == SP) or (rd_sp and rd == SP)
            or (rd64 and not rm64)
        )
        if needs_extended:
            if isinstance(modifier, _Extend):
                option, amount = modifier.option, modifier.amount
            elif modifier is None:
                option, amount = (3 if rm64 else 2), 0
            else:
                if modifier.kind != 0:
                    raise AssemblerError("extended add/sub only allows lsl")
                option, amount = 3, modifier.amount
            return [enc.add_sub_extended(sf, op, set_flags, _field(rd), _field(rn),
                                         _field(rm), option, amount)]
        if modifier is None:
            kind, amount = 0, 0
        else:
            kind, amount = modifier.kind, modifier.amount
        return [enc.add_sub_shifted(sf, op, set_flags, _field(rd), _field(rn),
                                    _field(rm), kind, amount)]

    if name in _LOGICAL_SHIFTED:
        opc, neg = _LOGICAL_SHIFTED[name]
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        sf = 1 if is64 else 0
        if ops[2].startswith("#") or ops[2].lstrip("+-").isdigit():
            if neg or name not in _LOGICAL_IMM_OPC:
                raise AssemblerError(f"{name} has no immediate form")
            value = parse_immediate(ops[2])
            n, immr, imms = encode_bitmask_immediate(value, 64 if is64 else 32)
            return [enc.logical_imm(sf, _LOGICAL_IMM_OPC[name], _field(rd),
                                    _field(rn), n, immr, imms)]
        rm, _, _ = parse_gp_reg(ops[2])
        modifier = _parse_modifier(ops[3]) if len(ops) == 4 else _Shift(0, 0)
        if not isinstance(modifier, _Shift):
            raise AssemblerError("logical ops only take shift modifiers")
        return [enc.logical_shifted(sf, opc, neg, _field(rd), _field(rn),
                                    _field(rm), modifier.kind, modifier.amount)]

    if name in ("movz", "movn", "movk"):
        rd, is64, _ = parse_gp_reg(ops[0])
        imm = parse_immediate(ops[1])
        hw = 0
        if len(ops) == 3:
            modifier = _parse_modifier(ops[2])
            if not isinstance(modifier, _Shift) or modifier.kind != 0 or modifier.amount % 16:
                raise AssemblerError("move-wide shift must be lsl #0/16/32/48")
            hw = modifier.amount // 16
        opc = {"movn": 0b00, "movz": 0b10, "movk": 0b11}[name]
        return [enc.move_wide(1 if is64 else 0, opc, _field(rd), imm, hw)]

    if name in ("adr", "adrp"):
        expect(2)
        rd, _, _ = parse_gp_reg(ops[0])
        target = _imm_or_label(ops[1], ctx)
        if name == "adr":
            return [enc.adr(0, _field(rd), target - pc)]
        return [enc.adr(1, _field(rd), (target >> 12) - (pc >> 12))]

    if name in ("sbfm", "bfm", "ubfm"):
        expect(4)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        opc = {"sbfm": 0b00, "bfm": 0b01, "ubfm": 0b10}[name]
        return [enc.bitfield(1 if is64 else 0, opc, _field(rd), _field(rn),
                             parse_immediate(ops[2]), parse_immediate(ops[3]))]

    if name == "extr":
        expect(4)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        return [enc.extract(1 if is64 else 0, _field(rd), _field(rn), _field(rm),
                            parse_immediate(ops[3]))]

    if name in _CSEL:
        expect(4)
        op, op2 = _CSEL[name]
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        cond = parse_condition(ops[3])
        return [enc.cond_select(1 if is64 else 0, op, op2, _field(rd), _field(rn),
                                _field(rm), cond)]

    if name in _DP2:
        expect(3)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        return [enc.dp2(1 if is64 else 0, _DP2[name], _field(rd), _field(rn),
                        _field(rm))]

    if name in _DP1 or name in ("rev", "rev32"):
        expect(2)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        sf = 1 if is64 else 0
        if name == "rev":
            opcode = 0b11 if is64 else 0b10
        elif name == "rev32":
            if not is64:
                raise AssemblerError("rev32 needs X registers")
            opcode = 0b10
        else:
            opcode = _DP1[name]
        return [enc.dp1(sf, opcode, _field(rd), _field(rn))]

    if name in ("madd", "msub"):
        expect(4)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        ra, _, _ = parse_gp_reg(ops[3])
        o0 = 0 if name == "madd" else 1
        return [enc.dp3(1 if is64 else 0, 0, o0, _field(rd), _field(rn),
                        _field(rm), _field(ra))]
    if name in ("smulh", "umulh"):
        expect(3)
        rd, _, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        op31 = 0b010 if name == "smulh" else 0b110
        return [enc.dp3(1, op31, 0, _field(rd), _field(rn), _field(rm), 31)]
    if name in ("smaddl", "smsubl", "umaddl", "umsubl", "smull", "umull"):
        rd, _, _ = parse_gp_reg(ops[0])
        rn, _, _ = parse_gp_reg(ops[1])
        rm, _, _ = parse_gp_reg(ops[2])
        if name in ("smull", "umull"):
            expect(3)
            ra = 31
            o0 = 0
        else:
            expect(4)
            ra_reg, _, _ = parse_gp_reg(ops[3])
            ra = _field(ra_reg)
            o0 = 0 if name.endswith("addl") else 1
        op31 = 0b001 if name.startswith("s") else 0b101
        return [enc.dp3(1, op31, o0, _field(rd), _field(rn), _field(rm), ra)]

    # branches
    if name == "b" or name == "bl":
        expect(1)
        target = _imm_or_label(ops[0], ctx)
        return [enc.branch_imm(1 if name == "bl" else 0, target - pc)]
    if name.startswith("b.") and len(name) <= 5:
        expect(1)
        cond = parse_condition(name[2:])
        target = _imm_or_label(ops[0], ctx)
        return [enc.branch_cond(cond, target - pc)]
    if name in ("cbz", "cbnz"):
        expect(2)
        rt, is64, _ = parse_gp_reg(ops[0])
        target = _imm_or_label(ops[1], ctx)
        return [enc.compare_branch(1 if is64 else 0, 1 if name == "cbnz" else 0,
                                   _field(rt), target - pc)]
    if name in ("tbz", "tbnz"):
        expect(3)
        rt, _, _ = parse_gp_reg(ops[0])
        bit_pos = parse_immediate(ops[1])
        target = _imm_or_label(ops[2], ctx)
        return [enc.test_branch(1 if name == "tbnz" else 0, _field(rt), bit_pos,
                                target - pc)]
    if name in ("br", "blr"):
        expect(1)
        rn, _, _ = parse_gp_reg(ops[0])
        return [enc.branch_reg(1 if name == "blr" else 0, _field(rn))]
    if name == "ret":
        rn = 30 if not ops else parse_gp_reg(ops[0])[0]
        return [enc.branch_reg(2, rn)]
    if name == "svc":
        expect(1)
        return [enc.svc(parse_immediate(ops[0]))]

    # loads / stores
    if name in _LDST_INT or name in ("ldur", "stur", "ldurb", "sturb", "ldurh",
                                     "sturh", "ldursb", "ldursh", "ldursw"):
        return _encode_load_store(name, ops, ctx)
    if name in ("ldp", "stp"):
        return _encode_pair(name, ops)

    # floating point
    if name in _FP2:
        expect(3)
        rd, d1 = parse_fp_reg(ops[0])
        rn, d2 = parse_fp_reg(ops[1])
        rm, d3 = parse_fp_reg(ops[2])
        if not (d1 == d2 == d3):
            raise AssemblerError(f"{name}: mixed FP register widths")
        return [enc.fp_dp2(1 if d1 else 0, _FP2[name], rd, rn, rm)]
    if name in _FP3:
        expect(4)
        o1, o0 = _FP3[name]
        rd, d1 = parse_fp_reg(ops[0])
        rn, _ = parse_fp_reg(ops[1])
        rm, _ = parse_fp_reg(ops[2])
        ra, _ = parse_fp_reg(ops[3])
        return [enc.fp_dp3(1 if d1 else 0, o1, o0, rd, rn, rm, ra)]
    if name in ("fabs", "fneg", "fsqrt"):
        expect(2)
        rd, d1 = parse_fp_reg(ops[0])
        rn, d2 = parse_fp_reg(ops[1])
        if d1 != d2:
            raise AssemblerError(f"{name}: mixed FP register widths")
        return [enc.fp_dp1(1 if d1 else 0, _FP1[name], rd, rn)]
    if name == "fcvt":
        expect(2)
        rd, dst_double = parse_fp_reg(ops[0])
        rn, src_double = parse_fp_reg(ops[1])
        if dst_double == src_double:
            raise AssemblerError("fcvt needs different precisions")
        opcode = 0b000101 if dst_double else 0b000100
        return [enc.fp_dp1(1 if src_double else 0, opcode, rd, rn)]
    if name in ("fcmp", "fcmpe"):
        rn, double = parse_fp_reg(ops[0])
        signalling = 0b10000 if name == "fcmpe" else 0
        if ops[1].startswith("#"):
            if float(ops[1][1:]) != 0.0:
                raise AssemblerError("fcmp immediate must be #0.0")
            return [enc.fp_compare(1 if double else 0, rn, 0, signalling | 0b01000)]
        rm, _ = parse_fp_reg(ops[1])
        return [enc.fp_compare(1 if double else 0, rn, rm, signalling)]
    if name == "fcsel":
        expect(4)
        rd, double = parse_fp_reg(ops[0])
        rn, _ = parse_fp_reg(ops[1])
        rm, _ = parse_fp_reg(ops[2])
        cond = parse_condition(ops[3])
        return [enc.fp_csel(1 if double else 0, rd, rn, rm, cond)]
    if name in ("fcvtzs", "fcvtzu"):
        expect(2)
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, double = parse_fp_reg(ops[1])
        opcode = 0b000 if name == "fcvtzs" else 0b001
        return [enc.fp_int(1 if is64 else 0, 1 if double else 0, 0b11, opcode,
                           _field(rd), rn)]
    if name in ("scvtf", "ucvtf"):
        expect(2)
        rd, double = parse_fp_reg(ops[0])
        rn, is64, _ = parse_gp_reg(ops[1])
        opcode = 0b010 if name == "scvtf" else 0b011
        return [enc.fp_int(1 if is64 else 0, 1 if double else 0, 0b00, opcode,
                           rd, _field(rn))]
    if name == "fmov":
        expect(2)
        # four forms: fp<-fp, fp<-gp, gp<-fp, fp<-imm
        dst_is_fp = ops[0][0].lower() in "ds" and not ops[0].lower().startswith("sp")
        if dst_is_fp:
            rd, double = parse_fp_reg(ops[0])
            if ops[1].startswith("#"):
                text = ops[1][1:]
                imm8 = enc.vfp_encode_imm8(float(text))
                return [enc.fp_imm(1 if double else 0, rd, imm8)]
            try:
                rn, src_double = parse_fp_reg(ops[1])
                if double != src_double:
                    raise AssemblerError("fmov: mixed FP widths")
                return [enc.fp_dp1(1 if double else 0, 0, rd, rn)]
            except AssemblerError:
                pass
            rn, is64, _ = parse_gp_reg(ops[1])
            if is64 != double:
                raise AssemblerError("fmov gp/fp width mismatch")
            return [enc.fp_int(1 if is64 else 0, 1 if double else 0, 0b00,
                               0b111, rd, _field(rn))]
        rd, is64, _ = parse_gp_reg(ops[0])
        rn, double = parse_fp_reg(ops[1])
        if is64 != double:
            raise AssemblerError("fmov gp/fp width mismatch")
        return [enc.fp_int(1 if is64 else 0, 1 if double else 0, 0b00, 0b110,
                           _field(rd), rn)]
    if name == "movi":
        expect(2)
        rd, double = parse_fp_reg(ops[0])
        if not double or parse_immediate(ops[1]) != 0:
            raise AssemblerError("only 'movi dN, #0' is supported (+nosimd)")
        return [enc.movi_d_zero(rd)]

    raise AssemblerError(f"unknown AArch64 instruction {mnemonic!r}")


def _ldst_fields(name: str, rt_token: str):
    """Resolve (size, v, opc, rt_field, scale) for a load/store mnemonic."""
    base = name.replace("ldur", "ldr").replace("stur", "str")
    if base in ("ldr", "str"):
        # width from the register operand
        try:
            rt, double = parse_fp_reg(rt_token)
            size = 3 if double else 2
            opc = 0b01 if base == "ldr" else 0b00
            return size, 1, opc, rt, size
        except AssemblerError:
            rt, is64, _sp = parse_gp_reg(rt_token)
            size = 3 if is64 else 2
            opc = 0b01 if base == "ldr" else 0b00
            return size, 0, opc, _field(rt), size
    size, opc = _LDST_INT[base]
    rt, is64, _sp = parse_gp_reg(rt_token)
    if opc == 0b10 and not is64:
        opc = 0b11  # sign-extending load into a W register
    return size, 0, opc, _field(rt), size


def _encode_load_store(name: str, ops: list[str], ctx) -> list[int]:
    unscaled = "u" in name[:4] and name not in _LDST_INT  # ldur/stur family
    if len(ops) == 3:
        # post-index: rt, [base], #imm
        size, v, opc, rt, scale = _ldst_fields(name, ops[0])
        mem = _parse_mem(ops[1], post_imm=ops[2])
        return [enc.load_store_unscaled(size, v, opc, rt, _field(mem.base),
                                        mem.offset_imm, 0b01)]
    if len(ops) != 2:
        raise AssemblerError(f"{name} expects 2 or 3 operands")
    size, v, opc, rt, scale = _ldst_fields(name, ops[0])
    mem = _parse_mem(ops[1])
    base = _field(mem.base)
    nbytes = 1 << scale
    if mem.pre_index:
        return [enc.load_store_unscaled(size, v, opc, rt, base,
                                        mem.offset_imm, 0b11)]
    if mem.offset_reg is not None:
        ext = mem.extend
        if ext.amount not in (0, scale):
            raise AssemblerError(
                f"register-offset shift must be 0 or {scale} for {name}"
            )
        s_bit = 1 if (ext.amount == scale and ext.explicit_amount) else 0
        if ext.amount == scale and scale != 0 and not ext.explicit_amount:
            s_bit = 1
        option = ext.option
        if option not in (2, 3, 6, 7):
            raise AssemblerError("invalid extend for register offset")
        return [enc.load_store_reg_offset(size, v, opc, rt, base,
                                          _field(mem.offset_reg), option, s_bit)]
    offset = mem.offset_imm or 0
    if unscaled:
        return [enc.load_store_unscaled(size, v, opc, rt, base, offset, 0b00)]
    if offset >= 0 and offset % nbytes == 0 and (offset // nbytes) < (1 << 12):
        return [enc.load_store_unsigned(size, v, opc, rt, base, offset // nbytes)]
    if fits_signed(offset, 9):
        return [enc.load_store_unscaled(size, v, opc, rt, base, offset, 0b00)]
    raise AssemblerError(f"load/store offset {offset} not encodable")


def _encode_pair(name: str, ops: list[str]) -> list[int]:
    load = 1 if name == "ldp" else 0
    if len(ops) == 4:
        # post-index
        mem = _parse_mem(ops[2], post_imm=ops[3])
        mode = 0b01
    elif len(ops) == 3:
        mem = _parse_mem(ops[2])
        mode = 0b11 if mem.pre_index else 0b10
    else:
        raise AssemblerError(f"{name} expects 3 or 4 operands")
    try:
        rt, double = parse_fp_reg(ops[0])
        rt2, double2 = parse_fp_reg(ops[1])
        if double != double2:
            raise AssemblerError("ldp/stp mixed FP widths")
        v, opc = 1, (0b01 if double else 0b00)
        nbytes = 8 if double else 4
        rt_f, rt2_f = rt, rt2
    except AssemblerError:
        r1, is64, _ = parse_gp_reg(ops[0])
        r2, is64b, _ = parse_gp_reg(ops[1])
        if is64 != is64b:
            raise AssemblerError("ldp/stp mixed widths") from None
        v, opc = 0, (0b10 if is64 else 0b00)
        nbytes = 8 if is64 else 4
        rt_f, rt2_f = _field(r1), _field(r2)
    offset = mem.offset_imm or 0
    if offset % nbytes:
        raise AssemblerError(f"pair offset {offset} not a multiple of {nbytes}")
    return [enc.load_store_pair(opc, v, mode, load, rt_f, rt2_f,
                                _field(mem.base), offset // nbytes)]
