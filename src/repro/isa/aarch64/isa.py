"""The AArch64 ISA facade tying decoder and assembler together."""

from __future__ import annotations

from typing import Sequence

from repro.isa.base import AssemblyContext, DecodedInst
from repro.isa.aarch64 import assembler as _asm
from repro.isa.aarch64 import decoder as _dec


class AArch64:
    """Scalar Armv8-a (``armv8-a+nosimd``), fixed 4-byte instructions."""

    name = "aarch64"
    word_size = 4

    def decode(self, word: int, pc: int) -> DecodedInst:
        return _dec.decode(word, pc)

    def encode_instruction(
        self, mnemonic: str, operands: Sequence[str], ctx: AssemblyContext
    ) -> list[int]:
        return _asm.encode_instruction(mnemonic, operands, ctx)

    def instruction_size(self, mnemonic: str, operands: Sequence[str]) -> int:
        return _asm.instruction_size(mnemonic, operands)

    def disassemble(self, word: int, pc: int = 0) -> str:
        """Convenience: decode and return the text form."""
        return self.decode(word, pc).text

    def __repr__(self) -> str:
        return "<ISA aarch64 (armv8-a+nosimd)>"
