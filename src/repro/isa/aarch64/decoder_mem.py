"""A64 decoder: loads and stores — op0 (bits 28:25) = x1x0.

Covers LDR/STR with every scalar addressing mode the compilers use
(unsigned scaled immediate, unscaled, pre/post-index, register offset with
extend/shift), the byte/half/word sized and sign-extending variants, FP
loads/stores (S and D), and LDP/STP pairs (integer and FP).

The register-offset forms are the heart of the paper's §3.3 analysis —
"Arm's more powerful load and store instructions" — so their semantics
(extend option + scaled shift) get particular care here.
"""

from __future__ import annotations

from repro.common import DecodeError, MASK64, bits, sext
from repro.isa.base import DecodedInst, InstructionGroup
from repro.isa.aarch64 import semantics as sem
from repro.isa.aarch64.decoder_util import (
    ZR_SLOT,
    fp_deps,
    fp_text,
    gp_deps,
    gp_slot,
    gp_text,
)
from repro.isa.aarch64.encoding import EXTEND_NAMES

_G = InstructionGroup


def decode_load_store(word: int, pc: int) -> DecodedInst:
    family = bits(word, 29, 27)
    if family == 0b111:
        return _decode_register_forms(word, pc)
    if family == 0b101:
        return _decode_pair(word, pc)
    raise DecodeError(word, pc)


def _int_load_name(size: int, opc: int) -> tuple[str, int, bool, bool]:
    """(mnemonic, bytes, signed, is64-dest) for integer loads/stores."""
    suffix = {0: "b", 1: "h", 2: "", 3: ""}[size]
    nbytes = 1 << size
    if opc == 0b00:
        return f"str{suffix}", nbytes, False, size == 3
    if opc == 0b01:
        return f"ldr{suffix}", nbytes, False, size == 3
    if opc == 0b10:
        if size == 3:
            raise ValueError("prfm not supported")
        name = {0: "ldrsb", 1: "ldrsh", 2: "ldrsw"}[size]
        return name, nbytes, True, True
    # opc == 0b11: signed load to 32-bit register
    if size >= 2:
        raise ValueError("reserved")
    return {0: "ldrsb", 1: "ldrsh"}[size], nbytes, True, False


def _make_int_load(rt: int, nbytes: int, signed: bool, is64: bool):
    mask = MASK64 if is64 else 0xFFFF_FFFF
    if rt == ZR_SLOT:
        def apply(m, addr, nbytes=nbytes):
            m.memory.load(addr, nbytes)
        return apply
    def apply(m, addr, rt=rt, nbytes=nbytes, signed=signed, mask=mask):
        m.r[rt] = m.memory.load(addr, nbytes, signed) & mask
    return apply


def _make_int_store(rt: int, nbytes: int):
    limit = (1 << (nbytes * 8)) - 1
    def apply(m, addr, rt=rt, nbytes=nbytes, limit=limit):
        m.memory.store(addr, nbytes, m.r[rt] & limit)
    return apply


def _make_fp_load(rt: int, double: bool):
    if double:
        def apply(m, addr, rt=rt):
            m.f[rt] = m.memory.load_f64(addr)
    else:
        def apply(m, addr, rt=rt):
            m.f[rt] = m.memory.load_f32(addr)
    return apply


def _make_fp_store(rt: int, double: bool):
    if double:
        def apply(m, addr, rt=rt):
            m.memory.store_f64(addr, m.f[rt])
    else:
        def apply(m, addr, rt=rt):
            m.memory.store_f32(addr, m.f[rt])
    return apply


def _decode_register_forms(word: int, pc: int) -> DecodedInst:
    size = bits(word, 31, 30)
    v = bits(word, 26, 26)
    opc = bits(word, 23, 22)
    rn = gp_slot(bits(word, 9, 5), sp=True)
    rt_field = word & 0x1F

    if v:
        if size == 3 and opc in (0, 1):
            double, nbytes = True, 8
        elif size == 2 and opc in (0, 1):
            double, nbytes = False, 4
        else:
            raise DecodeError(word, pc)
        is_load = opc == 1
        rt = rt_field
        mnemonic = "ldr" if is_load else "str"
        rt_text = fp_text(rt, double)
        apply = _make_fp_load(rt, double) if is_load else _make_fp_store(rt, double)
        reg_deps_rt = fp_deps(rt)
        group = _G.LOAD if is_load else _G.STORE
    else:
        try:
            mnemonic, nbytes, signed, is64 = _int_load_name(size, opc)
        except ValueError:
            raise DecodeError(word, pc) from None
        is_load = not mnemonic.startswith("str")
        rt = gp_slot(rt_field, sp=False)
        rt_text = gp_text(rt, is64 if is_load else size == 3)
        apply = (
            _make_int_load(rt, nbytes, signed, is64)
            if is_load
            else _make_int_store(rt, nbytes)
        )
        reg_deps_rt = gp_deps(rt)
        group = _G.LOAD if is_load else _G.STORE

    scale = 3 if (v and nbytes == 8) else (2 if (v and nbytes == 4) else size)
    mode_bits = bits(word, 25, 24)

    if mode_bits == 0b01:
        # unsigned scaled immediate
        offset = bits(word, 21, 10) << scale
        def execute(m, rn=rn, offset=offset, apply=apply):
            apply(m, (m.r[rn] + offset) & MASK64)
        text = f"{mnemonic} {rt_text},[{gp_text(rn, True, sp=True)},#{offset}]"
        srcs = gp_deps(rn) + (reg_deps_rt if not is_load else ())
        dsts = (reg_deps_rt if is_load else ())
        return DecodedInst(pc, word, mnemonic, text, group, srcs, dsts, execute,
                           is_load=is_load, is_store=not is_load)

    if mode_bits != 0b00:
        raise DecodeError(word, pc)

    if bits(word, 21, 21) == 1:
        # register offset
        if bits(word, 11, 10) != 0b10:
            raise DecodeError(word, pc)
        rm = gp_slot(bits(word, 20, 16), sp=False)
        option = bits(word, 15, 13)
        if option not in (2, 3, 6, 7):
            raise DecodeError(word, pc)
        s_bit = bits(word, 12, 12)
        shift = scale if s_bit else 0
        def execute(m, rn=rn, rm=rm, option=option, shift=shift, apply=apply):
            offset = sem.extend_operand(m.r[rm], option, shift, True)
            apply(m, (m.r[rn] + offset) & MASK64)
        ext = EXTEND_NAMES[option]
        ext_text = "lsl" if ext == "uxtx" else ext
        amount_text = f" #{shift}" if s_bit else ""
        rm_text = gp_text(rm, option in (3, 7))
        text = (
            f"{mnemonic} {rt_text},[{gp_text(rn, True, sp=True)},{rm_text}"
            + (f",{ext_text}{amount_text}" if (s_bit or ext != "uxtx") else "")
            + "]"
        )
        srcs = gp_deps(rn, rm) + (reg_deps_rt if not is_load else ())
        dsts = (reg_deps_rt if is_load else ())
        return DecodedInst(pc, word, mnemonic, text, group, srcs, dsts, execute,
                           is_load=is_load, is_store=not is_load)

    # unscaled / pre / post immediate forms
    imm9 = sext(bits(word, 20, 12), 9)
    mode = bits(word, 11, 10)
    if mode == 0b00:  # LDUR/STUR
        unscaled_name = mnemonic.replace("ldr", "ldur").replace("str", "stur")
        def execute(m, rn=rn, imm9=imm9, apply=apply):
            apply(m, (m.r[rn] + imm9) & MASK64)
        text = f"{unscaled_name} {rt_text},[{gp_text(rn, True, sp=True)},#{imm9}]"
        srcs = gp_deps(rn) + (reg_deps_rt if not is_load else ())
        dsts = (reg_deps_rt if is_load else ())
        return DecodedInst(pc, word, unscaled_name, text, group, srcs, dsts,
                           execute, is_load=is_load, is_store=not is_load)
    if mode == 0b01:  # post-index
        def execute(m, rn=rn, imm9=imm9, apply=apply):
            addr = m.r[rn]
            apply(m, addr)
            m.r[rn] = (addr + imm9) & MASK64
        text = f"{mnemonic} {rt_text},[{gp_text(rn, True, sp=True)}],#{imm9}"
    elif mode == 0b11:  # pre-index
        def execute(m, rn=rn, imm9=imm9, apply=apply):
            addr = (m.r[rn] + imm9) & MASK64
            apply(m, addr)
            m.r[rn] = addr
        text = f"{mnemonic} {rt_text},[{gp_text(rn, True, sp=True)},#{imm9}]!"
    else:
        raise DecodeError(word, pc)
    # writeback forms: base register is both source and destination
    srcs = gp_deps(rn) + (reg_deps_rt if not is_load else ())
    dsts = gp_deps(rn) + (reg_deps_rt if is_load else ())
    return DecodedInst(pc, word, mnemonic, text, group, srcs, dsts, execute,
                       is_load=is_load, is_store=not is_load)


def _decode_pair(word: int, pc: int) -> DecodedInst:
    opc = bits(word, 31, 30)
    v = bits(word, 26, 26)
    mode = bits(word, 24, 23)
    is_load = bool(bits(word, 22, 22))
    imm7 = sext(bits(word, 21, 15), 7)
    rt2_field = bits(word, 14, 10)
    rn = gp_slot(bits(word, 9, 5), sp=True)
    rt_field = word & 0x1F

    if v:
        if opc == 0b01:
            double, nbytes = True, 8
        elif opc == 0b00:
            double, nbytes = False, 4
        else:
            raise DecodeError(word, pc)
        rt, rt2 = rt_field, rt2_field
        rt_text = fp_text(rt, double)
        rt2_text = fp_text(rt2, double)
        if is_load:
            apply1 = _make_fp_load(rt, double)
            apply2 = _make_fp_load(rt2, double)
        else:
            apply1 = _make_fp_store(rt, double)
            apply2 = _make_fp_store(rt2, double)
        pair_deps = fp_deps(rt) + fp_deps(rt2)
    else:
        if opc == 0b10:
            is64, nbytes = True, 8
        elif opc == 0b00:
            is64, nbytes = False, 4
        else:
            raise DecodeError(word, pc)
        rt = gp_slot(rt_field, sp=False)
        rt2 = gp_slot(rt2_field, sp=False)
        rt_text = gp_text(rt, is64)
        rt2_text = gp_text(rt2, is64)
        if is_load:
            apply1 = _make_int_load(rt, nbytes, False, is64)
            apply2 = _make_int_load(rt2, nbytes, False, is64)
        else:
            apply1 = _make_int_store(rt, nbytes)
            apply2 = _make_int_store(rt2, nbytes)
        pair_deps = gp_deps(rt, rt2)

    offset = imm7 * nbytes
    mnemonic = "ldp" if is_load else "stp"
    group = _G.LOAD if is_load else _G.STORE
    base_text = gp_text(rn, True, sp=True)

    if mode == 0b10:  # signed offset
        def execute(m, rn=rn, offset=offset, apply1=apply1, apply2=apply2,
                    nbytes=nbytes):
            addr = (m.r[rn] + offset) & MASK64
            apply1(m, addr)
            apply2(m, addr + nbytes)
        text = f"{mnemonic} {rt_text},{rt2_text},[{base_text},#{offset}]"
        srcs = gp_deps(rn) + (pair_deps if not is_load else ())
        dsts = (pair_deps if is_load else ())
    elif mode == 0b01:  # post-index
        def execute(m, rn=rn, offset=offset, apply1=apply1, apply2=apply2,
                    nbytes=nbytes):
            addr = m.r[rn]
            apply1(m, addr)
            apply2(m, addr + nbytes)
            m.r[rn] = (addr + offset) & MASK64
        text = f"{mnemonic} {rt_text},{rt2_text},[{base_text}],#{offset}"
        srcs = gp_deps(rn) + (pair_deps if not is_load else ())
        dsts = gp_deps(rn) + (pair_deps if is_load else ())
    elif mode == 0b11:  # pre-index
        def execute(m, rn=rn, offset=offset, apply1=apply1, apply2=apply2,
                    nbytes=nbytes):
            addr = (m.r[rn] + offset) & MASK64
            apply1(m, addr)
            apply2(m, addr + nbytes)
            m.r[rn] = addr
        text = f"{mnemonic} {rt_text},{rt2_text},[{base_text},#{offset}]!"
        srcs = gp_deps(rn) + (pair_deps if not is_load else ())
        dsts = gp_deps(rn) + (pair_deps if is_load else ())
    else:
        raise DecodeError(word, pc)

    return DecodedInst(pc, word, mnemonic, text, group, srcs, dsts, execute,
                       is_load=is_load, is_store=not is_load)
