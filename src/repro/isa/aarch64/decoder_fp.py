"""A64 decoder: scalar floating-point (and ``movi dN, #0``) — op0 = x111.

Covers the FP data-processing groups (1/2/3-source), FCMP/FCMPE, FCSEL,
FMOV (register, immediate, and to/from general registers), conversions
between precisions and to/from integers.
"""

from __future__ import annotations

import math

from repro.common import DecodeError, MASK64, bits, s32, s64, u64
from repro.isa.base import DEP_NZCV, DecodedInst, InstructionGroup
from repro.isa.aarch64 import semantics as sem
from repro.isa.aarch64.decoder_util import (
    ZR_SLOT,
    fp_deps,
    fp_text,
    gp_deps,
    gp_slot,
    gp_text,
)
from repro.isa.aarch64.encoding import MOVI_D_ZERO_BASE, vfp_expand_imm8
from repro.isa.aarch64.registers import condition_holds, condition_name
from repro.isa.riscv.semantics import fmax as _fmax, fmin as _fmin, fsqrt as _fsqrt

_G = InstructionGroup


def decode_fp(word: int, pc: int) -> DecodedInst:
    if (word & ~0x1F) == MOVI_D_ZERO_BASE:
        rd = word & 0x1F
        def execute(m, rd=rd):
            m.f[rd] = 0.0
        return DecodedInst(
            pc, word, "movi", f"movi d{rd},#0", _G.FP_MOVE, (), fp_deps(rd),
            execute,
        )

    if bits(word, 31, 24) == 0b00011111:
        return _decode_fp3(word, pc)

    if bits(word, 30, 24) != 0b0011110 or bits(word, 21, 21) != 1:
        raise DecodeError(word, pc)
    sf = bits(word, 31, 31)
    if sf == 0 and bits(word, 15, 10) != 0:
        # the non-fp<->int groups all have sf==0
        pass
    if bits(word, 15, 10) == 0:
        return _decode_fp_int(word, pc)
    if sf:
        raise DecodeError(word, pc)
    if bits(word, 14, 10) == 0b10000:
        return _decode_fp1(word, pc)
    if bits(word, 15, 10) == 0b001000:
        return _decode_fp_compare(word, pc)
    if bits(word, 12, 10) == 0b100 and bits(word, 9, 5) == 0:
        return _decode_fp_imm(word, pc)
    low2 = bits(word, 11, 10)
    if low2 == 0b10:
        return _decode_fp2(word, pc)
    if low2 == 0b11:
        return _decode_fp_csel(word, pc)
    raise DecodeError(word, pc)


def _ftype(word: int, pc: int) -> bool:
    ftype = bits(word, 23, 22)
    if ftype == 0b01:
        return True   # double
    if ftype == 0b00:
        return False  # single
    raise DecodeError(word, pc)


def _decode_fp2(word: int, pc: int) -> DecodedInst:
    double = _ftype(word, pc)
    opcode = bits(word, 15, 12)
    rm = bits(word, 20, 16)
    rn = bits(word, 9, 5)
    rd = word & 0x1F

    table = {
        0b0000: ("fmul", _G.FP_MUL, lambda a, b: a * b),
        0b0001: ("fdiv", _G.FP_DIV_SQRT, _safe_div),
        0b0010: ("fadd", _G.FP_SIMPLE, lambda a, b: a + b),
        0b0011: ("fsub", _G.FP_SIMPLE, lambda a, b: a - b),
        0b0100: ("fmax", _G.FP_SIMPLE, _fmax),
        0b0101: ("fmin", _G.FP_SIMPLE, _fmin),
        0b0110: ("fmaxnm", _G.FP_SIMPLE, _fmax),
        0b0111: ("fminnm", _G.FP_SIMPLE, _fmin),
        0b1000: ("fnmul", _G.FP_MUL, lambda a, b: -(a * b)),
    }
    entry = table.get(opcode)
    if entry is None:
        raise DecodeError(word, pc)
    mnemonic, group, op = entry

    if double:
        def execute(m, rd=rd, rn=rn, rm=rm, op=op):
            m.f[rd] = op(m.f[rn], m.f[rm])
    else:
        def execute(m, rd=rd, rn=rn, rm=rm, op=op):
            m.f[rd] = sem.round_f32(op(m.f[rn], m.f[rm]))
    text = (
        f"{mnemonic} {fp_text(rd, double)},{fp_text(rn, double)},"
        f"{fp_text(rm, double)}"
    )
    return DecodedInst(
        pc, word, mnemonic, text, group, fp_deps(rn, rm), fp_deps(rd), execute,
    )


def _safe_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return a / b


def _decode_fp1(word: int, pc: int) -> DecodedInst:
    double = _ftype(word, pc)
    opcode = bits(word, 20, 15)
    rn = bits(word, 9, 5)
    rd = word & 0x1F

    if opcode == 0b000000:
        mnemonic, group = "fmov", _G.FP_MOVE
        def op(v):
            return v
    elif opcode == 0b000001:
        mnemonic, group = "fabs", _G.FP_SIMPLE
        op = abs
    elif opcode == 0b000010:
        mnemonic, group = "fneg", _G.FP_SIMPLE
        def op(v):
            return -v
    elif opcode == 0b000011:
        mnemonic, group = "fsqrt", _G.FP_DIV_SQRT
        op = _fsqrt
    elif opcode in (0b000100, 0b000101):
        # FCVT between precisions: opcode low bits = destination type.
        dst_double = opcode == 0b000101
        if dst_double == double:
            raise DecodeError(word, pc)
        if dst_double:
            def execute(m, rd=rd, rn=rn):
                m.f[rd] = m.f[rn]
        else:
            def execute(m, rd=rd, rn=rn):
                m.f[rd] = sem.round_f32(m.f[rn])
        text = f"fcvt {fp_text(rd, dst_double)},{fp_text(rn, double)}"
        return DecodedInst(
            pc, word, "fcvt", text, _G.FP_CVT, fp_deps(rn), fp_deps(rd), execute,
        )
    else:
        raise DecodeError(word, pc)

    if double:
        def execute(m, rd=rd, rn=rn, op=op):
            m.f[rd] = op(m.f[rn])
    else:
        def execute(m, rd=rd, rn=rn, op=op):
            m.f[rd] = sem.round_f32(op(m.f[rn]))
    text = f"{mnemonic} {fp_text(rd, double)},{fp_text(rn, double)}"
    return DecodedInst(
        pc, word, mnemonic, text, group, fp_deps(rn), fp_deps(rd), execute,
    )


def _decode_fp_compare(word: int, pc: int) -> DecodedInst:
    double = _ftype(word, pc)
    rm = bits(word, 20, 16)
    rn = bits(word, 9, 5)
    opcode2 = word & 0x1F
    with_zero = bool(opcode2 & 0b01000)
    signalling = bool(opcode2 & 0b10000)
    if opcode2 & 0b00111:
        raise DecodeError(word, pc)
    mnemonic = "fcmpe" if signalling else "fcmp"

    if with_zero:
        def execute(m, rn=rn):
            m.nzcv = sem.fp_compare_flags(m.f[rn], 0.0)
        text = f"{mnemonic} {fp_text(rn, double)},#0.0"
        srcs = fp_deps(rn)
    else:
        def execute(m, rn=rn, rm=rm):
            m.nzcv = sem.fp_compare_flags(m.f[rn], m.f[rm])
        text = f"{mnemonic} {fp_text(rn, double)},{fp_text(rm, double)}"
        srcs = fp_deps(rn, rm)
    return DecodedInst(
        pc, word, mnemonic, text, _G.FP_SIMPLE, srcs, (DEP_NZCV,), execute,
    )


def _decode_fp_imm(word: int, pc: int) -> DecodedInst:
    double = _ftype(word, pc)
    imm8 = bits(word, 20, 13)
    rd = word & 0x1F
    value = vfp_expand_imm8(imm8)

    def execute(m, rd=rd, value=value):
        m.f[rd] = value

    text = f"fmov {fp_text(rd, double)},#{value:g}"
    return DecodedInst(
        pc, word, "fmov", text, _G.FP_MOVE, (), fp_deps(rd), execute,
    )


def _decode_fp_csel(word: int, pc: int) -> DecodedInst:
    double = _ftype(word, pc)
    rm = bits(word, 20, 16)
    cond = bits(word, 15, 12)
    rn = bits(word, 9, 5)
    rd = word & 0x1F

    def execute(m, rd=rd, rn=rn, rm=rm, cond=cond):
        m.f[rd] = m.f[rn] if condition_holds(cond, m.nzcv) else m.f[rm]

    text = (
        f"fcsel {fp_text(rd, double)},{fp_text(rn, double)},"
        f"{fp_text(rm, double)},{condition_name(cond)}"
    )
    return DecodedInst(
        pc, word, "fcsel", text, _G.FP_SIMPLE,
        fp_deps(rn, rm) + (DEP_NZCV,), fp_deps(rd), execute,
    )


def _decode_fp_int(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    double = _ftype(word, pc)
    rmode = bits(word, 20, 19)
    opcode = bits(word, 18, 16)
    rn_field = bits(word, 9, 5)
    rd_field = word & 0x1F
    gp_is64 = bool(sf)
    gp_width = 64 if gp_is64 else 32

    if rmode == 0b11 and opcode in (0b000, 0b001):
        # FCVTZS/FCVTZU: FP -> integer, truncate toward zero
        signed = opcode == 0b000
        rd = gp_slot(rd_field, sp=False)
        rn = rn_field
        mnemonic = "fcvtzs" if signed else "fcvtzu"
        if rd == ZR_SLOT:
            def execute(m):
                pass
        else:
            def execute(m, rd=rd, rn=rn, signed=signed, gp_width=gp_width):
                m.r[rd] = sem.fcvt_to_int(m.f[rn], signed, gp_width)
        text = f"{mnemonic} {gp_text(rd, gp_is64)},{fp_text(rn, double)}"
        return DecodedInst(
            pc, word, mnemonic, text, _G.FP_CVT, fp_deps(rn), gp_deps(rd), execute,
        )

    if rmode == 0b00 and opcode in (0b010, 0b011):
        # SCVTF/UCVTF: integer -> FP
        signed = opcode == 0b010
        rn = gp_slot(rn_field, sp=False)
        rd = rd_field
        mnemonic = "scvtf" if signed else "ucvtf"
        if signed:
            to_signed = s64 if gp_is64 else s32
            def convert(v, to_signed=to_signed):
                return float(to_signed(v))
        else:
            mask = MASK64 if gp_is64 else 0xFFFF_FFFF
            def convert(v, mask=mask):
                return float(v & mask)
        if double:
            def execute(m, rd=rd, rn=rn, convert=convert):
                m.f[rd] = convert(m.r[rn])
        else:
            def execute(m, rd=rd, rn=rn, convert=convert):
                m.f[rd] = sem.round_f32(convert(m.r[rn]))
        text = f"{mnemonic} {fp_text(rd, double)},{gp_text(rn, gp_is64)}"
        return DecodedInst(
            pc, word, mnemonic, text, _G.FP_CVT, gp_deps(rn), fp_deps(rd), execute,
        )

    if rmode == 0b00 and opcode in (0b110, 0b111):
        # FMOV between general and FP registers (bit-pattern move)
        if gp_is64 != double:
            raise DecodeError(word, pc)
        to_fp = opcode == 0b111
        if to_fp:
            rn = gp_slot(rn_field, sp=False)
            rd = rd_field
            if double:
                def execute(m, rd=rd, rn=rn):
                    from repro.common import bits_to_f64
                    m.f[rd] = bits_to_f64(m.r[rn])
            else:
                def execute(m, rd=rd, rn=rn):
                    from repro.common import bits_to_f32
                    m.f[rd] = bits_to_f32(m.r[rn])
            text = f"fmov {fp_text(rd, double)},{gp_text(rn, gp_is64)}"
            return DecodedInst(
                pc, word, "fmov", text, _G.FP_MOVE, gp_deps(rn), fp_deps(rd),
                execute,
            )
        rd = gp_slot(rd_field, sp=False)
        rn = rn_field
        if rd == ZR_SLOT:
            def execute(m):
                pass
        elif double:
            def execute(m, rd=rd, rn=rn):
                from repro.common import f64_to_bits
                m.r[rd] = f64_to_bits(m.f[rn])
        else:
            def execute(m, rd=rd, rn=rn):
                from repro.common import f32_to_bits
                m.r[rd] = f32_to_bits(m.f[rn])
        text = f"fmov {gp_text(rd, gp_is64)},{fp_text(rn, double)}"
        return DecodedInst(
            pc, word, "fmov", text, _G.FP_MOVE, fp_deps(rn), gp_deps(rd), execute,
        )

    raise DecodeError(word, pc)


def _decode_fp3(word: int, pc: int) -> DecodedInst:
    double = _ftype(word, pc)
    o1 = bits(word, 21, 21)
    rm = bits(word, 20, 16)
    o0 = bits(word, 15, 15)
    ra = bits(word, 14, 10)
    rn = bits(word, 9, 5)
    rd = word & 0x1F

    if (o1, o0) == (0, 0):
        mnemonic = "fmadd"
        def raw(a, b, c):
            return c + a * b
    elif (o1, o0) == (0, 1):
        mnemonic = "fmsub"
        def raw(a, b, c):
            return c - a * b
    elif (o1, o0) == (1, 0):
        mnemonic = "fnmadd"
        def raw(a, b, c):
            return -c - a * b
    else:
        mnemonic = "fnmsub"
        def raw(a, b, c):
            return -c + a * b

    if double:
        def execute(m, rd=rd, rn=rn, rm=rm, ra=ra, raw=raw):
            m.f[rd] = raw(m.f[rn], m.f[rm], m.f[ra])
    else:
        def execute(m, rd=rd, rn=rn, rm=rm, ra=ra, raw=raw):
            m.f[rd] = sem.round_f32(raw(m.f[rn], m.f[rm], m.f[ra]))
    text = (
        f"{mnemonic} {fp_text(rd, double)},{fp_text(rn, double)},"
        f"{fp_text(rm, double)},{fp_text(ra, double)}"
    )
    return DecodedInst(
        pc, word, mnemonic, text, _G.FP_MUL, fp_deps(rn, rm, ra), fp_deps(rd),
        execute,
    )
