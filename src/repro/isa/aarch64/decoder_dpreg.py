"""A64 decoder: data-processing (register) — bits 27:25 = 101, bit 28 = x.

Covers logical (shifted register), add/subtract (shifted and extended
register), condition selects, and the 1/2/3-source data-processing groups
(RBIT/REV/CLZ, UDIV/SDIV/variable shifts, MADD/MSUB/SMULH/UMULH).
"""

from __future__ import annotations

from repro.common import (
    DecodeError,
    MASK32,
    MASK64,
    bit_reverse,
    bits,
    byte_reverse,
    count_leading_zeros,
    s32,
    s64,
    u64,
)
from repro.isa.base import DEP_NZCV, DecodedInst, InstructionGroup
from repro.isa.aarch64 import semantics as sem
from repro.isa.aarch64.decoder_util import ZR_SLOT, gp_deps, gp_slot, gp_text
from repro.isa.aarch64.encoding import EXTEND_NAMES, SHIFT_NAMES
from repro.isa.aarch64.registers import condition_holds, condition_name

_G = InstructionGroup


def decode_dp_reg(word: int, pc: int) -> DecodedInst:
    op1 = bits(word, 28, 28)
    op2 = bits(word, 24, 21)
    if op1 == 0:
        if bits(word, 24, 24) == 0:
            return _decode_logical_shifted(word, pc)
        if bits(word, 21, 21) == 0:
            return _decode_add_sub_shifted(word, pc)
        return _decode_add_sub_extended(word, pc)
    # op1 == 1
    if op2 == 0b0100:
        return _decode_cond_select(word, pc)
    if op2 == 0b0110:
        if bits(word, 30, 30):
            return _decode_dp1(word, pc)
        return _decode_dp2(word, pc)
    if bits(word, 24, 24) == 1:
        return _decode_dp3(word, pc)
    raise DecodeError(word, pc)


_LOGICAL_OPS = {
    (0b00, 0): ("and", lambda a, b: a & b),
    (0b00, 1): ("bic", lambda a, b: a & ~b),
    (0b01, 0): ("orr", lambda a, b: a | b),
    (0b01, 1): ("orn", lambda a, b: a | ~b),
    (0b10, 0): ("eor", lambda a, b: a ^ b),
    (0b10, 1): ("eon", lambda a, b: a ^ ~b),
    (0b11, 0): ("ands", lambda a, b: a & b),
    (0b11, 1): ("bics", lambda a, b: a & ~b),
}


def _decode_logical_shifted(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    opc = bits(word, 30, 29)
    shift_type = bits(word, 23, 22)
    neg = bits(word, 21, 21)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    amount = bits(word, 15, 10)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    if not is64 and amount >= 32:
        raise DecodeError(word, pc)
    mask = MASK64 if is64 else MASK32
    mnemonic, combine = _LOGICAL_OPS[(opc, neg)]
    set_flags = opc == 0b11

    if set_flags:
        if rd == ZR_SLOT:
            def execute(m, rn=rn, rm=rm, st=shift_type, amt=amount, is64=is64,
                        mask=mask, combine=combine):
                operand = sem.shift_operand(m.r[rm], st, amt, is64)
                m.nzcv = sem.logic_flags(combine(m.r[rn], operand) & mask, is64)
        else:
            def execute(m, rd=rd, rn=rn, rm=rm, st=shift_type, amt=amount,
                        is64=is64, mask=mask, combine=combine):
                operand = sem.shift_operand(m.r[rm], st, amt, is64)
                result = combine(m.r[rn], operand) & mask
                m.nzcv = sem.logic_flags(result, is64)
                m.r[rd] = result
        dsts = gp_deps(rd) + (DEP_NZCV,)
    else:
        dsts = gp_deps(rd)
        if rd == ZR_SLOT:
            def execute(m):
                pass
        elif amount == 0:
            def execute(m, rd=rd, rn=rn, rm=rm, mask=mask, combine=combine):
                m.r[rd] = combine(m.r[rn], m.r[rm]) & mask
        else:
            def execute(m, rd=rd, rn=rn, rm=rm, st=shift_type, amt=amount,
                        is64=is64, mask=mask, combine=combine):
                operand = sem.shift_operand(m.r[rm], st, amt, is64)
                m.r[rd] = combine(m.r[rn], operand) & mask

    shift_text = f",{SHIFT_NAMES[shift_type]} #{amount}" if amount else ""
    if mnemonic == "orr" and rn == ZR_SLOT and amount == 0:
        text = f"mov {gp_text(rd, is64)},{gp_text(rm, is64)}"
    elif mnemonic == "ands" and rd == ZR_SLOT:
        text = f"tst {gp_text(rn, is64)},{gp_text(rm, is64)}{shift_text}"
    else:
        text = (
            f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},"
            f"{gp_text(rm, is64)}{shift_text}"
        )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, gp_deps(rn, rm), dsts, execute,
    )


def _decode_add_sub_shifted(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    op = bits(word, 30, 30)
    set_flags = bits(word, 29, 29)
    shift_type = bits(word, 23, 22)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    amount = bits(word, 15, 10)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    if shift_type == 3 or (not is64 and amount >= 32):
        raise DecodeError(word, pc)
    mask = MASK64 if is64 else MASK32

    if set_flags:
        if op:  # SUBS
            if rd == ZR_SLOT:
                def execute(m, rn=rn, rm=rm, st=shift_type, amt=amount, is64=is64, mask=mask):
                    operand = sem.shift_operand(m.r[rm], st, amt, is64)
                    _r, m.nzcv = sem.add_with_flags(m.r[rn], (~operand) & mask, 1, is64)
            else:
                def execute(m, rd=rd, rn=rn, rm=rm, st=shift_type, amt=amount,
                            is64=is64, mask=mask):
                    operand = sem.shift_operand(m.r[rm], st, amt, is64)
                    result, m.nzcv = sem.add_with_flags(m.r[rn], (~operand) & mask, 1, is64)
                    m.r[rd] = result
        else:  # ADDS
            if rd == ZR_SLOT:
                def execute(m, rn=rn, rm=rm, st=shift_type, amt=amount, is64=is64):
                    operand = sem.shift_operand(m.r[rm], st, amt, is64)
                    _r, m.nzcv = sem.add_with_flags(m.r[rn], operand, 0, is64)
            else:
                def execute(m, rd=rd, rn=rn, rm=rm, st=shift_type, amt=amount, is64=is64):
                    operand = sem.shift_operand(m.r[rm], st, amt, is64)
                    result, m.nzcv = sem.add_with_flags(m.r[rn], operand, 0, is64)
                    m.r[rd] = result
        dsts = gp_deps(rd) + (DEP_NZCV,)
        mnemonic = "subs" if op else "adds"
    else:
        dsts = gp_deps(rd)
        mnemonic = "sub" if op else "add"
        if rd == ZR_SLOT:
            def execute(m):
                pass
        elif amount == 0:
            if op:
                def execute(m, rd=rd, rn=rn, rm=rm, mask=mask):
                    m.r[rd] = (m.r[rn] - m.r[rm]) & mask
            else:
                def execute(m, rd=rd, rn=rn, rm=rm, mask=mask):
                    m.r[rd] = (m.r[rn] + m.r[rm]) & mask
        else:
            sign = -1 if op else 1
            def execute(m, rd=rd, rn=rn, rm=rm, st=shift_type, amt=amount,
                        is64=is64, mask=mask, sign=sign):
                operand = sem.shift_operand(m.r[rm], st, amt, is64)
                m.r[rd] = (m.r[rn] + sign * operand) & mask

    shift_text = f",{SHIFT_NAMES[shift_type]} #{amount}" if amount else ""
    if mnemonic == "subs" and rd == ZR_SLOT:
        text = f"cmp {gp_text(rn, is64)},{gp_text(rm, is64)}{shift_text}"
    elif mnemonic == "sub" and rn == ZR_SLOT:
        text = f"neg {gp_text(rd, is64)},{gp_text(rm, is64)}{shift_text}"
    else:
        text = (
            f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},"
            f"{gp_text(rm, is64)}{shift_text}"
        )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, gp_deps(rn, rm), dsts, execute,
    )


def _decode_add_sub_extended(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    op = bits(word, 30, 30)
    set_flags = bits(word, 29, 29)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    option = bits(word, 15, 13)
    shift = bits(word, 12, 10)
    rn = gp_slot(bits(word, 9, 5), sp=True)
    rd = gp_slot(word & 0x1F, sp=not set_flags)
    is64 = bool(sf)
    mask = MASK64 if is64 else MASK32
    if shift > 4:
        raise DecodeError(word, pc)

    if set_flags:
        if op:
            def execute(m, rd=rd, rn=rn, rm=rm, option=option, shift=shift,
                        is64=is64, mask=mask):
                operand = sem.extend_operand(m.r[rm], option, shift, is64)
                result, m.nzcv = sem.add_with_flags(m.r[rn], (~operand) & mask, 1, is64)
                if rd != ZR_SLOT:
                    m.r[rd] = result
        else:
            def execute(m, rd=rd, rn=rn, rm=rm, option=option, shift=shift,
                        is64=is64, mask=mask):
                operand = sem.extend_operand(m.r[rm], option, shift, is64)
                result, m.nzcv = sem.add_with_flags(m.r[rn], operand, 0, is64)
                if rd != ZR_SLOT:
                    m.r[rd] = result
        dsts = gp_deps(rd) + (DEP_NZCV,)
        mnemonic = "subs" if op else "adds"
    else:
        sign = -1 if op else 1
        if rd == ZR_SLOT:
            def execute(m):
                pass
        else:
            def execute(m, rd=rd, rn=rn, rm=rm, option=option, shift=shift,
                        is64=is64, mask=mask, sign=sign):
                operand = sem.extend_operand(m.r[rm], option, shift, is64)
                m.r[rd] = (m.r[rn] + sign * operand) & mask
        dsts = gp_deps(rd)
        mnemonic = "sub" if op else "add"

    ext_text = f",{EXTEND_NAMES[option]}"
    if shift:
        ext_text += f" #{shift}"
    # the Rm register is a W register for byte/half/word extends
    rm_is64 = option in (3, 7)
    text = (
        f"{mnemonic} {gp_text(rd, is64, sp=not set_flags)},"
        f"{gp_text(rn, is64, sp=True)},{gp_text(rm, rm_is64)}{ext_text}"
    )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE, gp_deps(rn, rm), dsts, execute,
    )


def _decode_cond_select(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    op = bits(word, 30, 30)
    if bits(word, 29, 29):
        raise DecodeError(word, pc)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    cond = bits(word, 15, 12)
    op2 = bits(word, 11, 10)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    mask = MASK64 if is64 else MASK32
    key = (op, op2)
    if key == (0, 0):
        mnemonic = "csel"
        def alt(value, mask=mask):
            return value
    elif key == (0, 1):
        mnemonic = "csinc"
        def alt(value, mask=mask):
            return (value + 1) & mask
    elif key == (1, 0):
        mnemonic = "csinv"
        def alt(value, mask=mask):
            return (~value) & mask
    elif key == (1, 1):
        mnemonic = "csneg"
        def alt(value, mask=mask):
            return (-value) & mask
    else:  # pragma: no cover
        raise DecodeError(word, pc)

    if rd == ZR_SLOT:
        def execute(m):
            pass
    else:
        def execute(m, rd=rd, rn=rn, rm=rm, cond=cond, alt=alt):
            if condition_holds(cond, m.nzcv):
                m.r[rd] = m.r[rn]
            else:
                m.r[rd] = alt(m.r[rm])

    cname = condition_name(cond)
    if mnemonic == "csinc" and rn == ZR_SLOT and rm == ZR_SLOT:
        text = f"cset {gp_text(rd, is64)},{condition_name(cond ^ 1)}"
    else:
        text = (
            f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},"
            f"{gp_text(rm, is64)},{cname}"
        )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_SIMPLE,
        gp_deps(rn, rm) + (DEP_NZCV,), gp_deps(rd), execute,
    )


def _decode_dp1(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    if bits(word, 20, 16) != 0:
        raise DecodeError(word, pc)
    opcode = bits(word, 15, 10)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    width = 64 if is64 else 32
    mask = MASK64 if is64 else MASK32

    if opcode == 0b000000:
        mnemonic = "rbit"
        def compute(v, width=width):
            return bit_reverse(v, width)
    elif opcode == 0b000001:
        mnemonic = "rev16"
        def compute(v, width=width):
            out = 0
            for i in range(0, width, 16):
                out |= byte_reverse((v >> i) & 0xFFFF, 16) << i
            return out
    elif opcode == 0b000010:
        mnemonic = "rev32" if is64 else "rev"
        if is64:
            def compute(v):
                return (byte_reverse(v & MASK32, 32)
                        | (byte_reverse((v >> 32) & MASK32, 32) << 32))
        else:
            def compute(v):
                return byte_reverse(v & MASK32, 32)
    elif opcode == 0b000011 and is64:
        mnemonic = "rev"
        def compute(v):
            return byte_reverse(v, 64)
    elif opcode == 0b000100:
        mnemonic = "clz"
        def compute(v, width=width):
            return count_leading_zeros(v, width)
    elif opcode == 0b000101:
        mnemonic = "cls"
        def compute(v, width=width):
            return sem.count_leading_sign_bits(v, width)
    else:
        raise DecodeError(word, pc)

    if rd == ZR_SLOT:
        def execute(m):
            pass
    else:
        def execute(m, rd=rd, rn=rn, compute=compute, mask=mask):
            m.r[rd] = compute(m.r[rn] & mask) & mask
    return DecodedInst(
        pc, word, mnemonic, f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)}",
        _G.INT_SIMPLE, gp_deps(rn), gp_deps(rd), execute,
    )


def _decode_dp2(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    opcode = bits(word, 15, 10)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    width = 64 if is64 else 32
    mask = MASK64 if is64 else MASK32
    group = _G.INT_SIMPLE

    if opcode == 0b000010:  # UDIV
        mnemonic = "udiv"
        group = _G.INT_DIV
        def compute(a, b, mask=mask):
            return 0 if b == 0 else (a // b)
    elif opcode == 0b000011:  # SDIV
        mnemonic = "sdiv"
        group = _G.INT_DIV
        to_s = s64 if is64 else s32
        def compute(a, b, to_s=to_s, mask=mask):
            sa, sb = to_s(a), to_s(b)
            if sb == 0:
                return 0
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            return q & mask
    elif opcode == 0b001000:  # LSLV
        mnemonic = "lsl"
        def compute(a, b, width=width, mask=mask):
            return (a << (b % width)) & mask
    elif opcode == 0b001001:  # LSRV
        mnemonic = "lsr"
        def compute(a, b, width=width, mask=mask):
            return (a & mask) >> (b % width)
    elif opcode == 0b001010:  # ASRV
        mnemonic = "asr"
        to_s = s64 if is64 else s32
        def compute(a, b, width=width, mask=mask, to_s=to_s):
            return (to_s(a) >> (b % width)) & mask
    elif opcode == 0b001011:  # RORV
        mnemonic = "ror"
        def compute(a, b, width=width, mask=mask):
            amt = b % width
            if amt == 0:
                return a & mask
            a &= mask
            return ((a >> amt) | (a << (width - amt))) & mask
    else:
        raise DecodeError(word, pc)

    if rd == ZR_SLOT:
        def execute(m):
            pass
    else:
        def execute(m, rd=rd, rn=rn, rm=rm, compute=compute, mask=mask):
            m.r[rd] = compute(m.r[rn] & mask, m.r[rm] & mask)
    text = f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},{gp_text(rm, is64)}"
    return DecodedInst(
        pc, word, mnemonic, text, group, gp_deps(rn, rm), gp_deps(rd), execute,
    )


def _decode_dp3(word: int, pc: int) -> DecodedInst:
    sf = bits(word, 31, 31)
    op31 = bits(word, 23, 21)
    rm = gp_slot(bits(word, 20, 16), sp=False)
    o0 = bits(word, 15, 15)
    ra = gp_slot(bits(word, 14, 10), sp=False)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    rd = gp_slot(word & 0x1F, sp=False)
    is64 = bool(sf)
    mask = MASK64 if is64 else MASK32

    if op31 == 0b000:
        if o0 == 0:
            mnemonic = "madd"
            def compute(m, rn=rn, rm=rm, ra=ra, mask=mask):
                return (m.r[ra] + m.r[rn] * m.r[rm]) & mask
        else:
            mnemonic = "msub"
            def compute(m, rn=rn, rm=rm, ra=ra, mask=mask):
                return (m.r[ra] - m.r[rn] * m.r[rm]) & mask
        srcs = gp_deps(rn, rm, ra)
    elif op31 == 0b001 and is64:  # SMADDL/SMSUBL
        mnemonic = "smaddl" if o0 == 0 else "smsubl"
        sign = 1 if o0 == 0 else -1
        def compute(m, rn=rn, rm=rm, ra=ra, sign=sign):
            return u64(m.r[ra] + sign * (s32(m.r[rn]) * s32(m.r[rm])))
        srcs = gp_deps(rn, rm, ra)
    elif op31 == 0b010 and o0 == 0 and is64:  # SMULH
        mnemonic = "smulh"
        def compute(m, rn=rn, rm=rm):
            return u64((s64(m.r[rn]) * s64(m.r[rm])) >> 64)
        srcs = gp_deps(rn, rm)
    elif op31 == 0b101 and is64:  # UMADDL/UMSUBL
        mnemonic = "umaddl" if o0 == 0 else "umsubl"
        sign = 1 if o0 == 0 else -1
        def compute(m, rn=rn, rm=rm, ra=ra, sign=sign):
            return u64(m.r[ra] + sign * ((m.r[rn] & MASK32) * (m.r[rm] & MASK32)))
        srcs = gp_deps(rn, rm, ra)
    elif op31 == 0b110 and o0 == 0 and is64:  # UMULH
        mnemonic = "umulh"
        def compute(m, rn=rn, rm=rm):
            return (m.r[rn] * m.r[rm]) >> 64
        srcs = gp_deps(rn, rm)
    else:
        raise DecodeError(word, pc)

    if rd == ZR_SLOT:
        def execute(m):
            pass
    else:
        def execute(m, rd=rd, compute=compute):
            m.r[rd] = compute(m)

    if mnemonic == "madd" and ra == ZR_SLOT:
        text = f"mul {gp_text(rd, is64)},{gp_text(rn, is64)},{gp_text(rm, is64)}"
    elif mnemonic in ("smulh", "umulh"):
        text = f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},{gp_text(rm, is64)}"
    else:
        text = (
            f"{mnemonic} {gp_text(rd, is64)},{gp_text(rn, is64)},"
            f"{gp_text(rm, is64)},{gp_text(ra, is64)}"
        )
    return DecodedInst(
        pc, word, mnemonic, text, _G.INT_MUL, srcs, gp_deps(rd), execute,
    )
