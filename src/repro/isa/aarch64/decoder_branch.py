"""A64 decoder: branches, exception generation and system — bits 28:26 = 101."""

from __future__ import annotations

from repro.common import DecodeError, MASK64, bits, sext
from repro.isa.base import DEP_NZCV, DecodedInst, InstructionGroup
from repro.isa.aarch64.decoder_util import ZR_SLOT, gp_deps, gp_slot, gp_text
from repro.isa.aarch64.registers import condition_holds, condition_name

_G = InstructionGroup


def decode_branch(word: int, pc: int) -> DecodedInst:
    top = bits(word, 31, 29)
    mid = bits(word, 28, 26)
    if mid != 0b101:
        raise DecodeError(word, pc)

    if bits(word, 30, 26) == 0b00101:  # B / BL
        return _decode_b_bl(word, pc)
    if bits(word, 31, 24) == 0b01010100 and bits(word, 4, 4) == 0:
        return _decode_b_cond(word, pc)
    if bits(word, 30, 25) == 0b011010:
        return _decode_cbz(word, pc)
    if bits(word, 30, 25) == 0b011011:
        return _decode_tbz(word, pc)
    if bits(word, 31, 24) == 0b11010100:
        return _decode_exception(word, pc)
    if bits(word, 31, 22) == 0b1101010100:
        return _decode_system(word, pc)
    if bits(word, 31, 25) == 0b1101011:
        return _decode_branch_reg(word, pc)
    raise DecodeError(word, pc)


def _decode_b_bl(word: int, pc: int) -> DecodedInst:
    is_link = bits(word, 31, 31)
    offset = sext(bits(word, 25, 0), 26) << 2
    target = (pc + offset) & MASK64
    if is_link:
        link = (pc + 4) & MASK64
        def execute(m, target=target, link=link):
            m.r[30] = link
            m.pc = target
        return DecodedInst(
            pc, word, "bl", f"bl {target:#x}", _G.BRANCH, (), (30,), execute,
            is_branch=True,
        )
    def execute(m, target=target):
        m.pc = target
    return DecodedInst(
        pc, word, "b", f"b {target:#x}", _G.BRANCH, (), (), execute,
        is_branch=True,
    )


def _decode_b_cond(word: int, pc: int) -> DecodedInst:
    cond = word & 0xF
    offset = sext(bits(word, 23, 5), 19) << 2
    target = (pc + offset) & MASK64

    def execute(m, cond=cond, target=target):
        if condition_holds(cond, m.nzcv):
            m.pc = target

    name = f"b.{condition_name(cond)}"
    return DecodedInst(
        pc, word, name, f"{name} {target:#x}", _G.BRANCH, (DEP_NZCV,), (),
        execute, is_branch=True,
    )


def _decode_cbz(word: int, pc: int) -> DecodedInst:
    is64 = bool(bits(word, 31, 31))
    nonzero = bits(word, 24, 24)
    offset = sext(bits(word, 23, 5), 19) << 2
    rt = gp_slot(word & 0x1F, sp=False)
    target = (pc + offset) & MASK64
    mask = MASK64 if is64 else 0xFFFF_FFFF

    if nonzero:
        def execute(m, rt=rt, target=target, mask=mask):
            if m.r[rt] & mask:
                m.pc = target
        mnemonic = "cbnz"
    else:
        def execute(m, rt=rt, target=target, mask=mask):
            if not (m.r[rt] & mask):
                m.pc = target
        mnemonic = "cbz"
    return DecodedInst(
        pc, word, mnemonic, f"{mnemonic} {gp_text(rt, is64)},{target:#x}",
        _G.BRANCH, gp_deps(rt), (), execute, is_branch=True,
    )


def _decode_tbz(word: int, pc: int) -> DecodedInst:
    bit_pos = (bits(word, 31, 31) << 5) | bits(word, 23, 19)
    nonzero = bits(word, 24, 24)
    offset = sext(bits(word, 18, 5), 14) << 2
    rt = gp_slot(word & 0x1F, sp=False)
    target = (pc + offset) & MASK64
    probe = 1 << bit_pos

    if nonzero:
        def execute(m, rt=rt, target=target, probe=probe):
            if m.r[rt] & probe:
                m.pc = target
        mnemonic = "tbnz"
    else:
        def execute(m, rt=rt, target=target, probe=probe):
            if not (m.r[rt] & probe):
                m.pc = target
        mnemonic = "tbz"
    is64 = bit_pos >= 32
    return DecodedInst(
        pc, word, mnemonic,
        f"{mnemonic} {gp_text(rt, is64)},#{bit_pos},{target:#x}",
        _G.BRANCH, gp_deps(rt), (), execute, is_branch=True,
    )


def _decode_branch_reg(word: int, pc: int) -> DecodedInst:
    opc = bits(word, 24, 21)
    if bits(word, 20, 16) != 0b11111 or bits(word, 15, 10) != 0 or (word & 0x1F) != 0:
        raise DecodeError(word, pc)
    rn = gp_slot(bits(word, 9, 5), sp=False)
    if opc == 0b0000:
        mnemonic, link = "br", False
    elif opc == 0b0001:
        mnemonic, link = "blr", True
    elif opc == 0b0010:
        mnemonic, link = "ret", False
    else:
        raise DecodeError(word, pc)

    if link:
        lk = (pc + 4) & MASK64
        def execute(m, rn=rn, lk=lk):
            target = m.r[rn]
            m.r[30] = lk
            m.pc = target
        dsts: tuple[int, ...] = (30,)
    else:
        def execute(m, rn=rn):
            m.pc = m.r[rn]
        dsts = ()
    text = mnemonic if (mnemonic == "ret" and rn == 30) else f"{mnemonic} {gp_text(rn, True)}"
    return DecodedInst(
        pc, word, mnemonic, text, _G.BRANCH, gp_deps(rn), dsts, execute,
        is_branch=True,
    )


def _decode_exception(word: int, pc: int) -> DecodedInst:
    opc = bits(word, 23, 21)
    ll = word & 0x3
    imm16 = bits(word, 20, 5)
    if opc == 0 and ll == 1:
        def execute(m):
            m.raise_syscall()
        return DecodedInst(
            pc, word, "svc", f"svc #{imm16}", _G.SYSCALL, (), (), execute,
        )
    if opc == 0b001 and ll == 0:
        def execute(m):
            from repro.common import SimulationError
            raise SimulationError("brk executed", pc=m.pc - 4)
        return DecodedInst(
            pc, word, "brk", f"brk #{imm16}", _G.SYSCALL, (), (), execute,
        )
    raise DecodeError(word, pc)


def _decode_system(word: int, pc: int) -> DecodedInst:
    from repro.isa.aarch64.encoding import NOP

    if word == NOP:
        def execute(m):
            pass
        return DecodedInst(pc, word, "nop", "nop", _G.NOP, (), (), execute)
    # Treat barriers (DSB/DMB/ISB) as no-ops; anything else is unsupported.
    if bits(word, 31, 12) == 0b11010101000000110011:
        def execute(m):
            pass
        return DecodedInst(pc, word, "barrier", "dmb/dsb/isb", _G.NOP, (), (), execute)
    raise DecodeError(word, pc)
