"""A64 top-level decode dispatch.

Routes a 32-bit word to the per-class decoders by the architecture's
``op0`` field (bits 28:25):

====================  ============================================
op0                   class
====================  ============================================
100x                  data processing — immediate
101x                  branches, exception generation, system
x1x0                  loads and stores
x101                  data processing — register
x111                  scalar floating point (and ``movi dN,#0``)
====================  ============================================
"""

from __future__ import annotations

from repro.common import DecodeError
from repro.isa.base import DecodedInst
from repro.isa.aarch64.decoder_branch import decode_branch
from repro.isa.aarch64.decoder_dpimm import decode_dp_imm
from repro.isa.aarch64.decoder_dpreg import decode_dp_reg
from repro.isa.aarch64.decoder_fp import decode_fp
from repro.isa.aarch64.decoder_mem import decode_load_store


def decode(word: int, pc: int) -> DecodedInst:
    """Decode one A64 instruction at address ``pc``."""
    op0 = (word >> 25) & 0xF
    if op0 in (0b1000, 0b1001):
        return decode_dp_imm(word, pc)
    if op0 in (0b1010, 0b1011):
        return decode_branch(word, pc)
    if (op0 & 0b0101) == 0b0100:
        return decode_load_store(word, pc)
    if (op0 & 0b0111) == 0b0101:
        return decode_dp_reg(word, pc)
    if (op0 & 0b0111) == 0b0111:
        return decode_fp(word, pc)
    raise DecodeError(word, pc)
