"""AArch64 register names and dependency-id mapping.

General-purpose registers ``x0``–``x30`` (64-bit) / ``w0``–``w30`` (32-bit
views), the stack pointer ``sp``/``wsp``, and the zero registers
``xzr``/``wzr``. Scalar FP registers are addressed as ``d0``–``d31``
(doubles) or ``s0``–``s31`` (singles); both view the same architectural
register, exactly like hardware.

Dep-id mapping (see :mod:`repro.isa.base`): ``Xn``→n, ``SP``→31 (register
index 31 doubles as SP in memory-addressing positions, as in the real ISA),
FP n → 32+n, NZCV → 64. ``XZR`` never appears in dep lists.
"""

from __future__ import annotations

from repro.common import AssemblerError

#: Register-index constants used across the implementation.
SP = 31          # machine.r index of the stack pointer
ZR = 32          # sentinel meaning "the zero register" (NOT a machine index)
LR = 30


def parse_gp_reg(token: str, line: int | None = None) -> tuple[int, bool, bool]:
    """Parse a general-purpose register token.

    Returns ``(index, is64, is_sp_or_zr_slot)`` where index is 0–30 for
    ``Xn``/``Wn``, :data:`SP` for sp/wsp, or :data:`ZR` for xzr/wzr.
    """
    text = token.strip().lower()
    if text in ("sp", "wsp"):
        return SP, text == "sp", True
    if text in ("xzr", "wzr"):
        return ZR, text == "xzr", True
    if text and text[0] in "xw":
        try:
            num = int(text[1:])
        except ValueError:
            raise AssemblerError(f"unknown register {token!r}", line) from None
        if 0 <= num <= 30:
            return num, text[0] == "x", False
    if text == "lr":
        return LR, True, False
    raise AssemblerError(f"unknown register {token!r}", line)


def parse_fp_reg(token: str, line: int | None = None) -> tuple[int, bool]:
    """Parse an FP register token; returns ``(index, is_double)``."""
    text = token.strip().lower()
    if text and text[0] in "ds":
        try:
            num = int(text[1:])
        except ValueError:
            raise AssemblerError(f"unknown FP register {token!r}", line) from None
        if 0 <= num <= 31:
            return num, text[0] == "d"
    raise AssemblerError(f"unknown FP register {token!r}", line)


def gp_name(index: int, is64: bool, sp_slot: bool = False) -> str:
    """Canonical name for a GP register field value (31 = sp or zr by slot)."""
    if index == 31:
        if sp_slot:
            return "sp" if is64 else "wsp"
        return "xzr" if is64 else "wzr"
    return f"{'x' if is64 else 'w'}{index}"


def fp_name(index: int, is_double: bool) -> str:
    return f"{'d' if is_double else 's'}{index}"


#: AArch64 condition codes in encoding order.
CONDITION_NAMES = [
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
]

_COND_ALIASES = {"hs": "cs", "lo": "cc"}


def parse_condition(token: str, line: int | None = None) -> int:
    """Parse a condition-code name to its 4-bit encoding."""
    text = token.strip().lower()
    text = _COND_ALIASES.get(text, text)
    try:
        return CONDITION_NAMES.index(text)
    except ValueError:
        raise AssemblerError(f"unknown condition {token!r}", line) from None


def condition_name(code: int) -> str:
    return CONDITION_NAMES[code & 0xF]


def invert_condition(code: int) -> int:
    """Invert a condition code (eq<->ne, ...); AL/NV invert onto each other."""
    return code ^ 1


# NZCV bit positions within machine.nzcv (a 4-bit int).
N_BIT, Z_BIT, C_BIT, V_BIT = 8, 4, 2, 1


def condition_holds(cond: int, nzcv: int) -> bool:
    """Evaluate an AArch64 condition against the 4-bit NZCV value."""
    n = (nzcv >> 3) & 1
    z = (nzcv >> 2) & 1
    c = (nzcv >> 1) & 1
    v = nzcv & 1
    base = cond >> 1
    if base == 0:    # EQ/NE
        result = z == 1
    elif base == 1:  # CS/CC
        result = c == 1
    elif base == 2:  # MI/PL
        result = n == 1
    elif base == 3:  # VS/VC
        result = v == 1
    elif base == 4:  # HI/LS
        result = c == 1 and z == 0
    elif base == 5:  # GE/LT
        result = n == v
    elif base == 6:  # GT/LE
        result = n == v and z == 0
    else:            # AL/NV — always true
        return True
    if cond & 1:
        result = not result
    return result
