"""RV64G binary decoder.

``decode(word, pc)`` produces a :class:`repro.isa.base.DecodedInst` whose
``execute`` member is a closure with every operand field pre-extracted: the
emulation core decodes each static instruction exactly once, so all per-step
cost is inside these closures.
"""

from __future__ import annotations

import math

from repro.common import DecodeError, MASK64, s32, s64, u64
from repro.isa.base import DEP_FP_BASE, DecodedInst, InstructionGroup
from repro.isa.riscv import encoding as enc
from repro.isa.riscv import semantics as sem
from repro.isa.riscv.encoding import (
    decode_imm_b,
    decode_imm_i,
    decode_imm_j,
    decode_imm_s,
    decode_imm_u,
)
from repro.isa.riscv.registers import fp_reg_name, int_reg_name

_G = InstructionGroup

# Reverse lookup tables built once from the encoding tables.
_R_BY_KEY = {(op, f3, f7): name for name, (op, f3, f7) in enc.R_TYPE.items()}
_I_BY_KEY = {(op, f3): name for name, (op, f3) in enc.I_TYPE.items()}
_LOAD_BY_F3 = {f3: (name, size, signed) for name, (f3, size, signed, fp) in enc.LOADS.items() if not fp}
_LOAD_FP_BY_F3 = {f3: name for name, (f3, size, signed, fp) in enc.LOADS.items() if fp}
_STORE_BY_F3 = {f3: (name, size) for name, (f3, size, fp) in enc.STORES.items() if not fp}
_STORE_FP_BY_F3 = {f3: name for name, (f3, size, fp) in enc.STORES.items() if fp}
_BRANCH_BY_F3 = {f3: name for name, f3 in enc.BRANCHES.items()}
_AMO_BY_KEY = {(f5, f3): name for name, (f5, f3) in enc.AMO_OPS.items()}
_CSR_BY_F3 = {f3: name for name, f3 in enc.CSR_OPS.items()}
_CSR_NAME_BY_NUM = {num: name for name, num in enc.CSR_NUMBERS.items()}


def _ideps(*regs: int) -> tuple[int, ...]:
    """Integer-register dep ids, dropping x0."""
    return tuple(r for r in regs if r != 0)


def _fdeps(*regs: int) -> tuple[int, ...]:
    """FP-register dep ids."""
    return tuple(DEP_FP_BASE + r for r in regs)


def _x(n: int) -> str:
    return int_reg_name(n)


def _f(n: int) -> str:
    return fp_reg_name(n)


# --- integer ALU executor factories ------------------------------------------

def _make_alu_rr(name: str, rd: int, rs1: int, rs2: int):
    """R-type integer op executors. Returns (execute, group)."""
    if name == "add":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = (m.r[rs1] + m.r[rs2]) & MASK64
    elif name == "sub":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = (m.r[rs1] - m.r[rs2]) & MASK64
    elif name == "sll":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = (m.r[rs1] << (m.r[rs2] & 63)) & MASK64
    elif name == "slt":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = 1 if s64(m.r[rs1]) < s64(m.r[rs2]) else 0
    elif name == "sltu":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = 1 if m.r[rs1] < m.r[rs2] else 0
    elif name == "xor":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = m.r[rs1] ^ m.r[rs2]
    elif name == "srl":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = m.r[rs1] >> (m.r[rs2] & 63)
    elif name == "sra":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s64(m.r[rs1]) >> (m.r[rs2] & 63))
    elif name == "or":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = m.r[rs1] | m.r[rs2]
    elif name == "and":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = m.r[rs1] & m.r[rs2]
    elif name == "mul":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = (m.r[rs1] * m.r[rs2]) & MASK64
    elif name == "mulh":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.mulh(m.r[rs1], m.r[rs2])
    elif name == "mulhsu":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.mulhsu(m.r[rs1], m.r[rs2])
    elif name == "mulhu":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.mulhu(m.r[rs1], m.r[rs2])
    elif name == "div":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.div_signed(m.r[rs1], m.r[rs2])
    elif name == "divu":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.div_unsigned(m.r[rs1], m.r[rs2])
    elif name == "rem":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.rem_signed(m.r[rs1], m.r[rs2])
    elif name == "remu":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.rem_unsigned(m.r[rs1], m.r[rs2])
    elif name == "addw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s32(m.r[rs1] + m.r[rs2]))
    elif name == "subw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s32(m.r[rs1] - m.r[rs2]))
    elif name == "sllw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s32(m.r[rs1] << (m.r[rs2] & 31)))
    elif name == "srlw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s32((m.r[rs1] & 0xFFFF_FFFF) >> (m.r[rs2] & 31)))
    elif name == "sraw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s32(m.r[rs1]) >> (m.r[rs2] & 31))
    elif name == "mulw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = u64(s32(m.r[rs1] * m.r[rs2]))
    elif name == "divw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.div_signed(m.r[rs1], m.r[rs2], width=32)
    elif name == "divuw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.div_unsigned(m.r[rs1], m.r[rs2], width=32)
    elif name == "remw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.rem_signed(m.r[rs1], m.r[rs2], width=32)
    elif name == "remuw":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = sem.rem_unsigned(m.r[rs1], m.r[rs2], width=32)
    elif name == "sh1add":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = ((m.r[rs1] << 1) + m.r[rs2]) & MASK64
    elif name == "sh2add":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = ((m.r[rs1] << 2) + m.r[rs2]) & MASK64
    elif name == "sh3add":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.r[rd] = ((m.r[rs1] << 3) + m.r[rs2]) & MASK64
    else:  # pragma: no cover - table and factory are kept in sync
        raise DecodeError(0, message=f"no executor for R-type {name}")

    if name.startswith(("mul",)):
        group = _G.INT_MUL
    elif name.startswith(("div", "rem")):
        group = _G.INT_DIV
    else:
        group = _G.INT_SIMPLE
    if rd == 0:
        real_execute = execute

        def execute(m, _inner=real_execute, rd=rd):  # discard writes to x0
            saved = m.r[0]
            _inner(m)
            m.r[0] = saved
    return execute, group


def _make_alu_ri(name: str, rd: int, rs1: int, imm: int):
    """I-type integer op executors."""
    if name == "addi":
        def execute(m, rd=rd, rs1=rs1, imm=imm):
            m.r[rd] = (m.r[rs1] + imm) & MASK64
    elif name == "slti":
        def execute(m, rd=rd, rs1=rs1, imm=imm):
            m.r[rd] = 1 if s64(m.r[rs1]) < imm else 0
    elif name == "sltiu":
        def execute(m, rd=rd, rs1=rs1, imm=u64(imm)):
            m.r[rd] = 1 if m.r[rs1] < imm else 0
    elif name == "xori":
        def execute(m, rd=rd, rs1=rs1, imm=u64(imm)):
            m.r[rd] = m.r[rs1] ^ imm
    elif name == "ori":
        def execute(m, rd=rd, rs1=rs1, imm=u64(imm)):
            m.r[rd] = m.r[rs1] | imm
    elif name == "andi":
        def execute(m, rd=rd, rs1=rs1, imm=u64(imm)):
            m.r[rd] = m.r[rs1] & imm
    elif name == "addiw":
        def execute(m, rd=rd, rs1=rs1, imm=imm):
            m.r[rd] = u64(s32(m.r[rs1] + imm))
    else:  # pragma: no cover
        raise DecodeError(0, message=f"no executor for I-type {name}")
    if rd == 0:
        def execute(m):  # all I-type ALU writes to x0 are pure no-ops
            pass
    return execute


def _make_shift_imm(name: str, rd: int, rs1: int, shamt: int):
    if name == "slli":
        def execute(m, rd=rd, rs1=rs1, shamt=shamt):
            m.r[rd] = (m.r[rs1] << shamt) & MASK64
    elif name == "srli":
        def execute(m, rd=rd, rs1=rs1, shamt=shamt):
            m.r[rd] = m.r[rs1] >> shamt
    elif name == "srai":
        def execute(m, rd=rd, rs1=rs1, shamt=shamt):
            m.r[rd] = u64(s64(m.r[rs1]) >> shamt)
    elif name == "slliw":
        def execute(m, rd=rd, rs1=rs1, shamt=shamt):
            m.r[rd] = u64(s32(m.r[rs1] << shamt))
    elif name == "srliw":
        def execute(m, rd=rd, rs1=rs1, shamt=shamt):
            m.r[rd] = u64(s32((m.r[rs1] & 0xFFFF_FFFF) >> shamt))
    elif name == "sraiw":
        def execute(m, rd=rd, rs1=rs1, shamt=shamt):
            m.r[rd] = u64(s32(m.r[rs1]) >> shamt)
    else:  # pragma: no cover
        raise DecodeError(0, message=f"no executor for shift {name}")
    if rd == 0:
        def execute(m):
            pass
    return execute


def _branch_execute(name: str, rs1: int, rs2: int, target: int):
    """Build a conditional-branch executor with the comparison written
    out per condition: each condition gets its own code object, so the
    block inliner reduces the test to a plain operator instead of a
    closure call through a shared dispatcher."""
    if name == "beq":
        def execute(m, rs1=rs1, rs2=rs2, target=target):
            if m.r[rs1] == m.r[rs2]:
                m.pc = target
    elif name == "bne":
        def execute(m, rs1=rs1, rs2=rs2, target=target):
            if m.r[rs1] != m.r[rs2]:
                m.pc = target
    elif name == "blt":
        def execute(m, rs1=rs1, rs2=rs2, target=target):
            if s64(m.r[rs1]) < s64(m.r[rs2]):
                m.pc = target
    elif name == "bge":
        def execute(m, rs1=rs1, rs2=rs2, target=target):
            if s64(m.r[rs1]) >= s64(m.r[rs2]):
                m.pc = target
    elif name == "bltu":
        def execute(m, rs1=rs1, rs2=rs2, target=target):
            if m.r[rs1] < m.r[rs2]:
                m.pc = target
    else:  # bgeu
        def execute(m, rs1=rs1, rs2=rs2, target=target):
            if m.r[rs1] >= m.r[rs2]:
                m.pc = target
    return execute


def _fp_binary_execute(name: str, rd: int, rs1: int, rs2: int):
    """Executor + group for the FP_OPS table entries."""
    single = name.endswith(".s")
    if name.startswith("fadd"):
        if single:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                m.f[rd] = sem.round_f32(m.f[rs1] + m.f[rs2])
        else:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                m.f[rd] = m.f[rs1] + m.f[rs2]
        return execute, _G.FP_SIMPLE
    if name.startswith("fsub"):
        if single:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                m.f[rd] = sem.round_f32(m.f[rs1] - m.f[rs2])
        else:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                m.f[rd] = m.f[rs1] - m.f[rs2]
        return execute, _G.FP_SIMPLE
    if name.startswith("fmul"):
        if single:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                m.f[rd] = sem.round_f32(m.f[rs1] * m.f[rs2])
        else:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                m.f[rd] = m.f[rs1] * m.f[rs2]
        return execute, _G.FP_MUL
    if name.startswith("fdiv"):
        if single:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                b = m.f[rs2]
                if b == 0.0:
                    m.f[rd] = math.nan if m.f[rs1] == 0.0 else math.copysign(
                        math.inf, m.f[rs1]) * math.copysign(1.0, b)
                else:
                    m.f[rd] = sem.round_f32(m.f[rs1] / b)
        else:
            def execute(m, rd=rd, rs1=rs1, rs2=rs2):
                b = m.f[rs2]
                if b == 0.0:
                    m.f[rd] = math.nan if m.f[rs1] == 0.0 else math.copysign(
                        math.inf, m.f[rs1]) * math.copysign(1.0, b)
                else:
                    m.f[rd] = m.f[rs1] / b
        return execute, _G.FP_DIV_SQRT
    if name.startswith("fsgnj"):
        mode = {"fsgnj": "j", "fsgnjn": "jn", "fsgnjx": "jx"}[name.split(".")[0]]
        def execute(m, rd=rd, rs1=rs1, rs2=rs2, mode=mode, single=single):
            m.f[rd] = sem.fsgnj(m.f[rs1], m.f[rs2], mode, single)
        return execute, _G.FP_SIMPLE
    if name.startswith("fmin"):
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.f[rd] = sem.fmin(m.f[rs1], m.f[rs2])
        return execute, _G.FP_SIMPLE
    if name.startswith("fmax"):
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            m.f[rd] = sem.fmax(m.f[rs1], m.f[rs2])
        return execute, _G.FP_SIMPLE
    raise DecodeError(0, message=f"no executor for FP op {name}")  # pragma: no cover


def _fp_compare_execute(name: str, rd: int, rs1: int, rs2: int):
    op = name.split(".")[0]
    if op == "feq":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            a, b = m.f[rs1], m.f[rs2]
            m.r[rd] = 1 if (a == b and not math.isnan(a) and not math.isnan(b)) else 0
    elif op == "flt":
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            a, b = m.f[rs1], m.f[rs2]
            m.r[rd] = 1 if (not math.isnan(a) and not math.isnan(b) and a < b) else 0
    else:  # fle
        def execute(m, rd=rd, rs1=rs1, rs2=rs2):
            a, b = m.f[rs1], m.f[rs2]
            m.r[rd] = 1 if (not math.isnan(a) and not math.isnan(b) and a <= b) else 0
    if rd == 0:
        def execute(m):
            pass
    return execute


_INT_BOUNDS = {
    "w": (sem.INT32_MIN, sem.INT32_MAX),
    "wu": (0, sem.UINT32_MAX),
    "l": (sem.INT64_MIN, sem.INT64_MAX),
    "lu": (0, sem.UINT64_MAX),
}


def _fp_unary_execute(name: str, rd: int, rs1: int, rm: int):
    """Executors for FP_UNARY table entries (sqrt, cvt, fmv, fclass)."""
    if name.startswith("fsqrt"):
        if name.endswith(".s"):
            def execute(m, rd=rd, rs1=rs1):
                m.f[rd] = sem.round_f32(sem.fsqrt(m.f[rs1]))
        else:
            def execute(m, rd=rd, rs1=rs1):
                m.f[rd] = sem.fsqrt(m.f[rs1])
        return execute, _G.FP_DIV_SQRT, _fdeps(rs1), _fdeps(rd)
    if name == "fcvt.s.d":
        def execute(m, rd=rd, rs1=rs1):
            m.f[rd] = sem.round_f32(m.f[rs1])
        return execute, _G.FP_CVT, _fdeps(rs1), _fdeps(rd)
    if name == "fcvt.d.s":
        def execute(m, rd=rd, rs1=rs1):
            m.f[rd] = m.f[rs1]
        return execute, _G.FP_CVT, _fdeps(rs1), _fdeps(rd)
    if name.startswith("fcvt.") and name.split(".")[1] in ("w", "wu", "l", "lu"):
        # FP -> integer
        lo, hi = _INT_BOUNDS[name.split(".")[1]]
        narrow = name.split(".")[1] in ("w", "wu")
        def execute(m, rd=rd, rs1=rs1, rm=rm, lo=lo, hi=hi, narrow=narrow):
            result = sem.fp_to_int(m.f[rs1], rm, lo, hi)
            m.r[rd] = u64(s32(result)) if narrow else u64(result)
        if rd == 0:
            def execute(m):
                pass
        return execute, _G.FP_CVT, _fdeps(rs1), _ideps(rd)
    if name.startswith("fcvt."):
        # integer -> FP: fcvt.{s,d}.{w,wu,l,lu}
        src_kind = name.split(".")[2]
        single = name.split(".")[1] == "s"
        if src_kind == "w":
            def convert(v):
                return float(s32(v))
        elif src_kind == "wu":
            def convert(v):
                return float(v & 0xFFFF_FFFF)
        elif src_kind == "l":
            def convert(v):
                return float(s64(v))
        else:
            def convert(v):
                return float(v)
        if single:
            def execute(m, rd=rd, rs1=rs1, convert=convert):
                m.f[rd] = sem.round_f32(convert(m.r[rs1]))
        else:
            def execute(m, rd=rd, rs1=rs1, convert=convert):
                m.f[rd] = convert(m.r[rs1])
        return execute, _G.FP_CVT, _ideps(rs1), _fdeps(rd)
    if name == "fmv.x.d":
        def execute(m, rd=rd, rs1=rs1):
            from repro.common import f64_to_bits
            m.r[rd] = f64_to_bits(m.f[rs1])
        if rd == 0:
            def execute(m):
                pass
        return execute, _G.FP_MOVE, _fdeps(rs1), _ideps(rd)
    if name == "fmv.d.x":
        def execute(m, rd=rd, rs1=rs1):
            from repro.common import bits_to_f64
            m.f[rd] = bits_to_f64(m.r[rs1])
        return execute, _G.FP_MOVE, _ideps(rs1), _fdeps(rd)
    if name == "fmv.x.w":
        def execute(m, rd=rd, rs1=rs1):
            from repro.common import f32_to_bits
            m.r[rd] = u64(s32(f32_to_bits(m.f[rs1])))
        if rd == 0:
            def execute(m):
                pass
        return execute, _G.FP_MOVE, _fdeps(rs1), _ideps(rd)
    if name == "fmv.w.x":
        def execute(m, rd=rd, rs1=rs1):
            from repro.common import bits_to_f32
            m.f[rd] = bits_to_f32(m.r[rs1])
        return execute, _G.FP_MOVE, _ideps(rs1), _fdeps(rd)
    if name.startswith("fclass"):
        single = name.endswith(".s")
        def execute(m, rd=rd, rs1=rs1, single=single):
            m.r[rd] = sem.fclass(m.f[rs1], single)
        if rd == 0:
            def execute(m):
                pass
        return execute, _G.FP_SIMPLE, _fdeps(rs1), _ideps(rd)
    raise DecodeError(0, message=f"no executor for FP unary {name}")  # pragma: no cover


def _make_fma(name: str, rd: int, rs1: int, rs2: int, rs3: int):
    single = name.endswith(".s")
    kind = name.split(".")[0]
    if kind == "fmadd":
        def raw(a, b, c):
            return a * b + c
    elif kind == "fmsub":
        def raw(a, b, c):
            return a * b - c
    elif kind == "fnmsub":
        def raw(a, b, c):
            return -(a * b) + c
    else:  # fnmadd
        def raw(a, b, c):
            return -(a * b) - c
    if single:
        def execute(m, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, raw=raw):
            m.f[rd] = sem.round_f32(raw(m.f[rs1], m.f[rs2], m.f[rs3]))
    else:
        def execute(m, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, raw=raw):
            m.f[rd] = raw(m.f[rs1], m.f[rs2], m.f[rs3])
    return execute


def _make_amo(name: str, rd: int, rs1: int, rs2: int):
    """LR/SC and AMO executors. Word forms sign-extend their result."""
    wide = name.endswith(".d")
    size = 8 if wide else 4

    def read(m, addr):
        v = m.memory.load(addr, size)
        return v if wide else u64(s32(v))

    if name.startswith("lr"):
        def execute(m, rd=rd, rs1=rs1, size=size):
            addr = m.r[rs1]
            m.reservation = addr
            value = m.memory.load(addr, size)
            m.r[rd] = value if size == 8 else u64(s32(value))
        if rd == 0:
            def execute(m, rs1=rs1, size=size):
                m.reservation = m.r[rs1]
                m.memory.load(m.r[rs1], size)
        return execute, True, False
    if name.startswith("sc"):
        def execute(m, rd=rd, rs1=rs1, rs2=rs2, size=size):
            addr = m.r[rs1]
            if m.reservation == addr:
                m.memory.store(addr, size, m.r[rs2] & ((1 << (size * 8)) - 1))
                result = 0
            else:
                result = 1
            m.reservation = None
            if rd != 0:
                m.r[rd] = result
        return execute, False, True

    ops = {
        "amoswap": lambda old, new: new,
        "amoadd": lambda old, new: old + new,
        "amoxor": lambda old, new: old ^ new,
        "amoand": lambda old, new: old & new,
        "amoor": lambda old, new: old | new,
        "amomin": lambda old, new: old if s64(old) <= s64(new) else new,
        "amomax": lambda old, new: old if s64(old) >= s64(new) else new,
        "amominu": lambda old, new: min(old, new),
        "amomaxu": lambda old, new: max(old, new),
    }
    op = ops[name.split(".")[0]]
    mask = (1 << (size * 8)) - 1

    def execute(m, rd=rd, rs1=rs1, rs2=rs2, size=size, op=op, mask=mask):
        addr = m.r[rs1]
        old = m.memory.load(addr, size)
        old_ext = old if size == 8 else u64(s32(old))
        new = op(old_ext, m.r[rs2]) & mask
        m.memory.store(addr, size, new)
        if rd != 0:
            m.r[rd] = old_ext

    return execute, True, True


def decode(word: int, pc: int) -> DecodedInst:
    """Decode one 32-bit RV64G instruction at address ``pc``."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == enc.OP_IMM or opcode == enc.OP_IMM32:
        if funct3 in (0b001, 0b101):  # shifts
            shamt_bits = 6 if opcode == enc.OP_IMM else 5
            shamt = (word >> 20) & ((1 << shamt_bits) - 1)
            funct = (word >> (20 + shamt_bits)) & ((1 << (12 - shamt_bits)) - 1)
            for name, (op_, f3, f_high, sh_bits) in enc.SHIFT_IMM.items():
                if op_ == opcode and f3 == funct3 and f_high == funct and sh_bits == shamt_bits:
                    execute = _make_shift_imm(name, rd, rs1, shamt)
                    return DecodedInst(
                        pc, word, name, f"{name} {_x(rd)},{_x(rs1)},{shamt}",
                        _G.INT_SIMPLE, _ideps(rs1), _ideps(rd), execute,
                    )
            raise DecodeError(word, pc)
        imm = decode_imm_i(word)
        name = _I_BY_KEY.get((opcode, funct3))
        if name is None or name == "jalr":
            raise DecodeError(word, pc)
        execute = _make_alu_ri(name, rd, rs1, imm)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rd)},{_x(rs1)},{imm}",
            _G.INT_SIMPLE, _ideps(rs1), _ideps(rd), execute,
        )

    if opcode == enc.OP_REG or opcode == enc.OP_REG32:
        name = _R_BY_KEY.get((opcode, funct3, funct7))
        if name is None:
            raise DecodeError(word, pc)
        execute, group = _make_alu_rr(name, rd, rs1, rs2)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rd)},{_x(rs1)},{_x(rs2)}",
            group, _ideps(rs1, rs2), _ideps(rd), execute,
        )

    if opcode == enc.OP_LUI:
        imm = decode_imm_u(word)
        value = u64(imm << 12)
        def execute(m, rd=rd, value=value):
            m.r[rd] = value
        if rd == 0:
            def execute(m):
                pass
        return DecodedInst(
            pc, word, "lui", f"lui {_x(rd)},{imm & 0xFFFFF:#x}",
            _G.INT_SIMPLE, (), _ideps(rd), execute,
        )

    if opcode == enc.OP_AUIPC:
        imm = decode_imm_u(word)
        value = u64(pc + (imm << 12))
        def execute(m, rd=rd, value=value):
            m.r[rd] = value
        if rd == 0:
            def execute(m):
                pass
        return DecodedInst(
            pc, word, "auipc", f"auipc {_x(rd)},{imm & 0xFFFFF:#x}",
            _G.INT_SIMPLE, (), _ideps(rd), execute,
        )

    if opcode == enc.OP_JAL:
        offset = decode_imm_j(word)
        target = u64(pc + offset)
        link = u64(pc + 4)
        if rd == 0:
            def execute(m, target=target):
                m.pc = target
        else:
            def execute(m, rd=rd, target=target, link=link):
                m.r[rd] = link
                m.pc = target
        return DecodedInst(
            pc, word, "jal", f"jal {_x(rd)},{target:#x}",
            _G.BRANCH, (), _ideps(rd), execute, is_branch=True,
        )

    if opcode == enc.OP_JALR and funct3 == 0:
        imm = decode_imm_i(word)
        link = u64(pc + 4)
        if rd == 0:
            def execute(m, rs1=rs1, imm=imm):
                m.pc = (m.r[rs1] + imm) & ~1 & MASK64
        else:
            def execute(m, rd=rd, rs1=rs1, imm=imm, link=link):
                target = (m.r[rs1] + imm) & ~1 & MASK64
                m.r[rd] = link
                m.pc = target
        return DecodedInst(
            pc, word, "jalr", f"jalr {_x(rd)},{imm}({_x(rs1)})",
            _G.BRANCH, _ideps(rs1), _ideps(rd), execute, is_branch=True,
        )

    if opcode == enc.OP_BRANCH:
        name = _BRANCH_BY_F3.get(funct3)
        if name is None:
            raise DecodeError(word, pc)
        offset = decode_imm_b(word)
        target = u64(pc + offset)
        execute = _branch_execute(name, rs1, rs2, target)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rs1)},{_x(rs2)},{target:#x}",
            _G.BRANCH, _ideps(rs1, rs2), (), execute, is_branch=True,
        )

    if opcode == enc.OP_LOAD:
        entry = _LOAD_BY_F3.get(funct3)
        if entry is None:
            raise DecodeError(word, pc)
        name, size, signed = entry
        imm = decode_imm_i(word)
        def execute(m, rd=rd, rs1=rs1, imm=imm, size=size, signed=signed):
            value = m.memory.load((m.r[rs1] + imm) & MASK64, size, signed)
            m.r[rd] = value & MASK64
        if rd == 0:
            def execute(m, rs1=rs1, imm=imm, size=size):
                m.memory.load((m.r[rs1] + imm) & MASK64, size)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rd)},{imm}({_x(rs1)})",
            _G.LOAD, _ideps(rs1), _ideps(rd), execute, is_load=True,
        )

    if opcode == enc.OP_STORE:
        entry = _STORE_BY_F3.get(funct3)
        if entry is None:
            raise DecodeError(word, pc)
        name, size = entry
        imm = decode_imm_s(word)
        mask = (1 << (size * 8)) - 1
        def execute(m, rs1=rs1, rs2=rs2, imm=imm, size=size, mask=mask):
            m.memory.store((m.r[rs1] + imm) & MASK64, size, m.r[rs2] & mask)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rs2)},{imm}({_x(rs1)})",
            _G.STORE, _ideps(rs1, rs2), (), execute, is_store=True,
        )

    if opcode == enc.OP_LOAD_FP:
        name = _LOAD_FP_BY_F3.get(funct3)
        if name is None:
            raise DecodeError(word, pc)
        imm = decode_imm_i(word)
        if name == "fld":
            def execute(m, rd=rd, rs1=rs1, imm=imm):
                m.f[rd] = m.memory.load_f64((m.r[rs1] + imm) & MASK64)
        else:
            def execute(m, rd=rd, rs1=rs1, imm=imm):
                m.f[rd] = m.memory.load_f32((m.r[rs1] + imm) & MASK64)
        return DecodedInst(
            pc, word, name, f"{name} {_f(rd)},{imm}({_x(rs1)})",
            _G.LOAD, _ideps(rs1), _fdeps(rd), execute, is_load=True,
        )

    if opcode == enc.OP_STORE_FP:
        name = _STORE_FP_BY_F3.get(funct3)
        if name is None:
            raise DecodeError(word, pc)
        imm = decode_imm_s(word)
        if name == "fsd":
            def execute(m, rs1=rs1, rs2=rs2, imm=imm):
                m.memory.store_f64((m.r[rs1] + imm) & MASK64, m.f[rs2])
        else:
            def execute(m, rs1=rs1, rs2=rs2, imm=imm):
                m.memory.store_f32((m.r[rs1] + imm) & MASK64, m.f[rs2])
        return DecodedInst(
            pc, word, name, f"{name} {_f(rs2)},{imm}({_x(rs1)})",
            _G.STORE, _ideps(rs1) + _fdeps(rs2), (), execute, is_store=True,
        )

    if opcode == enc.OP_FP:
        rm = funct3
        # Two-source FP ops and compares
        for name, (f7, f3) in enc.FP_OPS.items():
            if f7 != funct7:
                continue
            if f3 is not None and f3 != funct3:
                continue
            if name.startswith(("feq", "flt", "fle")):
                execute = _fp_compare_execute(name, rd, rs1, rs2)
                return DecodedInst(
                    pc, word, name, f"{name} {_x(rd)},{_f(rs1)},{_f(rs2)}",
                    _G.FP_SIMPLE, _fdeps(rs1, rs2), _ideps(rd), execute,
                )
            execute, group = _fp_binary_execute(name, rd, rs1, rs2)
            return DecodedInst(
                pc, word, name, f"{name} {_f(rd)},{_f(rs1)},{_f(rs2)}",
                group, _fdeps(rs1, rs2), _fdeps(rd), execute,
            )
        # Unary / conversion ops keyed by (funct7, rs2 field)
        for name, (f7, rs2_field) in enc.FP_UNARY.items():
            if f7 != funct7:
                continue
            if name.startswith("fclass"):
                if funct3 != 0b001:
                    continue
            elif name.startswith("fmv."):
                if funct3 != 0b000:
                    continue
                if rs2 != rs2_field:
                    continue
            elif name.startswith(("fsqrt", "fcvt")):
                if rs2 != rs2_field:
                    continue
            execute, group, srcs, dsts = _fp_unary_execute(name, rd, rs1, rm)
            dst_is_fp = name.startswith(("fsqrt", "fcvt.s", "fcvt.d", "fmv.d", "fmv.w"))
            src_is_fp = not name.startswith(("fcvt.s.w", "fcvt.s.l", "fcvt.d.w",
                                             "fcvt.d.l", "fmv.d.x", "fmv.w.x"))
            dst_name = _f(rd) if dst_is_fp else _x(rd)
            src_name = _f(rs1) if src_is_fp else _x(rs1)
            return DecodedInst(
                pc, word, name, f"{name} {dst_name},{src_name}",
                group, srcs, dsts, execute,
            )
        raise DecodeError(word, pc)

    if opcode in (enc.OP_FMADD, enc.OP_FMSUB, enc.OP_FNMSUB, enc.OP_FNMADD):
        fmt2 = (word >> 25) & 0x3
        rs3 = (word >> 27) & 0x1F
        for name, (op_, f2) in enc.FMA_OPS.items():
            if op_ == opcode and f2 == fmt2:
                execute = _make_fma(name, rd, rs1, rs2, rs3)
                return DecodedInst(
                    pc, word, name,
                    f"{name} {_f(rd)},{_f(rs1)},{_f(rs2)},{_f(rs3)}",
                    _G.FP_MUL, _fdeps(rs1, rs2, rs3), _fdeps(rd), execute,
                )
        raise DecodeError(word, pc)

    if opcode == enc.OP_AMO:
        funct5 = (word >> 27) & 0x1F
        name = _AMO_BY_KEY.get((funct5, funct3))
        if name is None:
            raise DecodeError(word, pc)
        execute, is_load, is_store = _make_amo(name, rd, rs1, rs2)
        srcs = _ideps(rs1) if name.startswith("lr") else _ideps(rs1, rs2)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rd)},{_x(rs2)},({_x(rs1)})",
            _G.ATOMIC, srcs, _ideps(rd), execute,
            is_load=is_load, is_store=is_store,
        )

    if opcode == enc.OP_FENCE:
        def execute(m):
            pass
        return DecodedInst(pc, word, "fence", "fence", _G.NOP, (), (), execute)

    if opcode == enc.OP_SYSTEM:
        if funct3 == 0:
            imm = (word >> 20) & 0xFFF
            if imm == 0 and rs1 == 0 and rd == 0:
                def execute(m):
                    m.raise_syscall()
                return DecodedInst(
                    pc, word, "ecall", "ecall", _G.SYSCALL, (), (), execute
                )
            if imm == 1 and rs1 == 0 and rd == 0:
                def execute(m):
                    from repro.common import SimulationError
                    raise SimulationError("ebreak executed", pc=m.pc - 4)
                return DecodedInst(
                    pc, word, "ebreak", "ebreak", _G.SYSCALL, (), (), execute
                )
            raise DecodeError(word, pc)
        name = _CSR_BY_F3.get(funct3)
        if name is None:
            raise DecodeError(word, pc)
        csr = (word >> 20) & 0xFFF
        csr_name = _CSR_NAME_BY_NUM.get(csr, f"{csr:#x}")
        immediate_form = funct3 >= 0b101
        op = name.rstrip("i")[-1]  # 'w', 's' or 'c'

        def execute(m, rd=rd, rs1=rs1, csr=csr, op=op, immediate_form=immediate_form):
            old = m.read_csr(csr)
            operand = rs1 if immediate_form else m.r[rs1]
            if op == "w":
                new = operand
            elif op == "s":
                new = old | operand
            else:
                new = old & ~operand
            if not (op != "w" and (rs1 == 0)):
                m.write_csr(csr, new & MASK64)
            if rd != 0:
                m.r[rd] = old

        operand_text = str(rs1) if immediate_form else _x(rs1)
        return DecodedInst(
            pc, word, name, f"{name} {_x(rd)},{csr_name},{operand_text}",
            _G.INT_SIMPLE, () if immediate_form else _ideps(rs1), _ideps(rd),
            execute,
        )

    raise DecodeError(word, pc)
