"""Arithmetic semantics helpers for RV64G.

These are split from the decoder so corner cases (division overflow,
high-multiply, FP→int conversion rounding and saturation, NaN handling in
min/max, sign injection) can be unit-tested in isolation.

All integer helpers take and return *unsigned* 64-bit patterns.
"""

from __future__ import annotations

import math

from repro.common import (
    MASK32,
    MASK64,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    s32,
    s64,
    u64,
)
from repro.isa.riscv.encoding import RM_RTZ

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1
UINT64_MAX = MASK64
UINT32_MAX = MASK32


def _trunc_div(a: int, b: int) -> int:
    """C-style (truncate-toward-zero) integer division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def div_signed(a_bits: int, b_bits: int, width: int = 64) -> int:
    """``div``/``divw``: signed division with RISC-V corner cases.

    Division by zero returns all ones; overflow (INT_MIN / -1) returns
    INT_MIN. Result is the unsigned ``width``-bit pattern, sign-extended to
    64 bits for W-form.
    """
    to_signed = s64 if width == 64 else s32
    a, b = to_signed(a_bits), to_signed(b_bits)
    if b == 0:
        return MASK64
    int_min = INT64_MIN if width == 64 else INT32_MIN
    if a == int_min and b == -1:
        return u64(int_min)
    return u64(_trunc_div(a, b))


def rem_signed(a_bits: int, b_bits: int, width: int = 64) -> int:
    """``rem``/``remw``: signed remainder (sign follows the dividend)."""
    to_signed = s64 if width == 64 else s32
    a, b = to_signed(a_bits), to_signed(b_bits)
    if b == 0:
        return u64(a)
    int_min = INT64_MIN if width == 64 else INT32_MIN
    if a == int_min and b == -1:
        return 0
    return u64(a - _trunc_div(a, b) * b)


def div_unsigned(a_bits: int, b_bits: int, width: int = 64) -> int:
    """``divu``/``divuw``: unsigned division; /0 returns all ones."""
    mask = MASK64 if width == 64 else MASK32
    a, b = a_bits & mask, b_bits & mask
    if b == 0:
        return MASK64
    return u64(s32(a // b)) if width == 32 else (a // b)


def rem_unsigned(a_bits: int, b_bits: int, width: int = 64) -> int:
    """``remu``/``remuw``: unsigned remainder; /0 returns the dividend."""
    mask = MASK64 if width == 64 else MASK32
    a, b = a_bits & mask, b_bits & mask
    if b == 0:
        return u64(s32(a)) if width == 32 else a
    return u64(s32(a % b)) if width == 32 else (a % b)


def mulh(a_bits: int, b_bits: int) -> int:
    """High 64 bits of the signed×signed 128-bit product."""
    return u64((s64(a_bits) * s64(b_bits)) >> 64)


def mulhu(a_bits: int, b_bits: int) -> int:
    """High 64 bits of the unsigned×unsigned 128-bit product."""
    return ((a_bits & MASK64) * (b_bits & MASK64)) >> 64


def mulhsu(a_bits: int, b_bits: int) -> int:
    """High 64 bits of the signed×unsigned 128-bit product."""
    return u64((s64(a_bits) * (b_bits & MASK64)) >> 64)


def round_f32(value: float) -> float:
    """Round a double to the nearest representable float32 (kept as double).

    The FP register file stores Python floats; single-precision operations
    apply this after every arithmetic step so results match a real FPU's
    float32 results.
    """
    return bits_to_f32(f32_to_bits(value))


def fp_to_int(value: float, rm: int, lo: int, hi: int) -> int:
    """FP→integer conversion with RISC-V rounding and saturation.

    NaN and +overflow saturate to ``hi``; -overflow saturates to ``lo``.
    ``rm`` is the 3-bit rounding-mode field (DYN is treated as RNE, which is
    the frm reset value).
    """
    if math.isnan(value):
        return hi
    if math.isinf(value):
        return hi if value > 0 else lo
    if rm == RM_RTZ:
        result = math.trunc(value)
    elif rm == 0b010:  # RDN
        result = math.floor(value)
    elif rm == 0b011:  # RUP
        result = math.ceil(value)
    elif rm == 0b100:  # RMM (round half away from zero)
        result = math.floor(value + 0.5) if value >= 0 else math.ceil(value - 0.5)
    else:  # RNE or DYN
        result = round(value)
    return max(lo, min(hi, result))


def fsgnj(a: float, b: float, mode: str, single: bool) -> float:
    """Sign-injection family: ``fsgnj`` (copy), ``fsgnjn`` (negate),
    ``fsgnjx`` (xor). Operates on raw sign bits so it is NaN-transparent."""
    if single:
        abits, bbits = f32_to_bits(a), f32_to_bits(b)
        sign_bit = 1 << 31
        from_bits = bits_to_f32
        mask = MASK32
    else:
        abits, bbits = f64_to_bits(a), f64_to_bits(b)
        sign_bit = 1 << 63
        from_bits = bits_to_f64
        mask = MASK64
    if mode == "j":
        sign = bbits & sign_bit
    elif mode == "jn":
        sign = (bbits & sign_bit) ^ sign_bit
    else:  # jx
        sign = (abits ^ bbits) & sign_bit
    return from_bits(((abits & ~sign_bit) | sign) & mask)


def fmin(a: float, b: float) -> float:
    """RISC-V fmin: NaN-aware, and -0.0 is smaller than +0.0."""
    a_nan, b_nan = math.isnan(a), math.isnan(b)
    if a_nan and b_nan:
        return math.nan
    if a_nan:
        return b
    if b_nan:
        return a
    if a == b == 0.0:
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def fmax(a: float, b: float) -> float:
    """RISC-V fmax: NaN-aware, and +0.0 is larger than -0.0."""
    a_nan, b_nan = math.isnan(a), math.isnan(b)
    if a_nan and b_nan:
        return math.nan
    if a_nan:
        return b
    if b_nan:
        return a
    if a == b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def fclass(value: float, single: bool) -> int:
    """``fclass``: 10-bit classification mask per the RISC-V spec."""
    if math.isnan(value):
        # bit 8: signaling NaN, bit 9: quiet NaN. Python floats are quiet.
        return 1 << 9
    sign_negative = math.copysign(1.0, value) < 0
    if math.isinf(value):
        return (1 << 0) if sign_negative else (1 << 7)
    if value == 0.0:
        return (1 << 3) if sign_negative else (1 << 4)
    # subnormal boundaries
    min_normal = 1.17549435082228751e-38 if single else 2.2250738585072014e-308
    if abs(value) < min_normal:
        return (1 << 2) if sign_negative else (1 << 5)
    return (1 << 1) if sign_negative else (1 << 6)


def fsqrt(value: float) -> float:
    """Square root; negative inputs produce a quiet NaN (invalid op)."""
    if value < 0.0:
        return math.nan
    return math.sqrt(value)
