"""RV64G (IMAFD + minimal Zicsr) instruction set implementation.

The paper targets ``-march=rv64g`` *without* the compressed (C) extension,
so every instruction here is a fixed 32-bit word.
"""

from repro.isa.riscv.isa import RV64

__all__ = ["RV64"]
