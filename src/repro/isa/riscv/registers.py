"""RISC-V register names and dependency-id mapping.

Integer registers ``x0``–``x31`` (with standard ABI aliases) and FP
registers ``f0``–``f31``. Dep ids follow :mod:`repro.isa.base`: integer
register *n* maps to dep id *n* (``x0`` excluded from dependence tracking),
FP register *n* maps to ``32 + n``.
"""

from __future__ import annotations

from repro.common import AssemblerError

#: ABI names in register-number order (x0..x31).
INT_ABI_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

#: ABI names for f0..f31.
FP_ABI_NAMES = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
]

_INT_LOOKUP: dict[str, int] = {}
_FP_LOOKUP: dict[str, int] = {}

for _i, _name in enumerate(INT_ABI_NAMES):
    _INT_LOOKUP[_name] = _i
    _INT_LOOKUP[f"x{_i}"] = _i
_INT_LOOKUP["fp"] = 8  # alternative name for s0

for _i, _name in enumerate(FP_ABI_NAMES):
    _FP_LOOKUP[_name] = _i
    _FP_LOOKUP[f"f{_i}"] = _i


def parse_int_reg(token: str, line: int | None = None) -> int:
    """Parse an integer register name to its number (0–31)."""
    reg = _INT_LOOKUP.get(token.strip().lower())
    if reg is None:
        raise AssemblerError(f"unknown integer register {token!r}", line)
    return reg


def parse_fp_reg(token: str, line: int | None = None) -> int:
    """Parse an FP register name to its number (0–31)."""
    reg = _FP_LOOKUP.get(token.strip().lower())
    if reg is None:
        raise AssemblerError(f"unknown FP register {token!r}", line)
    return reg


def int_reg_name(num: int) -> str:
    """Canonical (ABI) name for integer register ``num``."""
    return INT_ABI_NAMES[num]


def fp_reg_name(num: int) -> str:
    """Canonical (ABI) name for FP register ``num``."""
    return FP_ABI_NAMES[num]
