"""RV64G instruction encoder: one parsed assembly line → machine words.

Handles all real RV64G instructions plus the standard pseudo-instructions
(``li``, ``la``, ``mv``, ``call``, ``ret``, ``beqz``, ``fneg.d``, ...). The
generic two-pass assembler (:mod:`repro.asm`) owns labels, sections and
directives; this module only encodes instructions, asking the assembly
context to resolve symbols.

One deliberate simplification: ``call``/``tail`` always expand to a single
``jal`` (our statically linked programs fit comfortably within ±1 MiB), where
GCC+ld may emit an ``auipc``+``jalr`` pair and relax it. Path-length effects
are identical to the relaxed form.
"""

from __future__ import annotations

from typing import Sequence

from repro.common import AssemblerError, fits_signed, s64, u64
from repro.isa.base import AssemblyContext
from repro.isa.riscv import encoding as enc
from repro.isa.riscv.registers import parse_fp_reg, parse_int_reg

ZERO, RA = 0, 1


def parse_immediate(token: str) -> int:
    """Parse an integer literal (decimal or 0x hex, optionally signed)."""
    text = token.strip().lower().replace("_", "")
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"invalid immediate {token!r}") from None


def _imm_or_label(token: str, ctx: AssemblyContext) -> int:
    """Resolve a token that may be a literal or a symbol to an absolute value."""
    token = token.strip()
    try:
        return parse_immediate(token)
    except AssemblerError:
        return ctx.lookup(token)


def parse_mem_operand(token: str) -> tuple[int, str]:
    """Split ``imm(reg)`` into (imm, reg-token); bare ``(reg)`` means imm 0."""
    token = token.strip()
    if not token.endswith(")"):
        raise AssemblerError(f"expected mem operand 'imm(reg)', got {token!r}")
    open_paren = token.index("(")
    imm_text = token[:open_paren].strip()
    reg_text = token[open_paren + 1 : -1].strip()
    imm = parse_immediate(imm_text) if imm_text else 0
    return imm, reg_text


def li_expansion(rd: int, value: int) -> list[tuple]:
    """Expand ``li rd, value`` into real instructions.

    Returns a list of (mnemonic, args...) tuples in a private mini-format
    consumed by :func:`_encode_expanded`. Mirrors the standard GNU assembler
    materialization: addi / lui+addiw for 32-bit values, and a recursive
    lui/addi/slli ladder for wider constants.
    """
    value = s64(u64(value))
    if fits_signed(value, 12):
        return [("addi", rd, ZERO, value)]
    if fits_signed(value, 32):
        lo12 = s64(u64(value) & 0xFFF) if (value & 0x800) == 0 else (value & 0xFFF) - 0x1000
        hi20 = (value - lo12) >> 12
        seq: list[tuple] = [("lui", rd, hi20 & 0xFFFFF)]
        if lo12:
            seq.append(("addiw", rd, rd, lo12))
        return seq
    lo12 = value & 0xFFF
    if lo12 & 0x800:
        lo12 -= 0x1000
    rest = (value - lo12) >> 12
    seq = li_expansion(rd, rest)
    seq.append(("slli", rd, rd, 12))
    if lo12:
        seq.append(("addi", rd, rd, lo12))
    return seq


def _encode_expanded(step: tuple) -> int:
    """Encode one li_expansion step."""
    name = step[0]
    if name == "addi" or name == "addiw":
        op, f3 = enc.I_TYPE[name]
        return enc.encode_i(op, step[1], f3, step[2], step[3])
    if name == "lui":
        imm20 = step[2]
        if imm20 & 0x80000:
            imm20 -= 0x100000
        return enc.encode_u(enc.OP_LUI, step[1], imm20)
    if name == "slli":
        op, f3, fh, _bits = enc.SHIFT_IMM["slli"]
        return enc.encode_i(op, step[1], f3, step[2], (fh << 6) | step[3])
    raise AssemblerError(f"internal: unknown expansion step {name}")  # pragma: no cover


def _split_hi_lo(delta: int) -> tuple[int, int]:
    """Split a PC-relative delta into (hi20, lo12) for auipc+addi."""
    lo12 = delta & 0xFFF
    if lo12 & 0x800:
        lo12 -= 0x1000
    hi20 = (delta - lo12) >> 12
    if not -(1 << 19) <= hi20 < (1 << 20):
        raise AssemblerError(f"pc-relative delta {delta} out of auipc range")
    return hi20, lo12


_ARITH_PSEUDOS: dict[str, tuple] = {
    # name -> (real mnemonic, operand template); 'd','s','t' = passthrough
    "mv": ("addi", ("d", "s", "0")),
    "not": ("xori", ("d", "s", "-1")),
    "neg": ("sub", ("d", "zero", "s")),
    "negw": ("subw", ("d", "zero", "s")),
    "sext.w": ("addiw", ("d", "s", "0")),
    "seqz": ("sltiu", ("d", "s", "1")),
    "snez": ("sltu", ("d", "zero", "s")),
    "sltz": ("slt", ("d", "s", "zero")),
    "sgtz": ("slt", ("d", "zero", "s")),
}

_BRANCH_ZERO_PSEUDOS: dict[str, tuple[str, bool]] = {
    # name -> (real branch, zero-first?)
    "beqz": ("beq", False),
    "bnez": ("bne", False),
    "blez": ("bge", True),
    "bgez": ("bge", False),
    "bltz": ("blt", False),
    "bgtz": ("blt", True),
}

_BRANCH_SWAP_PSEUDOS: dict[str, str] = {
    "bgt": "blt",
    "ble": "bge",
    "bgtu": "bltu",
    "bleu": "bgeu",
}

_FP_MOVE_PSEUDOS: dict[str, str] = {
    "fmv.d": "fsgnj.d",
    "fneg.d": "fsgnjn.d",
    "fabs.d": "fsgnjx.d",
    "fmv.s": "fsgnj.s",
    "fneg.s": "fsgnjn.s",
    "fabs.s": "fsgnjx.s",
}


def instruction_size(mnemonic: str, operands: Sequence[str]) -> int:
    """Byte size of ``mnemonic operands`` after pseudo expansion.

    Must be exact (the two-pass assembler lays out addresses from it), so
    ``li`` computes its expansion from the literal and ``la`` is always
    8 bytes (auipc+addi).
    """
    name = mnemonic.lower()
    if name == "li":
        if len(operands) != 2:
            raise AssemblerError("li expects 2 operands")
        return 4 * len(li_expansion(0, parse_immediate(operands[1])))
    if name in ("la", "lla"):
        return 8
    return 4


def encode_instruction(
    mnemonic: str, operands: Sequence[str], ctx: AssemblyContext
) -> list[int]:
    """Encode one instruction (or pseudo-instruction) to machine words."""
    name = mnemonic.lower()
    ops = [o.strip() for o in operands]
    pc = ctx.pc

    def ireg(i: int) -> int:
        return parse_int_reg(ops[i])

    def freg(i: int) -> int:
        return parse_fp_reg(ops[i])

    def expect(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(f"{name} expects {n} operands, got {len(ops)}")

    # --- pseudo-instructions -------------------------------------------------
    if name == "nop":
        return [enc.encode_i(enc.OP_IMM, 0, 0, 0, 0)]
    if name == "li":
        expect(2)
        return [_encode_expanded(step) for step in li_expansion(ireg(0), parse_immediate(ops[1]))]
    if name in ("la", "lla"):
        expect(2)
        rd = ireg(0)
        target = ctx.lookup(ops[1])
        hi20, lo12 = _split_hi_lo(target - pc)
        return [
            enc.encode_u(enc.OP_AUIPC, rd, hi20),
            enc.encode_i(enc.OP_IMM, rd, 0b000, rd, lo12),
        ]
    if name in _ARITH_PSEUDOS:
        expect(2)
        real, template = _ARITH_PSEUDOS[name]
        resolved = []
        for slot in template:
            if slot == "d":
                resolved.append(ops[0])
            elif slot == "s":
                resolved.append(ops[1])
            else:
                resolved.append(slot)
        return encode_instruction(real, resolved, ctx)
    if name in _BRANCH_ZERO_PSEUDOS:
        expect(2)
        real, zero_first = _BRANCH_ZERO_PSEUDOS[name]
        args = ["zero", ops[0], ops[1]] if zero_first else [ops[0], "zero", ops[1]]
        return encode_instruction(real, args, ctx)
    if name in _BRANCH_SWAP_PSEUDOS:
        expect(3)
        return encode_instruction(_BRANCH_SWAP_PSEUDOS[name], [ops[1], ops[0], ops[2]], ctx)
    if name in _FP_MOVE_PSEUDOS:
        expect(2)
        return encode_instruction(_FP_MOVE_PSEUDOS[name], [ops[0], ops[1], ops[1]], ctx)
    if name == "j":
        expect(1)
        return encode_instruction("jal", ["zero", ops[0]], ctx)
    if name == "jal" and len(ops) == 1:
        return encode_instruction("jal", ["ra", ops[0]], ctx)
    if name == "jr":
        expect(1)
        return [enc.encode_i(enc.OP_JALR, 0, 0, ireg(0), 0)]
    if name == "jalr" and len(ops) == 1:
        return [enc.encode_i(enc.OP_JALR, RA, 0, ireg(0), 0)]
    if name == "ret":
        expect(0)
        return [enc.encode_i(enc.OP_JALR, 0, 0, RA, 0)]
    if name == "call":
        expect(1)
        target = _imm_or_label(ops[0], ctx)
        return [enc.encode_j(enc.OP_JAL, RA, target - pc)]
    if name == "tail":
        expect(1)
        target = _imm_or_label(ops[0], ctx)
        return [enc.encode_j(enc.OP_JAL, ZERO, target - pc)]
    if name == "csrr":
        expect(2)
        return encode_instruction("csrrs", [ops[0], ops[1], "zero"], ctx)
    if name == "csrw":
        expect(2)
        return encode_instruction("csrrw", ["zero", ops[0], ops[1]], ctx)

    # --- real instructions ---------------------------------------------------
    if name in enc.R_TYPE:
        expect(3)
        op, f3, f7 = enc.R_TYPE[name]
        return [enc.encode_r(op, ireg(0), f3, ireg(1), ireg(2), f7)]

    if name in enc.SHIFT_IMM:
        expect(3)
        op, f3, f_high, sh_bits = enc.SHIFT_IMM[name]
        shamt = parse_immediate(ops[2])
        if not 0 <= shamt < (1 << sh_bits):
            raise AssemblerError(f"shift amount {shamt} out of range for {name}")
        imm = (f_high << sh_bits) | shamt
        return [enc.encode_i(op, ireg(0), f3, ireg(1), imm)]

    if name in enc.I_TYPE and name != "jalr":
        expect(3)
        op, f3 = enc.I_TYPE[name]
        return [enc.encode_i(op, ireg(0), f3, ireg(1), parse_immediate(ops[2]))]

    if name == "jalr":
        expect(2)
        imm, base = parse_mem_operand(ops[1])
        return [enc.encode_i(enc.OP_JALR, ireg(0), 0, parse_int_reg(base), imm)]

    if name == "jal":
        expect(2)
        target = _imm_or_label(ops[1], ctx)
        return [enc.encode_j(enc.OP_JAL, ireg(0), target - pc)]

    if name in enc.BRANCHES:
        expect(3)
        target = _imm_or_label(ops[2], ctx)
        return [enc.encode_b(enc.OP_BRANCH, enc.BRANCHES[name], ireg(0), ireg(1), target - pc)]

    if name in enc.LOADS:
        expect(2)
        f3, _size, _signed, fp = enc.LOADS[name]
        imm, base = parse_mem_operand(ops[1])
        rd = freg(0) if fp else ireg(0)
        opcode = enc.OP_LOAD_FP if fp else enc.OP_LOAD
        return [enc.encode_i(opcode, rd, f3, parse_int_reg(base), imm)]

    if name in enc.STORES:
        expect(2)
        f3, _size, fp = enc.STORES[name]
        imm, base = parse_mem_operand(ops[1])
        rs2 = freg(0) if fp else ireg(0)
        opcode = enc.OP_STORE_FP if fp else enc.OP_STORE
        return [enc.encode_s(opcode, f3, parse_int_reg(base), rs2, imm)]

    if name == "lui":
        expect(2)
        imm = parse_immediate(ops[1])
        if imm & 0x80000 and imm > 0 and imm < (1 << 20):
            imm -= 1 << 20  # accept raw 20-bit patterns
        return [enc.encode_u(enc.OP_LUI, ireg(0), imm)]

    if name == "auipc":
        expect(2)
        imm = parse_immediate(ops[1])
        if imm & 0x80000 and imm > 0 and imm < (1 << 20):
            imm -= 1 << 20
        return [enc.encode_u(enc.OP_AUIPC, ireg(0), imm)]

    if name in enc.FP_OPS:
        expect(3)
        f7, f3 = enc.FP_OPS[name]
        if name.startswith(("feq", "flt", "fle")):
            return [enc.encode_r(enc.OP_FP, ireg(0), f3, freg(1), freg(2), f7)]
        rm = f3 if f3 is not None else enc.RM_DYN
        return [enc.encode_r(enc.OP_FP, freg(0), rm, freg(1), freg(2), f7)]

    if name in enc.FP_UNARY:
        f7, rs2_field = enc.FP_UNARY[name]
        rm = enc.RM_DYN
        if len(ops) == 3:
            rm_token = ops[2].lower()
            if rm_token not in enc.ROUNDING_MODES:
                raise AssemblerError(f"unknown rounding mode {ops[2]!r}")
            rm = enc.ROUNDING_MODES[rm_token]
        elif len(ops) != 2:
            raise AssemblerError(f"{name} expects 2 or 3 operands")
        if name.startswith("fcvt.") and name.split(".")[1] in ("w", "wu", "l", "lu"):
            if len(ops) == 2:
                rm = enc.RM_RTZ  # GCC's default for C-style casts
            return [enc.encode_r(enc.OP_FP, ireg(0), rm, freg(1), rs2_field, f7)]
        if name.startswith("fclass"):
            return [enc.encode_r(enc.OP_FP, ireg(0), 0b001, freg(1), rs2_field, f7)]
        if name in ("fmv.x.d", "fmv.x.w"):
            return [enc.encode_r(enc.OP_FP, ireg(0), 0b000, freg(1), rs2_field, f7)]
        if name in ("fmv.d.x", "fmv.w.x"):
            return [enc.encode_r(enc.OP_FP, freg(0), 0b000, ireg(1), rs2_field, f7)]
        if name.startswith(("fcvt.s.w", "fcvt.s.l", "fcvt.d.w", "fcvt.d.l")):
            return [enc.encode_r(enc.OP_FP, freg(0), rm, ireg(1), rs2_field, f7)]
        # fsqrt / fcvt.s.d / fcvt.d.s
        if name == "fcvt.d.s":
            rm = 0b000 if len(ops) == 2 else rm  # widening is exact
        return [enc.encode_r(enc.OP_FP, freg(0), rm, freg(1), rs2_field, f7)]

    if name in enc.FMA_OPS:
        expect(4)
        op, fmt2 = enc.FMA_OPS[name]
        return [enc.encode_r4(op, freg(0), enc.RM_DYN, freg(1), freg(2), freg(3), fmt2)]

    if name in enc.AMO_OPS:
        f5, f3 = enc.AMO_OPS[name]
        if name.startswith("lr"):
            expect(2)
            imm, base = (0, ops[1].strip("()")) if "(" in ops[1] else (0, ops[1])
            return [enc.encode_r(enc.OP_AMO, ireg(0), f3, parse_int_reg(base), 0, f5 << 2)]
        expect(3)
        base = ops[2].strip("()")
        return [enc.encode_r(enc.OP_AMO, ireg(0), f3, parse_int_reg(base), ireg(1), f5 << 2)]

    if name in enc.CSR_OPS:
        expect(3)
        f3 = enc.CSR_OPS[name]
        csr_text = ops[1].lower()
        csr = enc.CSR_NUMBERS.get(csr_text)
        if csr is None:
            csr = parse_immediate(ops[1])
        if name.endswith("i"):
            operand = parse_immediate(ops[2]) & 0x1F
        else:
            operand = parse_int_reg(ops[2])
        word = (csr << 20) | (operand << 15) | (f3 << 12) | (ireg(0) << 7) | enc.OP_SYSTEM
        return [word]

    if name == "ecall":
        expect(0)
        return [enc.OP_SYSTEM]
    if name == "ebreak":
        expect(0)
        return [(1 << 20) | enc.OP_SYSTEM]
    if name == "fence":
        return [(0b11111111 << 20) | enc.OP_FENCE]

    raise AssemblerError(f"unknown RV64 instruction {mnemonic!r}")
