"""RV64G instruction formats and opcode tables.

The six base formats (R/I/S/B/U/J) plus the R4 format used by the fused
multiply-add instructions. Tables below are shared by the assembler
(name → fields) and the decoder (fields → name), so the two cannot drift.
"""

from __future__ import annotations

from repro.common import EncodingError, bits, fits_signed

# --- opcodes (bits 6:0) ------------------------------------------------------

OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_FENCE = 0b0001111
OP_SYSTEM = 0b1110011
OP_AMO = 0b0101111
OP_LOAD_FP = 0b0000111
OP_STORE_FP = 0b0100111
OP_FP = 0b1010011
OP_FMADD = 0b1000011
OP_FMSUB = 0b1000111
OP_FNMSUB = 0b1001011
OP_FNMADD = 0b1001111


# --- format packers ----------------------------------------------------------

def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int) -> int:
    return (
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
    )


def encode_r4(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, rs3: int, fmt2: int) -> int:
    return (
        (rs3 << 27) | (fmt2 << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (rd << 7) | opcode
    )


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    if not fits_signed(imm, 12):
        raise EncodingError(f"I-type immediate {imm} does not fit in 12 bits")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    if not fits_signed(imm, 12):
        raise EncodingError(f"S-type immediate {imm} does not fit in 12 bits")
    imm &= 0xFFF
    return (
        (bits(imm, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (bits(imm, 4, 0) << 7) | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, offset: int) -> int:
    if offset % 2:
        raise EncodingError(f"branch offset {offset} is not even")
    if not fits_signed(offset, 13):
        raise EncodingError(f"branch offset {offset} does not fit in 13 bits")
    offset &= 0x1FFF
    return (
        (bits(offset, 12, 12) << 31)
        | (bits(offset, 10, 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (bits(offset, 4, 1) << 8)
        | (bits(offset, 11, 11) << 7)
        | opcode
    )


def encode_u(opcode: int, rd: int, imm20: int) -> int:
    if not -(1 << 19) <= imm20 < (1 << 20):
        raise EncodingError(f"U-type immediate {imm20} does not fit in 20 bits")
    return ((imm20 & 0xFFFFF) << 12) | (rd << 7) | opcode


def encode_j(opcode: int, rd: int, offset: int) -> int:
    if offset % 2:
        raise EncodingError(f"jump offset {offset} is not even")
    if not fits_signed(offset, 21):
        raise EncodingError(f"jump offset {offset} does not fit in 21 bits")
    offset &= 0x1FFFFF
    return (
        (bits(offset, 20, 20) << 31)
        | (bits(offset, 10, 1) << 21)
        | (bits(offset, 11, 11) << 20)
        | (bits(offset, 19, 12) << 12)
        | (rd << 7)
        | opcode
    )


# --- field extractors (decoder side) ----------------------------------------

def decode_imm_i(word: int) -> int:
    imm = bits(word, 31, 20)
    return imm - 0x1000 if imm & 0x800 else imm


def decode_imm_s(word: int) -> int:
    imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
    return imm - 0x1000 if imm & 0x800 else imm


def decode_imm_b(word: int) -> int:
    imm = (
        (bits(word, 31, 31) << 12)
        | (bits(word, 7, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return imm - 0x2000 if imm & 0x1000 else imm


def decode_imm_u(word: int) -> int:
    imm = bits(word, 31, 12)
    return imm - 0x100000 if imm & 0x80000 else imm


def decode_imm_j(word: int) -> int:
    imm = (
        (bits(word, 31, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bits(word, 20, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return imm - 0x200000 if imm & 0x100000 else imm


# --- instruction tables ------------------------------------------------------
# R-type integer ops: name -> (opcode, funct3, funct7)

R_TYPE: dict[str, tuple[int, int, int]] = {
    "add": (OP_REG, 0b000, 0b0000000),
    "sub": (OP_REG, 0b000, 0b0100000),
    "sll": (OP_REG, 0b001, 0b0000000),
    "slt": (OP_REG, 0b010, 0b0000000),
    "sltu": (OP_REG, 0b011, 0b0000000),
    "xor": (OP_REG, 0b100, 0b0000000),
    "srl": (OP_REG, 0b101, 0b0000000),
    "sra": (OP_REG, 0b101, 0b0100000),
    "or": (OP_REG, 0b110, 0b0000000),
    "and": (OP_REG, 0b111, 0b0000000),
    # M extension
    "mul": (OP_REG, 0b000, 0b0000001),
    "mulh": (OP_REG, 0b001, 0b0000001),
    "mulhsu": (OP_REG, 0b010, 0b0000001),
    "mulhu": (OP_REG, 0b011, 0b0000001),
    "div": (OP_REG, 0b100, 0b0000001),
    "divu": (OP_REG, 0b101, 0b0000001),
    "rem": (OP_REG, 0b110, 0b0000001),
    "remu": (OP_REG, 0b111, 0b0000001),
    # RV64 W variants
    "addw": (OP_REG32, 0b000, 0b0000000),
    "subw": (OP_REG32, 0b000, 0b0100000),
    "sllw": (OP_REG32, 0b001, 0b0000000),
    "srlw": (OP_REG32, 0b101, 0b0000000),
    "sraw": (OP_REG32, 0b101, 0b0100000),
    "mulw": (OP_REG32, 0b000, 0b0000001),
    "divw": (OP_REG32, 0b100, 0b0000001),
    "divuw": (OP_REG32, 0b101, 0b0000001),
    "remw": (OP_REG32, 0b110, 0b0000001),
    "remuw": (OP_REG32, 0b111, 0b0000001),
    # Zba address-generation extension (ratified 2021; used by the
    # beyond-the-paper gcc12-zba ablation: rd = (rs1 << n) + rs2)
    "sh1add": (OP_REG, 0b010, 0b0010000),
    "sh2add": (OP_REG, 0b100, 0b0010000),
    "sh3add": (OP_REG, 0b110, 0b0010000),
}

# I-type ALU ops: name -> (opcode, funct3)
I_TYPE: dict[str, tuple[int, int]] = {
    "addi": (OP_IMM, 0b000),
    "slti": (OP_IMM, 0b010),
    "sltiu": (OP_IMM, 0b011),
    "xori": (OP_IMM, 0b100),
    "ori": (OP_IMM, 0b110),
    "andi": (OP_IMM, 0b111),
    "addiw": (OP_IMM32, 0b000),
    "jalr": (OP_JALR, 0b000),
}

# shift-immediate: name -> (opcode, funct3, funct6/funct7, shamt_bits)
SHIFT_IMM: dict[str, tuple[int, int, int, int]] = {
    "slli": (OP_IMM, 0b001, 0b000000, 6),
    "srli": (OP_IMM, 0b101, 0b000000, 6),
    "srai": (OP_IMM, 0b101, 0b010000, 6),
    "slliw": (OP_IMM32, 0b001, 0b0000000, 5),
    "srliw": (OP_IMM32, 0b101, 0b0000000, 5),
    "sraiw": (OP_IMM32, 0b101, 0b0100000, 5),
}

# loads: name -> (funct3, size_bytes, signed, fp)
LOADS: dict[str, tuple[int, int, bool, bool]] = {
    "lb": (0b000, 1, True, False),
    "lh": (0b001, 2, True, False),
    "lw": (0b010, 4, True, False),
    "ld": (0b011, 8, True, False),
    "lbu": (0b100, 1, False, False),
    "lhu": (0b101, 2, False, False),
    "lwu": (0b110, 4, False, False),
    "flw": (0b010, 4, False, True),
    "fld": (0b011, 8, False, True),
}

# stores: name -> (funct3, size_bytes, fp)
STORES: dict[str, tuple[int, int, bool]] = {
    "sb": (0b000, 1, False),
    "sh": (0b001, 2, False),
    "sw": (0b010, 4, False),
    "sd": (0b011, 8, False),
    "fsw": (0b010, 4, True),
    "fsd": (0b011, 8, True),
}

# branches: name -> funct3
BRANCHES: dict[str, int] = {
    "beq": 0b000,
    "bne": 0b001,
    "blt": 0b100,
    "bge": 0b101,
    "bltu": 0b110,
    "bgeu": 0b111,
}

# FP R-type: name -> (funct7, funct3 or None for rm, fmt)
# fmt: 0 = .s (single), 1 = .d (double)
FP_OPS: dict[str, tuple[int, int | None]] = {
    # funct7 includes the fmt field in bits 1:0
    "fadd.s": (0b0000000, None),
    "fadd.d": (0b0000001, None),
    "fsub.s": (0b0000100, None),
    "fsub.d": (0b0000101, None),
    "fmul.s": (0b0001000, None),
    "fmul.d": (0b0001001, None),
    "fdiv.s": (0b0001100, None),
    "fdiv.d": (0b0001101, None),
    "fsgnj.s": (0b0010000, 0b000),
    "fsgnjn.s": (0b0010000, 0b001),
    "fsgnjx.s": (0b0010000, 0b010),
    "fsgnj.d": (0b0010001, 0b000),
    "fsgnjn.d": (0b0010001, 0b001),
    "fsgnjx.d": (0b0010001, 0b010),
    "fmin.s": (0b0010100, 0b000),
    "fmax.s": (0b0010100, 0b001),
    "fmin.d": (0b0010101, 0b000),
    "fmax.d": (0b0010101, 0b001),
    "feq.s": (0b1010000, 0b010),
    "flt.s": (0b1010000, 0b001),
    "fle.s": (0b1010000, 0b000),
    "feq.d": (0b1010001, 0b010),
    "flt.d": (0b1010001, 0b001),
    "fle.d": (0b1010001, 0b000),
}

# FP unary / conversion ops: name -> (funct7, rs2_field)
FP_UNARY: dict[str, tuple[int, int]] = {
    "fsqrt.s": (0b0101100, 0b00000),
    "fsqrt.d": (0b0101101, 0b00000),
    "fcvt.s.d": (0b0100000, 0b00001),
    "fcvt.d.s": (0b0100001, 0b00000),
    "fcvt.w.s": (0b1100000, 0b00000),
    "fcvt.wu.s": (0b1100000, 0b00001),
    "fcvt.l.s": (0b1100000, 0b00010),
    "fcvt.lu.s": (0b1100000, 0b00011),
    "fcvt.w.d": (0b1100001, 0b00000),
    "fcvt.wu.d": (0b1100001, 0b00001),
    "fcvt.l.d": (0b1100001, 0b00010),
    "fcvt.lu.d": (0b1100001, 0b00011),
    "fcvt.s.w": (0b1101000, 0b00000),
    "fcvt.s.wu": (0b1101000, 0b00001),
    "fcvt.s.l": (0b1101000, 0b00010),
    "fcvt.s.lu": (0b1101000, 0b00011),
    "fcvt.d.w": (0b1101001, 0b00000),
    "fcvt.d.wu": (0b1101001, 0b00001),
    "fcvt.d.l": (0b1101001, 0b00010),
    "fcvt.d.lu": (0b1101001, 0b00011),
    "fmv.x.w": (0b1110000, 0b00000),
    "fmv.w.x": (0b1111000, 0b00000),
    "fmv.x.d": (0b1110001, 0b00000),
    "fmv.d.x": (0b1111001, 0b00000),
    "fclass.s": (0b1110000, 0b00000),  # distinguished from fmv.x.w by funct3=001
    "fclass.d": (0b1110001, 0b00000),
}

# FMA family: name -> (opcode, fmt2)
FMA_OPS: dict[str, tuple[int, int]] = {
    "fmadd.s": (OP_FMADD, 0b00),
    "fmadd.d": (OP_FMADD, 0b01),
    "fmsub.s": (OP_FMSUB, 0b00),
    "fmsub.d": (OP_FMSUB, 0b01),
    "fnmsub.s": (OP_FNMSUB, 0b00),
    "fnmsub.d": (OP_FNMSUB, 0b01),
    "fnmadd.s": (OP_FNMADD, 0b00),
    "fnmadd.d": (OP_FNMADD, 0b01),
}

# AMO ops (A extension): name -> (funct5, width_funct3)
AMO_OPS: dict[str, tuple[int, int]] = {
    "lr.w": (0b00010, 0b010),
    "sc.w": (0b00011, 0b010),
    "amoswap.w": (0b00001, 0b010),
    "amoadd.w": (0b00000, 0b010),
    "amoxor.w": (0b00100, 0b010),
    "amoand.w": (0b01100, 0b010),
    "amoor.w": (0b01000, 0b010),
    "amomin.w": (0b10000, 0b010),
    "amomax.w": (0b10100, 0b010),
    "amominu.w": (0b11000, 0b010),
    "amomaxu.w": (0b11100, 0b010),
    "lr.d": (0b00010, 0b011),
    "sc.d": (0b00011, 0b011),
    "amoswap.d": (0b00001, 0b011),
    "amoadd.d": (0b00000, 0b011),
    "amoxor.d": (0b00100, 0b011),
    "amoand.d": (0b01100, 0b011),
    "amoor.d": (0b01000, 0b011),
    "amomin.d": (0b10000, 0b011),
    "amomax.d": (0b10100, 0b011),
    "amominu.d": (0b11000, 0b011),
    "amomaxu.d": (0b11100, 0b011),
}

# CSR ops: name -> funct3
CSR_OPS: dict[str, int] = {
    "csrrw": 0b001,
    "csrrs": 0b010,
    "csrrc": 0b011,
    "csrrwi": 0b101,
    "csrrsi": 0b110,
    "csrrci": 0b111,
}

#: Well-known CSR numbers (the subset the simulator supports).
CSR_NUMBERS: dict[str, int] = {
    "fflags": 0x001,
    "frm": 0x002,
    "fcsr": 0x003,
    "cycle": 0xC00,
    "time": 0xC01,
    "instret": 0xC02,
}

#: Default rounding-mode field value (RNE) used when the assembler is not
#: given an explicit rounding mode.
RM_RNE = 0b000
RM_RTZ = 0b001
RM_DYN = 0b111

ROUNDING_MODES: dict[str, int] = {
    "rne": RM_RNE,
    "rtz": RM_RTZ,
    "rdn": 0b010,
    "rup": 0b011,
    "rmm": 0b100,
    "dyn": RM_DYN,
}
