"""Instruction-set implementations.

Two ISAs are provided, matching the paper's comparison targets:

* :mod:`repro.isa.aarch64` — the scalar subset of Armv8-a (``+nosimd``),
  plus the single NEON instruction (``movi dN, #0``) that the paper notes
  statically linked binaries cannot avoid.
* :mod:`repro.isa.riscv` — RV64G without the C extension (``rv64g``,
  i.e. IMAFD + the minimal Zicsr the F/D extensions rely on).

Both expose the same :class:`repro.isa.base.ISA` protocol: binary decode,
text assembly, and disassembly, producing :class:`repro.isa.base.DecodedInst`
objects that carry the dependency metadata (source/destination registers,
memory behaviour, instruction group) used by every analysis in the paper.
"""

from repro.isa.base import (
    DecodedInst,
    InstructionGroup,
    ISA,
    DEP_NZCV,
    DEP_FP_BASE,
    NUM_DEP_REGS,
)

__all__ = [
    "DecodedInst",
    "InstructionGroup",
    "ISA",
    "DEP_NZCV",
    "DEP_FP_BASE",
    "NUM_DEP_REGS",
]


def get_isa(name: str) -> ISA:
    """Look up an ISA implementation by name (``"aarch64"`` or ``"rv64"``)."""
    key = name.lower()
    if key in ("aarch64", "arm", "armv8", "armv8-a"):
        from repro.isa.aarch64 import AArch64

        return AArch64()
    if key in ("rv64", "riscv", "rv64g", "riscv64"):
        from repro.isa.riscv import RV64

        return RV64()
    raise ValueError(f"unknown ISA {name!r}; expected 'aarch64' or 'rv64'")
