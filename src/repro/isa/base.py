"""Common ISA abstractions shared by the AArch64 and RV64 implementations.

Dependency-register numbering
-----------------------------

Every analysis in the paper (critical path, scaled critical path, windowed
critical path) tracks read-after-write chains through *architectural
registers* and memory. To let the analyses stay ISA-agnostic, decoded
instructions report their sources and destinations in a unified numbering:

====================  =========================================
dep id                meaning
====================  =========================================
0–31                  integer registers (AArch64 ``Xn``/``SP``,
                      RISC-V ``x1``–``x31``)
32–63                 floating-point registers (``Dn`` / ``fn``)
64 (:data:`DEP_NZCV`)  the AArch64 NZCV condition flags
====================  =========================================

The zero registers (AArch64 ``XZR``, RISC-V ``x0``) are *excluded* from the
source and destination tuples at decode time: reading them yields a constant
and therefore breaks dependence chains, exactly as §4.1 of the paper
describes, and writes to them are discarded.
"""

from __future__ import annotations

import enum
from typing import Callable, Protocol, Sequence

DEP_FP_BASE = 32
DEP_NZCV = 64
NUM_DEP_REGS = 65


class InstructionGroup(enum.IntEnum):
    """Coarse instruction classes, mirroring SimEng's latency groups.

    Core-model configs (see :mod:`repro.sim.config`) assign an execution
    latency to each group; the scaled-critical-path analysis of §5 weights
    chain links by these latencies.
    """

    INT_SIMPLE = 0      # add/sub/logic/shift/move on integer registers
    INT_MUL = 1         # integer multiply (and multiply-add)
    INT_DIV = 2         # integer divide / remainder
    BRANCH = 3          # all control flow (conditional, unconditional, indirect)
    LOAD = 4            # integer and FP loads
    STORE = 5           # integer and FP stores
    FP_SIMPLE = 6       # FP add/sub/neg/abs/min/max/compare/sign-inject
    FP_MUL = 7          # FP multiply and fused multiply-add
    FP_DIV_SQRT = 8     # FP divide and square root
    FP_CVT = 9          # FP<->int and FP<->FP conversions
    FP_MOVE = 10        # register moves involving FP registers (incl. FMOV)
    ATOMIC = 11         # LR/SC and AMO instructions
    SYSCALL = 12        # SVC / ECALL / EBREAK
    NOP = 13            # NOP, hints, fences treated as no-ops


#: Mapping used by config files; kept in one place so yamlite models,
#: the docs and the enum cannot drift apart.
GROUP_NAMES: dict[str, InstructionGroup] = {
    "int_simple": InstructionGroup.INT_SIMPLE,
    "int_mul": InstructionGroup.INT_MUL,
    "int_div": InstructionGroup.INT_DIV,
    "branch": InstructionGroup.BRANCH,
    "load": InstructionGroup.LOAD,
    "store": InstructionGroup.STORE,
    "fp_simple": InstructionGroup.FP_SIMPLE,
    "fp_mul": InstructionGroup.FP_MUL,
    "fp_div_sqrt": InstructionGroup.FP_DIV_SQRT,
    "fp_cvt": InstructionGroup.FP_CVT,
    "fp_move": InstructionGroup.FP_MOVE,
    "atomic": InstructionGroup.ATOMIC,
    "syscall": InstructionGroup.SYSCALL,
    "nop": InstructionGroup.NOP,
}


class DecodedInst:
    """A decoded instruction: static metadata plus a bound executor.

    Instances are created once per static program location (the emulation
    core caches them by PC) and then executed many times, so the executor is
    a closure with all operand fields pre-extracted — nothing is re-decoded
    on the hot path.

    Attributes:
        pc: address this instruction was decoded at.
        word: the raw 32-bit encoding.
        mnemonic: lower-case mnemonic (``"add"``, ``"fmadd.d"``, ...).
        text: full disassembly string (mnemonic + operands).
        group: the :class:`InstructionGroup` for latency lookup.
        srcs: dep ids read (unified numbering, zero registers excluded).
        dsts: dep ids written (unified numbering, zero registers excluded).
        is_load / is_store: memory behaviour flags.
        is_branch: True for any control-flow instruction.
        execute: ``execute(machine)`` advances architectural state. The
            core sets ``machine.pc`` to the fall-through address *before*
            calling it; branch executors overwrite ``machine.pc``.
    """

    __slots__ = (
        "pc",
        "word",
        "mnemonic",
        "text",
        "group",
        "srcs",
        "dsts",
        "is_load",
        "is_store",
        "is_branch",
        "execute",
    )

    def __init__(
        self,
        pc: int,
        word: int,
        mnemonic: str,
        text: str,
        group: InstructionGroup,
        srcs: tuple[int, ...],
        dsts: tuple[int, ...],
        execute: Callable[["MachineState"], None],
        *,
        is_load: bool = False,
        is_store: bool = False,
        is_branch: bool = False,
    ):
        self.pc = pc
        self.word = word
        self.mnemonic = mnemonic
        self.text = text
        self.group = group
        self.srcs = srcs
        self.dsts = dsts
        self.execute = execute
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch

    def __repr__(self) -> str:
        return f"<DecodedInst {self.pc:#x}: {self.text}>"


class MachineState(Protocol):
    """Structural interface the ISA executors require of the machine.

    Implemented by :class:`repro.sim.machine.Machine`. Integer registers are
    unsigned 64-bit patterns stored as Python ints; FP registers are Python
    floats (IEEE-754 doubles).
    """

    r: list[int]
    f: list[float]
    pc: int
    nzcv: int
    memory: "MemoryLike"

    def raise_syscall(self) -> None: ...


class MemoryLike(Protocol):
    """Byte-addressed little-endian memory (see :mod:`repro.sim.memory`)."""

    def load(self, addr: int, size: int, signed: bool = False) -> int: ...
    def store(self, addr: int, size: int, value: int) -> None: ...
    def load_f64(self, addr: int) -> float: ...
    def store_f64(self, addr: int, value: float) -> None: ...
    def load_f32(self, addr: int) -> float: ...
    def store_f32(self, addr: int, value: float) -> None: ...


class AssemblyContext(Protocol):
    """What an ISA's instruction encoder may ask of the assembler.

    ``lookup(symbol)`` returns the symbol's absolute address; during the
    sizing pass it returns a plausible placeholder so encodings that only
    depend on *reachability*, not the value, stay the same width.
    """

    pc: int

    def lookup(self, symbol: str) -> int: ...


class ISA(Protocol):
    """The full per-ISA surface used by the assembler, loader and core."""

    name: str
    word_size: int  # bytes per instruction

    def decode(self, word: int, pc: int) -> DecodedInst: ...

    def encode_instruction(
        self, mnemonic: str, operands: Sequence[str], ctx: AssemblyContext
    ) -> list[int]: ...

    def instruction_size(self, mnemonic: str, operands: Sequence[str]) -> int: ...
