"""The paper's five benchmarks, reimplemented in kernelc.

Each module provides a :class:`~repro.workloads.base.Workload` subclass:
kernelc source generated from a parameter set, the kernel-region names used
by the Figure 1 breakdown, and a NumPy reference implementation used to
validate every simulated run (the offline substitute for "the binary ran
correctly on hardware").

Default problem sizes are scaled down from the paper's (§2.1) so a pure
Python interpreter can retire the dynamic instruction counts involved; see
DESIGN.md §5 for the mapping and the knobs to raise them.
"""

from repro.workloads.base import Workload, WorkloadRun, run_workload
from repro.workloads.stream import Stream, StreamParams
from repro.workloads.cloverleaf import CloverLeaf, CloverParams
from repro.workloads.lbm import Lbm, LbmParams
from repro.workloads.minibude import MiniBude, BudeParams
from repro.workloads.minisweep import MiniSweep, SweepParams

ALL_WORKLOADS = {
    "stream": Stream,
    "cloverleaf": CloverLeaf,
    "lbm": Lbm,
    "minibude": MiniBude,
    "minisweep": MiniSweep,
}


def get_workload(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a workload by name at a given problem-size scale."""
    try:
        cls = ALL_WORKLOADS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(ALL_WORKLOADS)}"
        ) from None
    return cls.at_scale(scale)


__all__ = [
    "Workload",
    "WorkloadRun",
    "run_workload",
    "Stream",
    "StreamParams",
    "CloverLeaf",
    "CloverParams",
    "Lbm",
    "LbmParams",
    "MiniBude",
    "BudeParams",
    "MiniSweep",
    "SweepParams",
    "ALL_WORKLOADS",
    "get_workload",
]
