"""Workload framework: compile, run, validate against a NumPy reference."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler import CompiledProgram, compile_source
from repro.isa import get_isa
from repro.sim import Machine, RunResult, run_image
from repro.sim.emucore import Probe


class Workload:
    """One benchmark: parameterized kernelc source + reference results.

    Subclasses define ``name``, ``kernels`` (region names, in Figure 1
    order), ``source()`` and ``expected()``.
    """

    name: str = ""
    kernels: Sequence[str] = ()

    def source(self) -> str:
        """kernelc source text for the current parameters."""
        raise NotImplementedError

    def expected(self) -> dict[str, float]:
        """Reference values for the output scalars, keyed by global symbol
        name. Computed with NumPy, mirroring the kernel arithmetic."""
        raise NotImplementedError

    @classmethod
    def at_scale(cls, scale: float) -> "Workload":
        """Instantiate with problem sizes scaled by ``scale`` (1.0 =
        default reduced size; larger approaches the paper's sizes)."""
        raise NotImplementedError

    # -- conveniences ----------------------------------------------------

    def compile(self, isa_name: str, profile: str) -> CompiledProgram:
        return compile_source(self.source(), isa_name, profile)

    def tolerance(self) -> float:
        """Relative tolerance for validation (reductions reassociate)."""
        return 1e-9


@dataclass
class WorkloadRun:
    """A validated simulation of one workload binary."""

    workload: Workload
    compiled: CompiledProgram
    result: RunResult
    machine: Machine
    outputs: dict[str, float]

    @property
    def path_length(self) -> int:
        return self.result.instructions


def read_output_scalars(machine: Machine, compiled: CompiledProgram,
                        names) -> dict[str, float]:
    return {
        name: machine.memory.load_f64(compiled.image.symbol(name))
        for name in names
    }


def run_workload(
    workload: Workload,
    isa_name: str,
    profile: str,
    probes: Sequence[Probe] = (),
    *,
    compiled: CompiledProgram | None = None,
    max_instructions: int = 500_000_000,
    validate: bool = True,
    batch_sinks=None,
    translate: bool = True,
) -> WorkloadRun:
    """Compile (or reuse), run, and validate one workload configuration.

    ``batch_sinks`` selects the batched retirement path (for the fused
    analysis engine and trace recording) instead of per-retire probes.
    ``translate=False`` forces the per-instruction interpreter instead
    of the basic-block translation fast path (identical results).
    """
    if compiled is None:
        compiled = workload.compile(isa_name, profile)
    isa = get_isa(compiled.isa_name)
    result, machine = run_image(
        compiled.image, isa, probes, max_instructions=max_instructions,
        batch_sinks=batch_sinks, translate=translate,
    )
    expected = workload.expected()
    outputs = read_output_scalars(machine, compiled, expected.keys())
    if validate:
        if result.exit_code != 0:
            raise AssertionError(
                f"{workload.name}/{isa_name}/{profile}: exit code "
                f"{result.exit_code}"
            )
        tol = workload.tolerance()
        for name, want in expected.items():
            got = outputs[name]
            if want == 0.0:
                ok = abs(got) <= tol
            else:
                ok = abs(got - want) <= tol * max(abs(want), 1.0)
            if not ok:
                raise AssertionError(
                    f"{workload.name}/{isa_name}/{profile}: output {name} = "
                    f"{got!r}, reference {want!r}"
                )
    return WorkloadRun(
        workload=workload, compiled=compiled, result=result,
        machine=machine, outputs=outputs,
    )
