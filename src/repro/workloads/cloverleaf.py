"""CloverLeaf (serial) — compressible-Euler hydrodynamics on a 2D grid.

A faithful *miniaturization* of the CloverLeaf serial mini-app: the same
kernel structure the real code iterates — ideal-gas EoS, artificial
viscosity (with its branch), face flux calculation, PdV energy/density
update, upwinded cell advection, and pressure-gradient acceleration — each
sweeping the whole grid per step, double-buffered between ``*0`` and ``*1``
fields exactly so the NumPy reference can mirror the arithmetic
vectorially.

Outputs are the field summary the real code prints: total mass, internal
energy and pressure, plus a kinetic-energy proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Workload

GAMMA = 1.4
DT = 0.04


@dataclass(frozen=True)
class CloverParams:
    nx: int = 24        # paper: default deck (960x960-class grids)
    ny: int = 24
    steps: int = 4


class CloverLeaf(Workload):
    name = "cloverleaf"
    kernels = (
        "ideal_gas", "calc_dt", "viscosity", "flux_calc", "pdv",
        "advec_cell", "accelerate",
    )

    def __init__(self, params: CloverParams = CloverParams()):
        self.params = params

    @classmethod
    def at_scale(cls, scale: float) -> "CloverLeaf":
        base = CloverParams()
        side = max(8, int(base.nx * scale ** 0.5))
        return cls(CloverParams(nx=side, ny=side, steps=base.steps))

    def source(self) -> str:
        p = self.params
        nx, ny, steps = p.nx, p.ny, p.steps
        cells = nx * ny
        return f"""
// CloverLeaf-mini — 2D compressible Euler kernels (kernelc port)
global double density0[{cells}];
global double energy0[{cells}];
global double density1[{cells}];
global double energy1[{cells}];
global double pressure[{cells}];
global double soundspeed[{cells}];
global double viscosity[{cells}];
global double xvel[{cells}];
global double yvel[{cells}];
global double volflux_x[{cells}];
global double volflux_y[{cells}];

global double total_mass;
global double total_energy;
global double total_pressure;
global double total_kinetic;
global double dt_min;

func void initialise_chunk() {{
  for (long jj = 0; jj < {ny}; jj = jj + 1) {{
    for (long ii = 0; ii < {nx}; ii = ii + 1) {{
      long idx = jj * {nx} + ii;
      density0[idx] = 0.2;
      energy0[idx] = 1.0;
      if (ii < {nx // 2}) {{
        if (jj < {ny // 2}) {{
          density0[idx] = 1.0;
          energy0[idx] = 2.5;
        }}
      }}
      xvel[idx] = 0.0;
      yvel[idx] = 0.0;
      viscosity[idx] = 0.0;
      volflux_x[idx] = 0.0;
      volflux_y[idx] = 0.0;
    }}
  }}
}}

func void ideal_gas() {{
  region "ideal_gas" {{
    for (long jj = 0; jj < {ny}; jj = jj + 1) {{
      for (long ii = 0; ii < {nx}; ii = ii + 1) {{
        double v = 1.0 / density0[jj * {nx} + ii];
        double pres = ({GAMMA} - 1.0) * density0[jj * {nx} + ii] * energy0[jj * {nx} + ii];
        pressure[jj * {nx} + ii] = pres;
        double pressurebyenergy = ({GAMMA} - 1.0) * density0[jj * {nx} + ii];
        double pressurebyvolume = 0.0 - density0[jj * {nx} + ii] * pres;
        double sound_speed_squared = v * v
          * (pres * pressurebyenergy - pressurebyvolume);
        soundspeed[jj * {nx} + ii] = sqrt(sound_speed_squared);
      }}
    }}
  }}
}}

func void calc_dt() {{
  // timestep control: CFL-style min-reduction over the grid
  region "calc_dt" {{
    double dtmin = 10.0;
    for (long jj = 0; jj < {ny}; jj = jj + 1) {{
      for (long ii = 0; ii < {nx}; ii = ii + 1) {{
        double cc = soundspeed[jj * {nx} + ii];
        double vmag = fabs(xvel[jj * {nx} + ii])
          + fabs(yvel[jj * {nx} + ii]) + cc;
        dtmin = fmin(dtmin, 0.5 / vmag);
      }}
    }}
    dt_min = dtmin;
  }}
}}

func void viscosity_kernel() {{
  region "viscosity" {{
    for (long jj = 1; jj < {ny - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {nx - 1}; ii = ii + 1) {{
        double ugrad = xvel[jj * {nx} + ii + 1] - xvel[jj * {nx} + ii];
        double vgrad = yvel[jj * {nx} + ii + {nx}] - yvel[jj * {nx} + ii];
        double div = ugrad + vgrad;
        double strain2 = 0.5 * (xvel[jj * {nx} + ii + {nx}]
          - xvel[jj * {nx} + ii] + yvel[jj * {nx} + ii + 1]
          - yvel[jj * {nx} + ii]);
        if (div < 0.0) {{
          double limiter = ugrad * ugrad + strain2 * strain2;
          viscosity[jj * {nx} + ii] = 2.0 * density0[jj * {nx} + ii] * limiter;
        }} else {{
          viscosity[jj * {nx} + ii] = 0.0;
        }}
      }}
    }}
  }}
}}

func void flux_calc() {{
  region "flux_calc" {{
    for (long jj = 1; jj < {ny - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {nx - 1}; ii = ii + 1) {{
        volflux_x[jj * {nx} + ii] = 0.25 * {DT}
          * (xvel[jj * {nx} + ii] + xvel[jj * {nx} + ii + 1]);
        volflux_y[jj * {nx} + ii] = 0.25 * {DT}
          * (yvel[jj * {nx} + ii] + yvel[jj * {nx} + ii + {nx}]);
      }}
    }}
  }}
}}

func void pdv() {{
  region "pdv" {{
    for (long jj = 1; jj < {ny - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {nx - 1}; ii = ii + 1) {{
        double total_flux = volflux_x[jj * {nx} + ii + 1]
          - volflux_x[jj * {nx} + ii] + volflux_y[jj * {nx} + ii + {nx}]
          - volflux_y[jj * {nx} + ii];
        double recip_volume = 1.0 / (1.0 + total_flux);
        double energy_change = (pressure[jj * {nx} + ii]
          + viscosity[jj * {nx} + ii]) * total_flux
          / density0[jj * {nx} + ii];
        energy1[jj * {nx} + ii] = energy0[jj * {nx} + ii] - energy_change;
        density1[jj * {nx} + ii] = density0[jj * {nx} + ii] * recip_volume;
      }}
    }}
  }}
}}

func void advec_cell() {{
  region "advec_cell" {{
    for (long jj = 1; jj < {ny - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {nx - 1}; ii = ii + 1) {{
        double upwind_d;
        double upwind_e;
        if (volflux_x[jj * {nx} + ii] > 0.0) {{
          upwind_d = density1[jj * {nx} + ii + -1];
          upwind_e = energy1[jj * {nx} + ii + -1];
        }} else {{
          upwind_d = density1[jj * {nx} + ii + 1];
          upwind_e = energy1[jj * {nx} + ii + 1];
        }}
        density0[jj * {nx} + ii] = density1[jj * {nx} + ii]
          + 0.1 * (upwind_d - density1[jj * {nx} + ii]);
        energy0[jj * {nx} + ii] = energy1[jj * {nx} + ii]
          + 0.1 * (upwind_e - energy1[jj * {nx} + ii]);
      }}
    }}
  }}
}}

func void accelerate() {{
  region "accelerate" {{
    for (long jj = 1; jj < {ny - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {nx - 1}; ii = ii + 1) {{
        double stepbymass = {DT}
          / (density0[jj * {nx} + ii] + density0[jj * {nx} + ii + -1]);
        xvel[jj * {nx} + ii] = xvel[jj * {nx} + ii]
          - stepbymass * (pressure[jj * {nx} + ii]
                          - pressure[jj * {nx} + ii + -1]);
        double stepbymass_y = {DT}
          / (density0[jj * {nx} + ii] + density0[jj * {nx} + ii + -{nx}]);
        yvel[jj * {nx} + ii] = yvel[jj * {nx} + ii]
          - stepbymass_y * (pressure[jj * {nx} + ii]
                            - pressure[jj * {nx} + ii + -{nx}]);
      }}
    }}
  }}
}}

func void field_summary() {{
  double mass = 0.0;
  double ie = 0.0;
  double press = 0.0;
  double ke = 0.0;
  for (long jj = 0; jj < {ny}; jj = jj + 1) {{
    for (long ii = 0; ii < {nx}; ii = ii + 1) {{
      mass = mass + density0[jj * {nx} + ii];
      ie = ie + density0[jj * {nx} + ii] * energy0[jj * {nx} + ii];
      press = press + pressure[jj * {nx} + ii];
      double vsq = xvel[jj * {nx} + ii] * xvel[jj * {nx} + ii]
        + yvel[jj * {nx} + ii] * yvel[jj * {nx} + ii];
      ke = ke + 0.5 * density0[jj * {nx} + ii] * vsq;
    }}
  }}
  total_mass = mass;
  total_energy = ie;
  total_pressure = press;
  total_kinetic = ke;
}}

func long main() {{
  initialise_chunk();
  // copy-initialize the double buffers so advec of step 1 is well-defined
  for (long idx = 0; idx < {cells}; idx = idx + 1) {{
    density1[idx] = density0[idx];
    energy1[idx] = energy0[idx];
  }}
  for (long step = 0; step < {steps}; step = step + 1) {{
    ideal_gas();
    calc_dt();
    viscosity_kernel();
    flux_calc();
    pdv();
    advec_cell();
    accelerate();
  }}
  field_summary();
  return 0;
}}
"""

    def expected(self) -> dict[str, float]:
        p = self.params
        nx, ny = p.nx, p.ny
        density0 = np.full((ny, nx), 0.2)
        energy0 = np.full((ny, nx), 1.0)
        density0[: ny // 2, : nx // 2] = 1.0
        energy0[: ny // 2, : nx // 2] = 2.5
        pressure = np.zeros((ny, nx))
        soundspeed = np.zeros((ny, nx))
        viscosity = np.zeros((ny, nx))
        xvel = np.zeros((ny, nx))
        yvel = np.zeros((ny, nx))
        vfx = np.zeros((ny, nx))
        vfy = np.zeros((ny, nx))
        density1 = density0.copy()
        energy1 = energy0.copy()
        inner = (slice(1, ny - 1), slice(1, nx - 1))

        def sh(a, dy, dx):
            """a[jj+dy, ii+dx] over the interior window."""
            return a[1 + dy : ny - 1 + dy, 1 + dx : nx - 1 + dx]

        dt_min = 10.0
        for _ in range(p.steps):
            # ideal_gas
            v = 1.0 / density0
            pressure = (GAMMA - 1.0) * density0 * energy0
            pbe = (GAMMA - 1.0) * density0
            pbv = 0.0 - density0 * pressure
            soundspeed = np.sqrt(v * v * (pressure * pbe - pbv))
            # calc_dt (min-reduction; exact because fmin is exact)
            vmag = np.abs(xvel) + np.abs(yvel) + soundspeed
            dt_min = min(10.0, float((0.5 / vmag).min()))
            # viscosity
            ugrad = sh(xvel, 0, 1) - sh(xvel, 0, 0)
            vgrad = sh(yvel, 1, 0) - sh(yvel, 0, 0)
            div = ugrad + vgrad
            strain2 = 0.5 * (
                sh(xvel, 1, 0) - sh(xvel, 0, 0) + sh(yvel, 0, 1) - sh(yvel, 0, 0)
            )
            limiter = ugrad * ugrad + strain2 * strain2
            visc_inner = np.where(div < 0.0, 2.0 * sh(density0, 0, 0) * limiter, 0.0)
            viscosity[inner] = visc_inner
            # flux_calc
            vfx[inner] = 0.25 * DT * (sh(xvel, 0, 0) + sh(xvel, 0, 1))
            vfy[inner] = 0.25 * DT * (sh(yvel, 0, 0) + sh(yvel, 1, 0))
            # pdv
            total_flux = sh(vfx, 0, 1) - sh(vfx, 0, 0) + sh(vfy, 1, 0) - sh(vfy, 0, 0)
            recip_volume = 1.0 / (1.0 + total_flux)
            energy_change = (
                (sh(pressure, 0, 0) + sh(viscosity, 0, 0))
                * total_flux / sh(density0, 0, 0)
            )
            energy1[inner] = sh(energy0, 0, 0) - energy_change
            density1[inner] = sh(density0, 0, 0) * recip_volume
            # advec_cell
            cond = sh(vfx, 0, 0) > 0.0
            upwind_d = np.where(cond, sh(density1, 0, -1), sh(density1, 0, 1))
            upwind_e = np.where(cond, sh(energy1, 0, -1), sh(energy1, 0, 1))
            density0[inner] = sh(density1, 0, 0) + 0.1 * (
                upwind_d - sh(density1, 0, 0)
            )
            energy0[inner] = sh(energy1, 0, 0) + 0.1 * (upwind_e - sh(energy1, 0, 0))
            # accelerate
            stepbymass = DT / (sh(density0, 0, 0) + sh(density0, 0, -1))
            xvel[inner] = sh(xvel, 0, 0) - stepbymass * (
                sh(pressure, 0, 0) - sh(pressure, 0, -1)
            )
            stepbymass_y = DT / (sh(density0, 0, 0) + sh(density0, -1, 0))
            yvel[inner] = sh(yvel, 0, 0) - stepbymass_y * (
                sh(pressure, 0, 0) - sh(pressure, -1, 0)
            )
        vsq = xvel * xvel + yvel * yvel
        return {
            "total_mass": float(density0.sum()),
            "total_energy": float((density0 * energy0).sum()),
            "total_pressure": float(pressure.sum()),
            "total_kinetic": float((0.5 * density0 * vsq).sum()),
            "dt_min": dt_min,
        }

    def tolerance(self) -> float:
        return 1e-9
