"""STREAM (McCalpin) — sustained-memory-bandwidth kernels.

The paper runs the standard four kernels over 10M-element arrays. Faithful
to the original: ``a=1, b=2, c=0``, ``scalar=3``, NTIMES repetitions of
Copy/Scale/Add/Triad, followed by the standard validation pass that sums
each array — whose serial floating-point reduction chains are, notably,
what the paper's §5 scaled critical path rides on (STREAM's scaled CP is
6× its plain CP: an FP-add chain at TX2's 6-cycle latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Workload


@dataclass(frozen=True)
class StreamParams:
    # n deliberately exceeds 4095 so the GCC 9.2 AArch64 loop-bound idiom
    # (sub/subs immediate pair, §3.3) is exercised, exactly as the paper's
    # 10M-element arrays exercise it.
    n: int = 6000        # paper: 10_000_000
    ntimes: int = 5      # paper: 10 (STREAM default)


class Stream(Workload):
    name = "stream"
    kernels = ("copy", "scale", "add", "triad")

    def __init__(self, params: StreamParams = StreamParams()):
        self.params = params

    @classmethod
    def at_scale(cls, scale: float) -> "Stream":
        """Scaled instance. ``n`` is floored at 4200 so the §3.3 GCC 9.2
        bound idiom (which needs a bound beyond the 12-bit compare
        immediate) stays active at reduced scales, as it is at the paper's
        10M elements."""
        base = StreamParams()
        return cls(StreamParams(n=max(4200, int(base.n * scale)),
                                ntimes=base.ntimes))

    def source(self) -> str:
        n = self.params.n
        ntimes = self.params.ntimes
        return f"""
// STREAM — McCalpin memory-bandwidth kernels (kernelc port)
global double a[{n}];
global double b[{n}];
global double c[{n}];
global double scalar = 3.0;
global double sum_a;
global double sum_b;
global double sum_c;

func void init() {{
  for (long j = 0; j < {n}; j = j + 1) {{
    a[j] = 1.0;
  }}
  for (long j = 0; j < {n}; j = j + 1) {{
    b[j] = 2.0;
  }}
  for (long j = 0; j < {n}; j = j + 1) {{
    c[j] = 0.0;
  }}
}}

func void tuned_copy() {{
  region "copy" {{
    for (long j = 0; j < {n}; j = j + 1) {{
      c[j] = a[j];
    }}
  }}
}}

func void tuned_scale() {{
  region "scale" {{
    for (long j = 0; j < {n}; j = j + 1) {{
      b[j] = scalar * c[j];
    }}
  }}
}}

func void tuned_add() {{
  region "add" {{
    for (long j = 0; j < {n}; j = j + 1) {{
      c[j] = a[j] + b[j];
    }}
  }}
}}

func void tuned_triad() {{
  region "triad" {{
    for (long j = 0; j < {n}; j = j + 1) {{
      a[j] = b[j] + scalar * c[j];
    }}
  }}
}}

func void check_results() {{
  // standard STREAM validation: serial reductions over each array
  double sa = 0.0;
  double sb = 0.0;
  double sc = 0.0;
  for (long j = 0; j < {n}; j = j + 1) {{
    sa = sa + a[j];
  }}
  for (long j = 0; j < {n}; j = j + 1) {{
    sb = sb + b[j];
  }}
  for (long j = 0; j < {n}; j = j + 1) {{
    sc = sc + c[j];
  }}
  sum_a = sa;
  sum_b = sb;
  sum_c = sc;
}}

func long main() {{
  init();
  for (long k = 0; k < {ntimes}; k = k + 1) {{
    tuned_copy();
    tuned_scale();
    tuned_add();
    tuned_triad();
  }}
  check_results();
  return 0;
}}
"""

    def expected(self) -> dict[str, float]:
        # mirror the kernels exactly (scalar arithmetic; values stay equal
        # across elements, so plain floats suffice)
        a, b, c = 1.0, 2.0, 0.0
        scalar = 3.0
        for _ in range(self.params.ntimes):
            c = a
            b = scalar * c
            c = a + b
            a = b + scalar * c
        n = self.params.n
        return {"sum_a": a * n, "sum_b": b * n, "sum_c": c * n}
