"""Minisweep — Denovo Sn radiation-transport sweep.

A KBA-style wavefront sweep over a 3D grid: each cell combines its source
with the upwind face values in x, y and z, solves per angle, writes the
angular flux, and updates the three faces for the downwind neighbours. The
per-direction face recurrences are the only dependence chains; work is
independent across angles — which is why the paper measures minisweep's
ILP in the thousands.

Angle weights and denominators stand in for Denovo's moments/quadrature
data (precomputed, as in the real mini-app).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Workload


@dataclass(frozen=True)
class SweepParams:
    ncx: int = 4         # paper: -ncell_x 8
    ncy: int = 4         # paper: -ncell_y 16
    ncz: int = 6         # paper: -ncell_z 32
    na: int = 8          # paper: -na 32
    nsweeps: int = 2     # octant pairs swept (paper: 8 octants)


class MiniSweep(Workload):
    name = "minisweep"
    kernels = ("sweep", "reduce")

    def __init__(self, params: SweepParams = SweepParams()):
        self.params = params

    @classmethod
    def at_scale(cls, scale: float) -> "MiniSweep":
        base = SweepParams()
        factor = max(1e-3, scale) ** (1.0 / 3.0)
        return cls(SweepParams(
            ncx=max(2, int(base.ncx * factor)),
            ncy=max(2, int(base.ncy * factor)),
            ncz=max(2, int(base.ncz * factor)),
            na=base.na,
            nsweeps=base.nsweeps,
        ))

    def source(self) -> str:
        p = self.params
        ncx, ncy, ncz, na = p.ncx, p.ncy, p.ncz, p.na
        ncells = ncx * ncy * ncz
        return f"""
// Minisweep — KBA wavefront sweep (kernelc port)
global double vi[{ncells}];
global double vo[{ncells * na}];
global double facex[{ncy * ncz * na}];
global double facey[{ncx * ncz * na}];
global double facez[{ncx * ncy * na}];
global double wt[{na}];
global double denom_r[{na}];
global double vs_sum[{ncells}];
global double total_flux;
global double total_moment;

func void init_state() {{
  for (long c = 0; c < {ncells}; c = c + 1) {{
    vi[c] = (double)(c % 7) * 0.1 + 0.5;
    vs_sum[c] = 0.0;
  }}
  for (long a = 0; a < {na}; a = a + 1) {{
    wt[a] = 1.0 / (double)({na});
    denom_r[a] = 1.0 / (1.0 + 0.3 * (double)(a) + 0.05);
  }}
}}

func void init_faces() {{
  for (long i = 0; i < {ncy * ncz * na}; i = i + 1) {{
    facex[i] = 0.1;
  }}
  for (long i = 0; i < {ncx * ncz * na}; i = i + 1) {{
    facey[i] = 0.1;
  }}
  for (long i = 0; i < {ncx * ncy * na}; i = i + 1) {{
    facez[i] = 0.1;
  }}
}}

func void sweep() {{
  region "sweep" {{
    for (long iz = 0; iz < {ncz}; iz = iz + 1) {{
      for (long iy = 0; iy < {ncy}; iy = iy + 1) {{
        for (long ix = 0; ix < {ncx}; ix = ix + 1) {{
          long cell = ix + {ncx} * (iy + {ncy} * iz);
          double src = vi[cell];
          double vsum = vs_sum[cell];
          for (long a = 0; a < {na}; a = a + 1) {{
            double poin = facex[(iy + {ncy} * iz) * {na} + a]
              + facey[(ix + {ncx} * iz) * {na} + a]
              + facez[(ix + {ncx} * iy) * {na} + a];
            double result = (src + poin) * denom_r[a];
            vo[cell * {na} + a] = result;
            double outgoing = result * 0.5;
            facex[(iy + {ncy} * iz) * {na} + a] = outgoing;
            facey[(ix + {ncx} * iz) * {na} + a] = outgoing;
            facez[(ix + {ncx} * iy) * {na} + a] = outgoing;
            vsum = vsum + result * wt[a];
          }}
          vs_sum[cell] = vsum;
        }}
      }}
    }}
  }}
}}

func void reduce() {{
  region "reduce" {{
    double flux = 0.0;
    for (long i = 0; i < {ncells * na}; i = i + 1) {{
      flux = flux + vo[i];
    }}
    double moment = 0.0;
    for (long c = 0; c < {ncells}; c = c + 1) {{
      moment = moment + vs_sum[c];
    }}
    total_flux = flux;
    total_moment = moment;
  }}
}}

func long main() {{
  init_state();
  init_faces();
  for (long s = 0; s < {p.nsweeps}; s = s + 1) {{
    sweep();
  }}
  reduce();
  return 0;
}}
"""

    def expected(self) -> dict[str, float]:
        p = self.params
        ncx, ncy, ncz, na = p.ncx, p.ncy, p.ncz, p.na
        ncells = ncx * ncy * ncz
        vi = [((c % 7) * 0.1) + 0.5 for c in range(ncells)]
        # note: (double)(c % 7) * 0.1 + 0.5 in source; same value
        vs_sum = [0.0] * ncells
        vo = [0.0] * (ncells * na)
        wt = [1.0 / na] * na
        denom_r = [1.0 / (1.0 + 0.3 * a + 0.05) for a in range(na)]
        facex = [0.1] * (ncy * ncz * na)
        facey = [0.1] * (ncx * ncz * na)
        facez = [0.1] * (ncx * ncy * na)
        for _ in range(p.nsweeps):
            for iz in range(ncz):
                for iy in range(ncy):
                    for ix in range(ncx):
                        cell = ix + ncx * (iy + ncy * iz)
                        src = vi[cell]
                        vsum = vs_sum[cell]
                        for a in range(na):
                            fx = (iy + ncy * iz) * na + a
                            fy = (ix + ncx * iz) * na + a
                            fz = (ix + ncx * iy) * na + a
                            poin = facex[fx] + facey[fy] + facez[fz]
                            result = (src + poin) * denom_r[a]
                            vo[cell * na + a] = result
                            outgoing = result * 0.5
                            facex[fx] = outgoing
                            facey[fy] = outgoing
                            facez[fz] = outgoing
                            vsum = vsum + result * wt[a]
                        vs_sum[cell] = vsum
        return {
            "total_flux": float(sum(vo)),
            "total_moment": float(sum(vs_sum)),
        }
