"""Lattice Boltzmann (d2q9-bgk) — the University of Bristol serial code.

Structure-of-arrays layout (one array per speed, the serial-optimized
variant the paper used), double-buffered: ``accelerate_flow`` biases the
second row from the top, then a fused propagate/rebound/collision timestep
gathers the nine neighbour speeds, applies BGK collision (or bounce-back on
obstacle cells) and writes the other buffer. Outputs are the average
velocity of the final state and the total density (the quantities the real
code reports / uses as its conservation check).

Direction numbering (as in the original)::

    6 2 5
    3 0 1
    7 4 8
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Workload

DENSITY = 0.1
ACCEL = 0.005
OMEGA = 1.85


@dataclass(frozen=True)
class LbmParams:
    nx: int = 24        # paper: 128
    ny: int = 24        # paper: 128
    iters: int = 6      # paper: 100 (must be even: buffers swap per step)

    def __post_init__(self):
        if self.iters % 2:
            raise ValueError("iters must be even (double buffering)")


# gather offsets: tmp_k at (ii,jj) comes from (ii - ex_k, jj - ey_k)
_EX = [0, 1, 0, -1, 0, 1, -1, -1, 1]
_EY = [0, 0, 1, 0, -1, 1, 1, -1, -1]
#: bounce-back pairs: direction k rebounds into _OPP[k]
_OPP = [0, 3, 4, 1, 2, 7, 8, 5, 6]


class Lbm(Workload):
    name = "lbm"
    kernels = ("accelerate_flow", "timestep", "av_velocity")

    def __init__(self, params: LbmParams = LbmParams()):
        self.params = params

    @classmethod
    def at_scale(cls, scale: float) -> "Lbm":
        base = LbmParams()
        side = max(8, int(base.nx * scale ** 0.5))
        return cls(LbmParams(nx=side, ny=side, iters=base.iters))

    # -- source generation ------------------------------------------------

    def _accelerate_body(self, s: str, nx: int, ny: int) -> str:
        row = (ny - 2) * nx
        w1 = DENSITY * ACCEL / 9.0
        w2 = DENSITY * ACCEL / 36.0
        return f"""
    for (long ii = 0; ii < {nx}; ii = ii + 1) {{
      if (obstacles[{row} + ii] == 0) {{
        if ({s}3[{row} + ii] - {w1!r} > 0.0) {{
          if ({s}6[{row} + ii] - {w2!r} > 0.0) {{
            if ({s}7[{row} + ii] - {w2!r} > 0.0) {{
              {s}1[{row} + ii] = {s}1[{row} + ii] + {w1!r};
              {s}5[{row} + ii] = {s}5[{row} + ii] + {w2!r};
              {s}8[{row} + ii] = {s}8[{row} + ii] + {w2!r};
              {s}3[{row} + ii] = {s}3[{row} + ii] - {w1!r};
              {s}6[{row} + ii] = {s}6[{row} + ii] - {w2!r};
              {s}7[{row} + ii] = {s}7[{row} + ii] - {w2!r};
            }}
          }}
        }}
      }}
    }}
"""

    def _timestep_body(self, src: str, dst: str, nx: int, ny: int) -> str:
        gathers = []
        for k in range(9):
            x = "ii" if _EX[k] == 0 else ("x_w" if _EX[k] == 1 else "x_e")
            y = "jj" if _EY[k] == 0 else ("y_s" if _EY[k] == 1 else "y_n")
            gathers.append(
                f"        double tmp{k} = {src}{k}[{y} * {nx} + {x}];"
            )
        gather_text = "\n".join(gathers)
        rebound = "\n".join(
            f"          {dst}{k}[jj * {nx} + ii] = tmp{_OPP[k]};"
            for k in range(1, 9)
        )
        w0, w1, w2 = 4.0 / 9.0, 1.0 / 9.0, 1.0 / 36.0
        # u-projections per direction (standard d2q9); 1/c_sq etc. appear as
        # the pre-folded constants 3.0, 4.5 and 1.5 exactly as in the
        # optimized serial source
        u_exprs = [
            None,
            "u_x", "u_y", "0.0 - u_x", "0.0 - u_y",
            "u_x + u_y", "0.0 - u_x + u_y", "0.0 - u_x - u_y", "u_x - u_y",
        ]
        weights = [w0, w1, w1, w1, w1, w2, w2, w2, w2]
        collide_lines = [
            f"          {dst}0[jj * {nx} + ii] = tmp0 + {OMEGA!r}"
            f" * ({w0!r} * local_density * (1.0 - u_sq * 1.5) - tmp0);"
        ]
        for k in range(1, 9):
            collide_lines.append(
                "          {\n"
                f"            double u{k} = {u_exprs[k]};\n"
                f"            {dst}{k}[jj * {nx} + ii] = tmp{k} + {OMEGA!r}"
                f" * ({weights[k]!r} * local_density * (1.0 + u{k} * 3.0"
                f" + u{k} * u{k} * 4.5 - u_sq * 1.5) - tmp{k});\n"
                "          }"
            )
        collide_text = "\n".join(collide_lines)
        return f"""
    for (long jj = 0; jj < {ny}; jj = jj + 1) {{
      long y_n = jj + 1;
      if (y_n == {ny}) {{ y_n = 0; }}
      long y_s = jj - 1;
      if (y_s < 0) {{ y_s = {ny - 1}; }}
      for (long ii = 0; ii < {nx}; ii = ii + 1) {{
        long x_e = ii + 1;
        if (x_e == {nx}) {{ x_e = 0; }}
        long x_w = ii - 1;
        if (x_w < 0) {{ x_w = {nx - 1}; }}
{gather_text}
        if (obstacles[jj * {nx} + ii] != 0) {{
          {dst}0[jj * {nx} + ii] = tmp0;
{rebound}
        }} else {{
          double local_density = tmp0 + tmp1 + tmp2 + tmp3 + tmp4
            + tmp5 + tmp6 + tmp7 + tmp8;
          double u_x = (tmp1 + tmp5 + tmp8 - (tmp3 + tmp6 + tmp7))
            / local_density;
          double u_y = (tmp2 + tmp5 + tmp6 - (tmp4 + tmp7 + tmp8))
            / local_density;
          double u_sq = u_x * u_x + u_y * u_y;
{collide_text}
        }}
      }}
    }}
"""

    def source(self) -> str:
        p = self.params
        nx, ny = p.nx, p.ny
        cells = nx * ny
        w0 = DENSITY * 4.0 / 9.0
        w1 = DENSITY / 9.0
        w2 = DENSITY / 36.0
        arrays = "\n".join(
            f"global double s{k}[{cells}];\nglobal double t{k}[{cells}];"
            for k in range(9)
        )
        final_density = " + ".join(
            f"s{k}[jj * {nx} + ii]" for k in range(9)
        )
        return f"""
// d2q9-bgk Lattice Boltzmann (kernelc port of the UoB serial code)
{arrays}
global long obstacles[{cells}];
global double av_vel;
global double total_density;

func void initialise() {{
  for (long jj = 0; jj < {ny}; jj = jj + 1) {{
    for (long ii = 0; ii < {nx}; ii = ii + 1) {{
      s0[jj * {nx} + ii] = {w0!r};
      s1[jj * {nx} + ii] = {w1!r};
      s2[jj * {nx} + ii] = {w1!r};
      s3[jj * {nx} + ii] = {w1!r};
      s4[jj * {nx} + ii] = {w1!r};
      s5[jj * {nx} + ii] = {w2!r};
      s6[jj * {nx} + ii] = {w2!r};
      s7[jj * {nx} + ii] = {w2!r};
      s8[jj * {nx} + ii] = {w2!r};
      long obst = 0;
      if (jj == {ny // 2}) {{
        if (ii >= {nx // 4}) {{
          if (ii < {3 * nx // 4}) {{
            obst = 1;
          }}
        }}
      }}
      obstacles[jj * {nx} + ii] = obst;
    }}
  }}
}}

func void accelerate_flow_a() {{
  region "accelerate_flow" {{
{self._accelerate_body("s", nx, ny)}
  }}
}}

func void accelerate_flow_b() {{
  region "accelerate_flow" {{
{self._accelerate_body("t", nx, ny)}
  }}
}}

func void timestep_ab() {{
  region "timestep" {{
{self._timestep_body("s", "t", nx, ny)}
  }}
}}

func void timestep_ba() {{
  region "timestep" {{
{self._timestep_body("t", "s", nx, ny)}
  }}
}}

func void av_velocity_kernel() {{
  region "av_velocity" {{
    double tot_u = 0.0;
    double tot_density = 0.0;
    long tot_cells = 0;
    for (long jj = 0; jj < {ny}; jj = jj + 1) {{
      for (long ii = 0; ii < {nx}; ii = ii + 1) {{
        double local_density = {final_density};
        tot_density = tot_density + local_density;
        if (obstacles[jj * {nx} + ii] == 0) {{
          double u_x = (s1[jj * {nx} + ii] + s5[jj * {nx} + ii]
            + s8[jj * {nx} + ii] - (s3[jj * {nx} + ii]
            + s6[jj * {nx} + ii] + s7[jj * {nx} + ii])) / local_density;
          double u_y = (s2[jj * {nx} + ii] + s5[jj * {nx} + ii]
            + s6[jj * {nx} + ii] - (s4[jj * {nx} + ii]
            + s7[jj * {nx} + ii] + s8[jj * {nx} + ii])) / local_density;
          tot_u = tot_u + sqrt(u_x * u_x + u_y * u_y);
          tot_cells = tot_cells + 1;
        }}
      }}
    }}
    av_vel = tot_u / (double)(tot_cells);
    total_density = tot_density;
  }}
}}

func long main() {{
  initialise();
  for (long it = 0; it < {p.iters // 2}; it = it + 1) {{
    accelerate_flow_a();
    timestep_ab();
    accelerate_flow_b();
    timestep_ba();
  }}
  av_velocity_kernel();
  return 0;
}}
"""

    # -- reference -----------------------------------------------------------

    def expected(self) -> dict[str, float]:
        p = self.params
        nx, ny = p.nx, p.ny
        w0 = DENSITY * 4.0 / 9.0
        w1 = DENSITY / 9.0
        w2 = DENSITY / 36.0
        speeds = np.empty((9, ny, nx))
        for k, weight in enumerate([w0, w1, w1, w1, w1, w2, w2, w2, w2]):
            speeds[k, :, :] = weight
        obstacles = np.zeros((ny, nx), dtype=bool)
        obstacles[ny // 2, nx // 4 : 3 * nx // 4] = True

        aw1 = DENSITY * ACCEL / 9.0
        aw2 = DENSITY * ACCEL / 36.0
        dir_weights = [4.0 / 9.0] + [1.0 / 9.0] * 4 + [1.0 / 36.0] * 4

        for _ in range(p.iters):
            # accelerate_flow on row ny-2
            jj = ny - 2
            for ii in range(nx):
                if (
                    not obstacles[jj, ii]
                    and speeds[3, jj, ii] - aw1 > 0.0
                    and speeds[6, jj, ii] - aw2 > 0.0
                    and speeds[7, jj, ii] - aw2 > 0.0
                ):
                    speeds[1, jj, ii] += aw1
                    speeds[5, jj, ii] += aw2
                    speeds[8, jj, ii] += aw2
                    speeds[3, jj, ii] -= aw1
                    speeds[6, jj, ii] -= aw2
                    speeds[7, jj, ii] -= aw2
            # fused propagate + rebound/collide (vectorized gather)
            gathered = np.empty_like(speeds)
            for k in range(9):
                gathered[k] = np.roll(
                    np.roll(speeds[k], _EY[k], axis=0), _EX[k], axis=1
                )
            new = np.empty_like(speeds)
            local_density = gathered.sum(axis=0)
            u_x = (
                gathered[1] + gathered[5] + gathered[8]
                - (gathered[3] + gathered[6] + gathered[7])
            ) / local_density
            u_y = (
                gathered[2] + gathered[5] + gathered[6]
                - (gathered[4] + gathered[7] + gathered[8])
            ) / local_density
            u_sq = u_x * u_x + u_y * u_y
            u_proj = [
                None, u_x, u_y, 0.0 - u_x, 0.0 - u_y,
                u_x + u_y, 0.0 - u_x + u_y, 0.0 - u_x - u_y, u_x - u_y,
            ]
            new[0] = gathered[0] + OMEGA * (
                dir_weights[0] * local_density * (1.0 - u_sq * 1.5)
                - gathered[0]
            )
            for k in range(1, 9):
                d_equ = dir_weights[k] * local_density * (
                    1.0 + u_proj[k] * 3.0
                    + u_proj[k] * u_proj[k] * 4.5
                    - u_sq * 1.5
                )
                new[k] = gathered[k] + OMEGA * (d_equ - gathered[k])
            # rebound on obstacle cells
            for k in range(9):
                new[k][obstacles] = gathered[_OPP[k]][obstacles]
            speeds = new

        local_density = speeds.sum(axis=0)
        u_x = (
            speeds[1] + speeds[5] + speeds[8]
            - (speeds[3] + speeds[6] + speeds[7])
        ) / local_density
        u_y = (
            speeds[2] + speeds[5] + speeds[6]
            - (speeds[4] + speeds[7] + speeds[8])
        ) / local_density
        speed = np.sqrt(u_x * u_x + u_y * u_y)
        free = ~obstacles
        return {
            "av_vel": float(speed[free].sum() / free.sum()),
            "total_density": float(local_density.sum()),
        }

    def tolerance(self) -> float:
        return 1e-8
