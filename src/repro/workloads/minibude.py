"""miniBUDE — molecular-docking energy evaluation (fasten_main kernel).

The real mini-app scores ligand poses against a protein: for each pose,
transform every ligand atom by the pose's rigid-body matrix, then
accumulate pairwise energy terms against every protein atom. Two structural
properties matter for the ISA comparison:

* protein atoms are **records** (the real ``Atom``/``FFParams`` structs);
  here a 6-double AoS array strided by the atom index — the access pattern
  both compilers strength-reduce to a single bumped pointer with
  immediate-offset loads;
* the inner pair loop is **branch-heavy** (type matching, steric clash,
  cutoff zones) — where RISC-V's fused compare-and-branch repeatedly saves
  the NZCV-setting compare AArch64 must issue, the effect behind the
  paper's ~16% shorter RISC-V path on this benchmark.

Pose transform matrices are precomputed host-side (the real code computes
them from pose angles with ``sin``/``cos`` once per pose) and shipped as
input data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Workload

CUTOFF = 4.0
TYPE_BONUS = 0.1
NTYPES = 4
SEED = 42
FIELDS = 6  # x, y, z, radius, hphb, chg


@dataclass(frozen=True)
class BudeParams:
    nposes: int = 8      # paper: 64 (bm1, -n 64)
    natlig: int = 8      # bm1: 26
    natpro: int = 64     # bm1: 938


def _inputs(p: BudeParams):
    rng = np.random.default_rng(SEED)
    protein = {
        "x": rng.uniform(-2.0, 2.0, p.natpro),
        "y": rng.uniform(-2.0, 2.0, p.natpro),
        "z": rng.uniform(-2.0, 2.0, p.natpro),
        "radius": rng.uniform(1.0, 2.0, p.natpro),
        "hphb": rng.uniform(-1.0, 1.0, p.natpro),
        "chg": rng.uniform(-1.0, 1.0, p.natpro),
        "type": rng.integers(0, NTYPES, p.natpro),
        "zone": rng.integers(0, 3, p.natpro),
    }
    ligand = {
        "x": rng.uniform(-1.0, 1.0, p.natlig),
        "y": rng.uniform(-1.0, 1.0, p.natlig),
        "z": rng.uniform(-1.0, 1.0, p.natlig),
        "radius": rng.uniform(1.0, 2.0, p.natlig),
        "hphb": rng.uniform(-1.0, 1.0, p.natlig),
        "chg": rng.uniform(-1.0, 1.0, p.natlig),
        "type": rng.integers(0, NTYPES, p.natlig),
    }
    theta = rng.uniform(0.0, 2 * np.pi, p.nposes)
    trans = rng.uniform(-0.5, 0.5, (3, p.nposes))
    transforms = np.zeros((12, p.nposes))
    transforms[0] = np.cos(theta)
    transforms[1] = -np.sin(theta)
    transforms[3] = trans[0]
    transforms[4] = np.sin(theta)
    transforms[5] = np.cos(theta)
    transforms[7] = trans[1]
    transforms[10] = 1.0
    transforms[11] = trans[2]
    return protein, ligand, transforms


def _double_literal(name: str, values) -> str:
    body = ", ".join(repr(float(v)) for v in values)
    return f"global double {name}[{len(values)}] = {{ {body} }};"


def _long_literal(name: str, values) -> str:
    body = ", ".join(str(int(v)) for v in values)
    return f"global long {name}[{len(values)}] = {{ {body} }};"


class MiniBude(Workload):
    name = "minibude"
    kernels = ("fasten_main",)

    def __init__(self, params: BudeParams = BudeParams()):
        self.params = params

    @classmethod
    def at_scale(cls, scale: float) -> "MiniBude":
        base = BudeParams()
        return cls(BudeParams(
            nposes=max(2, int(base.nposes * scale)),
            natlig=base.natlig,
            natpro=base.natpro,
        ))

    def source(self) -> str:
        p = self.params
        protein, ligand, transforms = _inputs(p)
        # AoS protein records: [x, y, z, radius, hphb, chg] per atom
        prot_aos = np.empty(p.natpro * FIELDS)
        for i, field in enumerate(("x", "y", "z", "radius", "hphb", "chg")):
            prot_aos[i::FIELDS] = protein[field]
        # integer record per atom: [hb type, interaction zone]
        p_int = np.empty(p.natpro * 2, dtype=np.int64)
        p_int[0::2] = protein["type"]
        p_int[1::2] = protein["zone"]
        decls = [
            _double_literal("prot", prot_aos),
            _long_literal("p_int", p_int),
            _double_literal("l_x", ligand["x"]),
            _double_literal("l_y", ligand["y"]),
            _double_literal("l_z", ligand["z"]),
            _double_literal("l_radius", ligand["radius"]),
            _double_literal("l_hphb", ligand["hphb"]),
            _double_literal("l_chg", ligand["chg"]),
            _long_literal("l_type", ligand["type"]),
        ]
        decls += [_double_literal(f"t{i}", transforms[i]) for i in range(12)]
        decl_text = "\n".join(decls)
        return f"""
// miniBUDE — fasten_main pose-scoring kernel (kernelc port)
{decl_text}
global double energies[{p.nposes}];
global double total_energy;
global double best_energy;

func void fasten_main() {{
  region "fasten_main" {{
    for (long pose = 0; pose < {p.nposes}; pose = pose + 1) {{
      double etot = 0.0;
      for (long il = 0; il < {p.natlig}; il = il + 1) {{
        // transform ligand atom il into the pose frame
        double lpx = t0[pose] * l_x[il] + t1[pose] * l_y[il]
          + t2[pose] * l_z[il] + t3[pose];
        double lpy = t4[pose] * l_x[il] + t5[pose] * l_y[il]
          + t6[pose] * l_z[il] + t7[pose];
        double lpz = t8[pose] * l_x[il] + t9[pose] * l_y[il]
          + t10[pose] * l_z[il] + t11[pose];
        double lrad = l_radius[il];
        double lhphb = l_hphb[il];
        double lchg = l_chg[il];
        long ltype = l_type[il];
        for (long ip = 0; ip < {p.natpro}; ip = ip + 1) {{
          double dx = lpx - prot[ip * {FIELDS} + 0];
          double dy = lpy - prot[ip * {FIELDS} + 1];
          double dz = lpz - prot[ip * {FIELDS} + 2];
          double r = sqrt(dx * dx + dy * dy + dz * dz);
          double distbb = r - (prot[ip * {FIELDS} + 3] + lrad);
          // matching hydrogen-bond types contribute a bonus term
          if (p_int[ip * 2 + 0] == ltype) {{
            etot = etot + {TYPE_BONUS!r};
          }}
          // hydrophobic-zone pairs scale by the partner's hphb parameter
          if (p_int[ip * 2 + 1] == 1) {{
            etot = etot + lhphb * prot[ip * {FIELDS} + 4] * 0.05;
          }}
          // zone 1: steric clash
          if (distbb < 0.0) {{
            etot = etot - distbb * 2.0
              * (lhphb + prot[ip * {FIELDS} + 4]);
          }}
          // electrostatics within the cutoff
          if (r < {CUTOFF!r}) {{
            etot = etot + lchg * prot[ip * {FIELDS} + 5] * (1.0 - r * 0.25);
          }}
        }}
      }}
      energies[pose] = etot * 0.5;
    }}
  }}
}}

func void reduce_energies() {{
  double total = 0.0;
  double best = energies[0];
  for (long pose = 0; pose < {p.nposes}; pose = pose + 1) {{
    total = total + energies[pose];
    best = fmin(best, energies[pose]);
  }}
  total_energy = total;
  best_energy = best;
}}

func long main() {{
  fasten_main();
  reduce_energies();
  return 0;
}}
"""

    def expected(self) -> dict[str, float]:
        p = self.params
        protein, ligand, transforms = _inputs(p)
        energies = []
        for pose in range(p.nposes):
            t = transforms[:, pose]
            etot = 0.0
            for il in range(p.natlig):
                lx, ly, lz = ligand["x"][il], ligand["y"][il], ligand["z"][il]
                lpx = t[0] * lx + t[1] * ly + t[2] * lz + t[3]
                lpy = t[4] * lx + t[5] * ly + t[6] * lz + t[7]
                lpz = t[8] * lx + t[9] * ly + t[10] * lz + t[11]
                lrad = ligand["radius"][il]
                lhphb = ligand["hphb"][il]
                lchg = ligand["chg"][il]
                ltype = ligand["type"][il]
                for ip in range(p.natpro):
                    dx = lpx - protein["x"][ip]
                    dy = lpy - protein["y"][ip]
                    dz = lpz - protein["z"][ip]
                    r = float(np.sqrt(dx * dx + dy * dy + dz * dz))
                    distbb = r - (protein["radius"][ip] + lrad)
                    if protein["type"][ip] == ltype:
                        etot = etot + TYPE_BONUS
                    if protein["zone"][ip] == 1:
                        etot = etot + lhphb * protein["hphb"][ip] * 0.05
                    if distbb < 0.0:
                        etot = etot - distbb * 2.0 * (lhphb + protein["hphb"][ip])
                    if r < CUTOFF:
                        etot = etot + lchg * protein["chg"][ip] * (1.0 - r * 0.25)
            energies.append(etot * 0.5)
        return {
            "total_energy": float(sum(energies)),
            "best_energy": float(min(energies)),
        }
