"""Delta-debugging reproducer minimization.

Generated programs keep all cross-statement state in globals, so *any
subset* of the top-level statements is still a legal program
(:meth:`GenProgram.render` takes a ``keep`` list of statement indices).
That makes classic ddmin over statement indices sound: no dataflow or
scoping repair is ever needed.

The shrinking predicate is "the reduced program still produces a finding
of the same kind" — judged by re-running the full differential stack on
the subset. A reduction that introduces a *different* failure (e.g. a
``CompilerError`` appearing while shrinking a value divergence) is
rejected, so the reproducer that comes out demonstrates the original
bug, not a new one.
"""

from __future__ import annotations

from repro.fuzz.generator import GenProgram

__all__ = ["ddmin", "shrink_program"]


def ddmin(indices: list[int], failing) -> list[int]:
    """Classic ddmin: a 1-minimal sublist of ``indices`` on which
    ``failing(subset)`` is still True.

    ``failing(indices)`` must be True on entry; ``failing`` must be
    deterministic. Returns a subset where removing any single element
    makes the predicate False.
    """
    keep = list(indices)
    chunks = 2
    while len(keep) >= 2:
        size = max(1, len(keep) // chunks)
        reduced = False
        start = 0
        while start < len(keep):
            candidate = keep[:start] + keep[start + size:]
            if candidate and failing(candidate):
                keep = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                # restart the scan on the reduced list
                start = 0
                continue
            start += size
        if not reduced:
            if chunks >= len(keep):
                break
            chunks = min(len(keep), chunks * 2)
    return keep


def shrink_program(prog: GenProgram, kind: str, *,
                   max_instructions: int | None = None) -> list[int]:
    """Statement indices of a 1-minimal reproducer for ``prog``.

    ``kind`` is the :class:`~repro.fuzz.differential.Finding` kind being
    preserved. Falls back to the full program when the failure is not
    reproducible in-process (it should be — every oracle here is
    deterministic).
    """
    from repro.fuzz import differential

    budget = (max_instructions if max_instructions is not None
              else differential.DEFAULT_MAX_INSTRUCTIONS)

    def failing(keep: list[int]) -> bool:
        found = differential.diff_source(
            prog.render(keep=keep), seed=prog.seed, profile=prog.profile,
            max_instructions=budget)
        return any(f.kind == kind for f in found)

    everything = list(range(len(prog.stmts)))
    if not failing(everything):
        return everything
    return ddmin(everything, failing)
