"""Cross-ISA differential execution: the fuzzer's oracle stack.

One generated program is judged by a stack of oracles, cheapest first:

1. **Compile** for both ISAs — a :class:`~repro.common.errors.CompilerError`
   on a generator-legal program is itself a finding (the generator once
   flushed out a temp-register leak in the back end this way).
2. **Within-ISA**: the decode-once interpreter and the block-translation
   fast path must produce *identical* observable state — exit code,
   stdout, every global's bit pattern, and the exact retirement count
   (blocks retire the same instruction stream they translate).
3. **Analysis**: the fused engine consuming translate-time block-summary
   events must produce *exactly* the results of the five legacy
   per-retire probes on the same binary — path length, plain and scaled
   critical paths, instruction mix and windowed CPs.
4. **Sharding**: the same analysis computed sharded — snapshot cuts at
   2–4 seeded checkpoints, slices merged (:mod:`repro.harness.sharding`)
   — must *exactly* equal the serial fused result, document for
   document. Randomized programs probe slice boundaries (mid-loop,
   mid-dependency-chain, straddling memory reuse) that the curated
   workloads never hit.
4b. **Warm reuse**: the same program analyzed as the first plan on a
   fresh :class:`~repro.harness.warmcache.WarmCache` and again as plan
   #N after intervening cached reuses must produce identical analysis
   documents. The reuse loop passes through the cache's fingerprint
   re-check, so this oracle composes with the ``warm`` fault site: a
   garbled cached image raises ``WarmStateError``, the entry is evicted
   and rebuilt (the executor's recycle-and-retry in miniature), and the
   documents must *still* agree.
4c. **Distributed scatter** (opt-in, ``--dist-oracle``): a small suite
   scattered by a :class:`~repro.dist.dispatcher.Dispatcher` across two
   in-process worker nodes over real localhost TCP — with an injected
   ``dist`` socket cut mid-run, so one node is lost and its leases are
   redispatched — must render artifacts *byte-identical* to the same
   suite run directly through ``run_suite``. This is the lease/dedup
   machinery's end-to-end determinism proof under fire.
4d. **Serve round-trip** (opt-in, ``--serve-oracle``): a small suite
   submitted to an in-process :class:`~repro.serve.app.ServeApp` over
   real HTTP must yield artifacts *byte-identical* to the same suite
   run directly through :func:`~repro.harness.experiments.run_suite`
   and rendered locally. Both sides share the result cache, so the
   oracle exercises the daemon's admission → journal → dispatch →
   render path, not the simulator twice. Composes with the ``serve``
   fault site: injected admission races surface as 429s the oracle
   must survive by retrying, and journal-line corruption must never
   change the rendered bytes.
5. **Cross-ISA**: RV64 and AArch64 executions of the same source must
   agree on exit code, stdout and global bit patterns. Retirement counts
   legitimately differ (that delta is the paper's whole subject).
6. **Invariants**: an interpreter run under
   :class:`~repro.sim.invariants.InvariantChecker` must retire cleanly.

Doubles are compared as raw 64-bit patterns: the back ends never
contract multiply-add (no FMA), and the generator avoids NaN/inf, so
bit-exact equality across ISAs is the correct expectation.

Any guest fault surfaces as a :class:`Finding` carrying the structured
:class:`~repro.sim.postmortem.GuestFaultReport`; a silent value
divergence captures the translated core's state post-hoc (reason-tagged,
with block history) so even "wrong answer, no crash" cases come with a
register file and disassembly to stare at.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.common.errors import CompilerError
from repro.compiler import compile_source
from repro.isa import get_isa
from repro.loader import load_program
from repro.sim import postmortem
from repro.sim.emucore import EmulationCore
from repro.sim.invariants import InvariantChecker
from repro.sim.machine import Machine
from repro.sim.memory import Memory
from repro.fuzz.generator import GenProgram, PROFILES

__all__ = [
    "ISAS",
    "Finding",
    "Observation",
    "observe",
    "diff_analysis",
    "diff_sharded",
    "diff_warm",
    "diff_serve",
    "diff_dist",
    "diff_source",
    "run_case",
    "run_campaign",
]

ISAS = ("rv64", "aarch64")

#: Instruction budget per run: generated programs retire well under this.
DEFAULT_MAX_INSTRUCTIONS = 3_000_000

#: Retired-history depth kept on translated runs for post-mortems.
HISTORY_DEPTH = 64


@dataclass
class Observation:
    """Everything observable about one finished execution."""

    exit_code: int
    instructions: int
    stdout: bytes
    #: symbol → raw little-endian bit pattern(s), one int per element.
    globals: dict[str, list[int]]

    def state(self) -> tuple:
        """Observable state *excluding* the retirement count (the
        cross-ISA comparison key)."""
        return (self.exit_code, self.stdout,
                tuple(sorted((k, tuple(v)) for k, v in self.globals.items())))

    def to_dict(self) -> dict:
        return {
            "exit_code": self.exit_code,
            "instructions": self.instructions,
            "stdout": self.stdout.decode("utf-8", "replace"),
            "globals": {k: [hex(x) for x in v]
                        for k, v in sorted(self.globals.items())},
        }


@dataclass
class Finding:
    """One divergence/fault/compile failure discovered by the fuzzer."""

    kind: str          # compile-error | guest-fault | within-isa |
    #                  # analysis | sharding | warm-reuse | cross-isa |
    #                  # invariant
    detail: str
    isa: str = ""      # "" for cross-ISA findings
    source: str = ""
    seed: int | None = None
    profile: str = ""
    #: Serialized :class:`GuestFaultReport` when one was captured.
    fault: dict | None = None
    observations: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "isa": self.isa,
            "seed": self.seed,
            "profile": self.profile,
            "fault": self.fault,
            "observations": self.observations,
        }


def observe(compiled, *, translate: bool, max_instructions: int,
            history: int = 0, check_invariants: bool = False):
    """Run ``compiled`` and return ``(Observation, core)``.

    Mirrors :func:`repro.sim.run_image` but keeps the core so a caller
    who later discovers a silent divergence can still capture its state
    (:func:`repro.sim.postmortem.capture` with a ``reason``). Guest
    faults propagate with their post-mortem report attached.
    """
    isa = get_isa(compiled.isa_name)
    memory = Memory(1 << 24)
    load_program(compiled.image, memory)
    machine = Machine(isa.name, memory)
    machine.reset_stack()
    machine.pc = compiled.image.entry
    probes = ()
    if check_invariants:
        probes = (InvariantChecker.for_image(compiled.image, machine),)
    core = EmulationCore(isa, machine, probes, translate=translate)
    if history:
        core.enable_history(history)
    result = core.run(max_instructions=max_instructions)
    obs = Observation(
        exit_code=result.exit_code,
        instructions=result.instructions,
        stdout=result.stdout,
        globals=_read_globals(compiled.image, memory),
    )
    return obs, core


def _read_globals(image, memory) -> dict[str, list[int]]:
    """Raw bit patterns of every fuzz-pool global present in the image."""
    out: dict[str, list[int]] = {}
    for name, _kind, count in GenProgram.standard_observables():
        addr = image.symbols.get(name)
        if addr is None:
            continue
        out[name] = [memory.load(addr + 8 * i, 8) for i in range(count)]
    return out


#: Window sizes for the fuzzer's analysis oracle: small enough that
#: short generated programs produce full windows.
_ORACLE_WINDOWS = (4, 16)


def diff_analysis(compiled, *, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
                  ) -> str:
    """Within-ISA analysis oracle: run the fused engine over the
    translated block-summary event stream AND the five legacy per-retire
    probes over the interpreter, and describe the first metric on which
    they disagree ("" = exact agreement).
    """
    from repro.analysis import (
        AnalysisConfig,
        AnalysisResult,
        CriticalPathProbe,
        InstructionMixProbe,
        PathLengthProbe,
        WindowedCPProbe,
    )
    from repro.harness.plan import SCALED_MODELS
    from repro.sim.config import load_core_model
    from repro.sim.emucore import run_image

    isa = get_isa(compiled.isa_name)
    model = load_core_model(SCALED_MODELS[compiled.isa_name])
    cfg = AnalysisConfig(windowed=True, window_sizes=_ORACLE_WINDOWS)
    engine = cfg.build_engine(regions=compiled.image.regions, model=model)
    run_image(compiled.image, isa, batch_sinks=[engine],
              max_instructions=max_instructions)
    fused = engine.results().to_dict()

    path = PathLengthProbe(compiled.image.regions)
    cp = CriticalPathProbe()
    scaled = CriticalPathProbe(model)
    mix = InstructionMixProbe()
    window = WindowedCPProbe(_ORACLE_WINDOWS, 0.5)
    run_image(compiled.image, isa, [path, cp, scaled, mix, window],
              max_instructions=max_instructions, translate=False)
    oracle = AnalysisResult(
        path=path.result(), cp=cp.result(), scaled_cp=scaled.result(),
        mix=mix.result(), windowed=window.results(),
    ).to_dict()

    if fused == oracle:
        return ""
    for key in ("path", "cp", "scaled_cp", "mix", "windowed"):
        if fused.get(key) != oracle.get(key):
            delta = (f"{key}: fused {fused.get(key)!r} != "
                     f"probes {oracle.get(key)!r}")
            return delta if len(delta) <= 500 else delta[:497] + "..."
    return "analysis results differ"


def diff_sharded(compiled, *, seed: int = 0,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> str:
    """Sharding oracle: cut the run at seeded checkpoints, analyze the
    slices independently, merge — and describe the first metric on which
    the merged result disagrees with the serial fused engine ("" = exact
    agreement). Slice count (2–4) and checkpoint spacing are drawn from
    ``seed``, so every case cuts the program somewhere new.
    """
    import random

    from repro.analysis import AnalysisConfig
    from repro.harness.plan import SCALED_MODELS
    from repro.harness.sharding import run_sharded_config
    from repro.sim.config import load_core_model
    from repro.sim.emucore import run_image

    isa = get_isa(compiled.isa_name)
    model = load_core_model(SCALED_MODELS[compiled.isa_name])
    cfg = AnalysisConfig(windowed=True, window_sizes=_ORACLE_WINDOWS)
    engine = cfg.build_engine(regions=compiled.image.regions, model=model)
    run_image(compiled.image, isa, batch_sinks=[engine],
              max_instructions=max_instructions)
    serial = engine.results().to_dict()

    rng = random.Random(seed)
    result, _stats = run_sharded_config(
        None, compiled.isa_name, "gcc12", compiled, cfg, model,
        max_instructions, rng.randint(2, 4), parallel=False,
        checkpoint_interval=rng.choice((256, 512, 1024, 2048)))
    sharded = result.analysis.to_dict()

    if sharded == serial:
        return ""
    for key in ("path", "cp", "scaled_cp", "mix", "windowed"):
        if sharded.get(key) != serial.get(key):
            delta = (f"{key}: sharded {sharded.get(key)!r} != "
                     f"serial {serial.get(key)!r}")
            return delta if len(delta) <= 500 else delta[:497] + "..."
    return "sharded analysis differs"


def diff_warm(compiled, *, reuses: int = 3,
              max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> str:
    """Warm-reuse oracle: analyze the program as plan #1 on a fresh
    warm cache, then again as plan #N after ``reuses`` intervening
    cache reuses, and describe the first metric on which the two
    analysis documents disagree ("" = exact agreement).

    Every reuse passes through the cache's fingerprint re-check, so an
    installed ``warm`` fault garbling the cached image surfaces here as
    :class:`WarmStateError`; the oracle rebuilds and continues, exactly
    like the executor recycling a poisoned worker — and the final
    document must still match the first.
    """
    from repro.analysis import AnalysisConfig
    from repro.harness.plan import SCALED_MODELS
    from repro.harness.warmcache import WarmCache, WarmStateError
    from repro.sim.config import load_core_model
    from repro.sim.emucore import run_image

    isa = get_isa(compiled.isa_name)
    model = load_core_model(SCALED_MODELS[compiled.isa_name])
    cfg = AnalysisConfig(windowed=True, window_sizes=_ORACLE_WINDOWS)

    def analyze(prog) -> dict:
        engine = cfg.build_engine(regions=prog.image.regions, model=model)
        run_image(prog.image, isa, batch_sinks=[engine],
                  max_instructions=max_instructions)
        return engine.results().to_dict()

    def build():
        return compile_source(compiled.source, compiled.isa_name,
                              compiled.profile.name)

    warm = WarmCache()
    key = ("fuzz", compiled.isa_name, compiled.profile.name)
    first = analyze(warm.cached_program(key, build))
    reused = None
    for _ in range(max(1, reuses)):
        try:
            reused = warm.cached_program(key, build)
        except WarmStateError:
            # poisoned entry evicted; the next lookup rebuilds — the
            # executor's recycle-and-retry, in miniature
            reused = warm.cached_program(key, build)
    last = analyze(reused)

    if first == last:
        return ""
    for metric in ("path", "cp", "scaled_cp", "mix", "windowed"):
        if first.get(metric) != last.get(metric):
            delta = (f"{metric}: plan #1 {first.get(metric)!r} != "
                     f"warm plan #N {last.get(metric)!r}")
            return delta if len(delta) <= 500 else delta[:497] + "..."
    return "warm-reuse analysis differs"


#: Lazily started in-process serve daemon shared by every ``diff_serve``
#: call in this process (starting a daemon per case would dwarf the
#: simulation cost; sharing one also matches production, where many
#: submissions hit one long-lived service).
_SERVE_FIXTURE: dict = {"app": None, "addr": None}


def _serve_fixture() -> tuple[str, int]:
    if _SERVE_FIXTURE["app"] is None:
        import atexit

        from repro.serve.app import ServeApp

        app = ServeApp(jobs=2, queue_limit=8, client_quota=0)
        addr = app.start_background()
        atexit.register(app.stop_background)
        _SERVE_FIXTURE.update(app=app, addr=addr)
    return _SERVE_FIXTURE["addr"]


def diff_serve(seed: int = 0, *, scale: float = 0.02) -> str:
    """Serve round-trip oracle: submit a small suite to the shared
    in-process daemon over HTTP and describe the first artifact whose
    bytes differ from a direct :func:`run_suite` rendering ("" = exact
    agreement). The workload rotates with ``seed`` so a campaign covers
    the registry; the shared result cache keeps repeat cases cheap.

    Injected admission faults (``serve``/``transient``, queue-full
    races) surface as 429s, which the oracle absorbs by honouring
    Retry-After a few times — persistent shedding *is* a finding.
    """
    import time as _time

    from repro.harness.experiments import run_suite
    from repro.serve.app import render_suite_artifacts
    from repro.serve.client import ServeClient, ServeError
    from repro.workloads import ALL_WORKLOADS

    workload = sorted(ALL_WORKLOADS)[seed % len(ALL_WORKLOADS)]
    params = {"scale": scale, "workloads": [workload], "windowed": False}
    host, port = _serve_fixture()
    client = ServeClient(host, port)
    submitted = None
    for _attempt in range(5):
        try:
            submitted = client.submit(params, client="fuzz")
            break
        except ServeError as err:
            if err.status != 429:
                return f"submission rejected: {err}"
            _time.sleep(min(float(err.retry_after or 1), 2.0))
    if submitted is None:
        return "submission shed with 429 five times in a row"
    job = client.wait(submitted["job"], timeout=600.0)
    job_id = job["job"]
    if job["state"] != "done":
        return (f"job {job_id} finished {job['state']!r}: "
                f"{job.get('error', '')}")
    suite = run_suite(scale, workloads=(workload,), windowed=False,
                      jobs=1, verbose=False)
    expected = render_suite_artifacts(suite, windowed=False)
    served = set(client.artifacts(job_id))
    missing = sorted(set(expected) - served)
    if missing:
        return f"artifacts missing over HTTP: {missing}"
    for name in sorted(expected):
        got = client.artifact(job_id, name)
        if got != expected[name]:
            return (f"{name}: HTTP-served bytes differ from the direct "
                    f"run_suite rendering ({len(got)} vs "
                    f"{len(expected[name])} chars)")
    return ""


#: Lazily started distributed fixture shared by every ``diff_dist``
#: call: one Dispatcher listening on localhost plus two in-process
#: WorkerNode threads, each with its own cache directory (spinning this
#: up per case would dwarf the simulation cost).
_DIST_FIXTURE: dict = {"dispatcher": None}


def _dist_fixture():
    if _DIST_FIXTURE["dispatcher"] is None:
        import atexit
        import tempfile
        from pathlib import Path

        from repro.dist.dispatcher import Dispatcher
        from repro.dist.worker import WorkerNode
        from repro.harness.cache import ResultCache
        from repro.harness.executor import Executor

        tmp = Path(tempfile.mkdtemp(prefix="repro-dist-fuzz-"))
        executor = Executor(jobs=1, cache=ResultCache(tmp / "daemon"),
                            persistent=True)
        dispatcher = Dispatcher(executor=executor, lease_timeout=30.0,
                                node_heartbeat=5.0, retries=2)
        host, port = dispatcher.start_listener()
        nodes = [
            WorkerNode(host, port, name=f"fuzz-node-{i}",
                       cache_root=tmp / f"node{i}", heartbeat=0.5)
            for i in (1, 2)
        ]
        for node in nodes:
            node.start_background()
        dispatcher.wait_for_nodes(2, timeout=15.0)

        def teardown():
            for node in nodes:
                node.stop()
            dispatcher.close()
            executor.close()

        atexit.register(teardown)
        _DIST_FIXTURE.update(dispatcher=dispatcher, nodes=nodes)
    return _DIST_FIXTURE["dispatcher"]


def diff_dist(seed: int = 0, *, scale: float = 0.02) -> str:
    """Distributed scatter oracle: run a small suite through the shared
    two-node dispatcher fixture — cutting one node's socket mid-run —
    and describe the first artifact whose bytes differ from a direct
    :func:`run_suite` rendering ("" = exact agreement). The workload
    and the victim plan rotate with ``seed``.

    When a user fault plan is already installed (``--fault-plan``) it
    is left in charge; otherwise a ``dist``/``transient`` spec is
    installed for the duration that makes the dispatcher sever one
    node's connection right after a task frame is sent, forcing a
    lease redispatch the artifacts must not notice.
    """
    from repro.harness import faults
    from repro.harness.experiments import run_suite
    from repro.harness.plan import plan_suite
    from repro.serve.app import assemble_suite, render_suite_artifacts
    from repro.workloads import ALL_WORKLOADS

    workload = sorted(ALL_WORKLOADS)[seed % len(ALL_WORKLOADS)]
    params = {"scale": scale, "workloads": [workload], "windowed": False,
              "window_sizes": ()}
    plans = plan_suite(scale, workloads=(workload,), windowed=False)
    dispatcher = _dist_fixture()

    installed = None
    if faults.active() is None:
        victim = plans[seed % len(plans)]
        installed = faults.FaultPlan(specs=[faults.FaultSpec(
            site="dist", kind="transient",
            plan=f"dispatch:{victim.describe()}", at=(1,))],
            seed=seed)
        faults.install(installed)
    try:
        results = dispatcher.run(plans)
    except Exception as err:  # noqa: BLE001 — a failed scatter IS the
        return f"distributed run failed: {type(err).__name__}: {err}"
    finally:
        if installed is not None:
            faults.uninstall()

    suite = run_suite(scale, workloads=(workload,), windowed=False,
                      jobs=1, verbose=False)
    expected = render_suite_artifacts(suite, windowed=False)
    got = render_suite_artifacts(assemble_suite(params, results),
                                 windowed=False)
    missing = sorted(set(expected) - set(got))
    if missing:
        return f"artifacts missing from the distributed run: {missing}"
    for name in sorted(expected):
        if got[name] != expected[name]:
            return (f"{name}: distributed bytes differ from the direct "
                    f"run_suite rendering ({len(got[name])} vs "
                    f"{len(expected[name])} chars)")
    return ""


def _fault_finding(kind: str, err: Exception, *, isa: str, source: str,
                   seed=None, profile="") -> Finding:
    report = getattr(err, "fault_report", None)
    return Finding(
        kind=kind, detail=str(err), isa=isa, source=source, seed=seed,
        profile=profile,
        fault=report.to_dict() if report is not None else None,
    )


def diff_source(source: str, *, seed: int | None = None, profile: str = "",
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                serve_oracle: bool = False,
                dist_oracle: bool = False) -> list[Finding]:
    """All findings for one program source (empty list = clean).

    ``serve_oracle`` additionally runs the HTTP round-trip oracle
    (:func:`diff_serve`) — opt-in because it starts a daemon and runs a
    real (tiny) workload suite, which the unit-test path must not pay.
    ``dist_oracle`` likewise runs the two-node distributed scatter
    oracle (:func:`diff_dist`).
    """
    findings: list[Finding] = []
    interp: dict[str, Observation] = {}

    for isa_name in ISAS:
        try:
            compiled = compile_source(source, isa_name, "gcc12")
        except CompilerError as err:
            findings.append(Finding(
                kind="compile-error", detail=str(err), isa=isa_name,
                source=source, seed=seed, profile=profile))
            continue

        try:
            ref, _core = observe(
                compiled, translate=False,
                max_instructions=max_instructions)
        except postmortem.GUEST_FAULTS as err:
            findings.append(_fault_finding(
                "guest-fault", err, isa=isa_name, source=source,
                seed=seed, profile=profile))
            continue
        interp[isa_name] = ref

        try:
            fast, core = observe(
                compiled, translate=True, history=HISTORY_DEPTH,
                max_instructions=max_instructions)
        except postmortem.GUEST_FAULTS as err:
            findings.append(_fault_finding(
                "guest-fault", err, isa=isa_name, source=source,
                seed=seed, profile=profile))
            continue

        diverged = (fast.state() != ref.state()
                    or fast.instructions != ref.instructions)
        if diverged:
            delta = _describe_delta(ref, fast)
            report = postmortem.capture(
                core, reason=f"within-ISA divergence ({delta})")
            findings.append(Finding(
                kind="within-isa",
                detail=f"{isa_name}: translated run diverges from "
                       f"interpreter ({delta})",
                isa=isa_name, source=source, seed=seed, profile=profile,
                fault=report.to_dict(),
                observations={"interpreter": ref.to_dict(),
                              "translated": fast.to_dict()}))
        else:
            # only meaningful when the execution paths agree: the
            # analysis oracle compares fused-over-translated against
            # probes-over-interpreter, so an execution divergence would
            # just be re-reported here as a duplicate analysis delta
            try:
                delta = diff_analysis(compiled,
                                      max_instructions=max_instructions)
            except postmortem.GUEST_FAULTS as err:
                findings.append(_fault_finding(
                    "analysis", err, isa=isa_name, source=source,
                    seed=seed, profile=profile))
            else:
                if delta:
                    findings.append(Finding(
                        kind="analysis",
                        detail=f"{isa_name}: fused block-summary "
                               f"analysis diverges from the probe "
                               f"oracle ({delta})",
                        isa=isa_name, source=source, seed=seed,
                        profile=profile))
            try:
                delta = diff_sharded(compiled, seed=seed or 0,
                                     max_instructions=max_instructions)
            except postmortem.GUEST_FAULTS as err:
                findings.append(_fault_finding(
                    "sharding", err, isa=isa_name, source=source,
                    seed=seed, profile=profile))
            else:
                if delta:
                    findings.append(Finding(
                        kind="sharding",
                        detail=f"{isa_name}: sharded analysis diverges "
                               f"from the serial fused engine ({delta})",
                        isa=isa_name, source=source, seed=seed,
                        profile=profile))
            try:
                delta = diff_warm(compiled,
                                  max_instructions=max_instructions)
            except postmortem.GUEST_FAULTS as err:
                findings.append(_fault_finding(
                    "warm-reuse", err, isa=isa_name, source=source,
                    seed=seed, profile=profile))
            else:
                if delta:
                    findings.append(Finding(
                        kind="warm-reuse",
                        detail=f"{isa_name}: analysis after warm cache "
                               f"reuse diverges from the first plan "
                               f"({delta})",
                        isa=isa_name, source=source, seed=seed,
                        profile=profile))

        try:
            observe(compiled, translate=False, check_invariants=True,
                    max_instructions=max_instructions)
        except postmortem.GUEST_FAULTS as err:
            findings.append(_fault_finding(
                "invariant", err, isa=isa_name, source=source,
                seed=seed, profile=profile))

    if dist_oracle:
        try:
            delta = diff_dist(seed or 0)
        except Exception as err:  # noqa: BLE001 — fixture trouble is the
            findings.append(Finding(  # finding, not a fuzzer crash
                kind="dist",
                detail=f"dist oracle failed: {type(err).__name__}: {err}",
                source=source, seed=seed, profile=profile))
        else:
            if delta:
                findings.append(Finding(
                    kind="dist",
                    detail=f"distributed artifacts diverge from the "
                           f"direct run_suite rendering ({delta})",
                    source=source, seed=seed, profile=profile))

    if serve_oracle:
        try:
            delta = diff_serve(seed or 0)
        except Exception as err:  # noqa: BLE001 — daemon trouble is the
            findings.append(Finding(  # finding, not a fuzzer crash
                kind="serve",
                detail=f"serve oracle failed: {type(err).__name__}: {err}",
                source=source, seed=seed, profile=profile))
        else:
            if delta:
                findings.append(Finding(
                    kind="serve",
                    detail=f"HTTP-served artifacts diverge from the "
                           f"direct run_suite rendering ({delta})",
                    source=source, seed=seed, profile=profile))

    if len(interp) == len(ISAS):
        a, b = (interp[name] for name in ISAS)
        if a.state() != b.state():
            findings.append(Finding(
                kind="cross-isa",
                detail="ISAs disagree on observable state: "
                       + _describe_delta(a, b),
                source=source, seed=seed, profile=profile,
                observations={ISAS[0]: a.to_dict(), ISAS[1]: b.to_dict()}))
    return findings


def _describe_delta(a: Observation, b: Observation) -> str:
    """First observable that differs, human-readably."""
    if a.exit_code != b.exit_code:
        return f"exit {a.exit_code} != {b.exit_code}"
    if a.stdout != b.stdout:
        return f"stdout {a.stdout!r} != {b.stdout!r}"
    for name in sorted(set(a.globals) | set(b.globals)):
        va, vb = a.globals.get(name), b.globals.get(name)
        if va != vb:
            for i, (xa, xb) in enumerate(zip(va or (), vb or ())):
                if xa != xb:
                    return f"{name}[{i}] {xa:#x} != {xb:#x}"
            return f"{name} {va} != {vb}"
    if a.instructions != b.instructions:
        return f"instret {a.instructions} != {b.instructions}"
    return "states equal"  # caller compared something stricter


def run_case(seed: int, profile: str, *,
             max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
             serve_oracle: bool = False,
             dist_oracle: bool = False) -> list[Finding]:
    """Generate and differentially execute one ``(seed, profile)`` case."""
    prog = GenProgram(seed, profile)
    return diff_source(prog.render(), seed=seed, profile=profile,
                       max_instructions=max_instructions,
                       serve_oracle=serve_oracle,
                       dist_oracle=dist_oracle)


def run_campaign(seed: int, count: int, *, profiles=PROFILES,
                 out_dir=None, time_budget: float | None = None,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 minimize: bool = True, progress=None,
                 serve_oracle: bool = False,
                 dist_oracle: bool = False) -> dict:
    """Run ``count`` cases per profile starting at ``seed``.

    Returns a summary dict; when ``out_dir`` is given, each finding's
    (minimized) reproducer is written as ``case-<seed>-<profile>.kc``
    plus a ``.json`` sidecar with the finding details.
    """
    from repro.fuzz.minimize import shrink_program

    t0 = time.monotonic()
    cases = 0
    findings: list[Finding] = []
    stopped = ""
    for index in range(count):
        for profile in profiles:
            if (time_budget is not None
                    and time.monotonic() - t0 >= time_budget):
                stopped = "time budget exhausted"
                break
            case_seed = seed + index
            found = run_case(case_seed, profile,
                             max_instructions=max_instructions,
                             serve_oracle=serve_oracle,
                             dist_oracle=dist_oracle)
            cases += 1
            if progress is not None and not found:
                progress(case_seed, profile, None)
            for finding in found:
                prog = GenProgram(case_seed, profile)
                # serve/dist findings are service properties, not
                # program properties — there is nothing to shrink
                if minimize and finding.kind not in ("serve", "dist"):
                    kept = shrink_program(
                        prog, finding.kind,
                        max_instructions=max_instructions)
                    finding.source = prog.render(keep=kept)
                findings.append(finding)
                if progress is not None:
                    progress(case_seed, profile, finding)
                if out_dir is not None:
                    _write_reproducer(out_dir, finding)
        if stopped:
            break
    return {
        "cases": cases,
        "findings": [f.to_dict() for f in findings],
        "finding_objects": findings,
        "elapsed": time.monotonic() - t0,
        "stopped": stopped or "completed",
    }


def _write_reproducer(out_dir, finding: Finding) -> None:
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = f"case-{finding.seed}-{finding.profile or 'replay'}"
    (out / f"{stem}.kc").write_text(finding.source)
    (out / f"{stem}.json").write_text(
        json.dumps(finding.to_dict(), indent=2, sort_keys=True) + "\n")


def replay_source(source: str, *,
                  max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                  ) -> list[Finding]:
    """Differentially execute a stored ``.kc`` reproducer/corpus file."""
    return diff_source(source, max_instructions=max_instructions)
