"""Cross-ISA differential fuzzing.

Seeded random kernelc programs (:mod:`repro.fuzz.generator`) are
compiled for both ISAs and executed under every oracle the simulator
has — interpreter vs block-translated within an ISA, RV64 vs AArch64
across them, and per-retirement architectural invariants
(:mod:`repro.fuzz.differential`). Failing cases are shrunk to 1-minimal
reproducers by delta debugging (:mod:`repro.fuzz.minimize`); past
findings live as ``.kc`` files in :mod:`repro.fuzz.corpus` and are
replayed in tier-1.

CLI: ``repro fuzz run | replay | corpus``.
"""

from repro.fuzz.generator import PROFILES, GenProgram, case_source
from repro.fuzz.differential import (
    ISAS,
    Finding,
    Observation,
    diff_source,
    run_case,
    run_campaign,
    replay_source,
)
from repro.fuzz.minimize import ddmin, shrink_program
from repro.fuzz.corpus import corpus_dir, corpus_files, replay_corpus

__all__ = [
    "PROFILES",
    "ISAS",
    "GenProgram",
    "case_source",
    "Finding",
    "Observation",
    "diff_source",
    "run_case",
    "run_campaign",
    "replay_source",
    "ddmin",
    "shrink_program",
    "corpus_dir",
    "corpus_files",
    "replay_corpus",
]
