"""Seeded random kernelc program generation for differential fuzzing.

Grows the expression-tree ideas of ``tests/test_compiler_props.py`` into
whole-program generation: a :class:`GenProgram` is a deterministic
function of ``(seed, profile)`` producing a legal, terminating kernelc
program whose entire observable state lives in a fixed set of globals.

Design rules that make the programs useful as differential-fuzz cases:

* **Globals-only state.** Every top-level statement reads and writes
  only the fixed global pool (plus its own loop-local counters), so any
  *subset* of the statements still compiles — the delta-debugging
  shrinker in :mod:`repro.fuzz.minimize` can drop statements freely.
* **Termination by construction.** All loops have literal trip counts;
  ``while`` loops iterate on their own fresh counter.
* **No ISA-defined divergence.** Integer division by zero is
  legitimately different between RV64 and AArch64 (see docs/kernelc.md),
  so divisors are forced odd-nonzero with the ``(x & 255) | 1`` pattern;
  shift amounts are masked to 0..63; float expressions avoid NaN/inf
  (no float division, bounded magnitudes) because ``fmin``/``fmax``
  NaN-propagation rules differ between the ISAs.
* **Profiles** steer the statement mix: ``arith`` (scalar expression
  trees), ``memory`` (array traffic with masked wraparound indices),
  ``control`` (loops, branches, calls, regions), ``mixed``.

Observable state after a run: the process exit code plus the byte
contents of every global (read back by ELF symbol), enumerated by
:attr:`GenProgram.observables`.
"""

from __future__ import annotations

import random

__all__ = ["PROFILES", "GenProgram", "case_source"]

PROFILES = ("arith", "memory", "control", "mixed")

#: Global integer scalars, double scalars, and arrays (power-of-two
#: sizes so generated indices can be masked into range).
_SCALARS = tuple(f"g{i}" for i in range(6))
_DOUBLES = ("d0", "d1", "d2")
_ARRAYS = {"arrA": 16, "arrB": 32}
_FARRAYS = {"fa": 16}

_INT_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")

#: Statement-kind weights per profile.
_WEIGHTS = {
    "arith":   {"scalar": 6, "double": 3, "store": 1, "load": 1,
                "call": 1, "if": 1, "for": 1, "while": 0, "region": 0},
    "memory":  {"scalar": 1, "double": 1, "store": 5, "load": 4,
                "call": 1, "if": 1, "for": 3, "while": 1, "region": 0},
    "control": {"scalar": 1, "double": 1, "store": 1, "load": 1,
                "call": 2, "if": 4, "for": 3, "while": 2, "region": 1},
    "mixed":   {"scalar": 2, "double": 2, "store": 2, "load": 2,
                "call": 1, "if": 2, "for": 2, "while": 1, "region": 1},
}

_HELPERS = """\
func long mix(long a, long b) {
  return ((a ^ (b << 3)) + (a & b)) ^ (a >> 7);
}

func double blend(double x, double y) {
  return fmin(fabs(x), fabs(y)) + fmax(x, y) * 0.5;
}
"""


class GenProgram:
    """One deterministically generated kernelc program.

    ``render(keep=...)`` emits the program with only the selected
    top-level statements — the shrinker's handle.
    """

    def __init__(self, seed: int, profile: str = "mixed",
                 size: int | None = None):
        if profile not in PROFILES:
            raise ValueError(
                f"unknown fuzz profile {profile!r}; expected one of "
                f"{PROFILES}")
        self.seed = seed
        self.profile = profile
        rng = random.Random((seed << 3) ^ hashless(profile))
        self._uid = 0
        self.int_inits = {n: rng.randint(-1000, 1000) for n in _SCALARS}
        self.f_inits = {n: round(rng.uniform(-100.0, 100.0), 3)
                        for n in _DOUBLES}
        self.arr_inits = {
            name: [rng.randint(-500, 500) for _ in range(n)]
            for name, n in _ARRAYS.items()
        }
        count = size if size is not None else rng.randint(8, 24)
        weights = _WEIGHTS[profile]
        kinds = [k for k, w in weights.items() for _ in range(w)]
        self.stmts = [self._stmt(rng, rng.choice(kinds), depth=2)
                      for _ in range(count)]

    # -- expressions -----------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}{self._uid}"

    def _iexpr(self, rng, depth: int, loop_var: str | None = None) -> str:
        if depth <= 0 or rng.random() < 0.35:
            roll = rng.random()
            if loop_var is not None and roll < 0.3:
                return loop_var
            if roll < 0.6:
                return str(rng.randint(-1000, 1000))
            return rng.choice(_SCALARS)
        a = self._iexpr(rng, depth - 1, loop_var)
        roll = rng.random()
        if roll < 0.66:
            b = self._iexpr(rng, depth - 1, loop_var)
            return f"({a} {rng.choice(_INT_OPS)} {b})"
        # shift amounts and divisors stay leaf-shaped: the compiler's
        # temporary-register pool is finite, and the masking sugar below
        # already adds two tree levels
        leaf = self._iexpr(rng, 0, loop_var)
        if roll < 0.78:
            # shift amounts masked so both ISAs agree
            return f"({a} {rng.choice(('<<', '>>'))} ({leaf} & 63))"
        if roll < 0.9:
            # non-zero divisor by construction: ISA-defined x/0 differs
            return f"({a} {rng.choice(('/', '%'))} ((({leaf}) & 255) | 1))"
        return f"(-({a}))"

    def _simple(self, rng, depth: int, loop_var: str | None = None) -> str:
        """Sugar-free integer expression (single-op nodes only): used
        where several values are live at once — array indices, store
        values, comparison operands — so the compiler's 7-register
        temporary pool can never be exhausted."""
        if depth <= 0 or rng.random() < 0.4:
            roll = rng.random()
            if loop_var is not None and roll < 0.35:
                return loop_var
            if roll < 0.65:
                return str(rng.randint(-1000, 1000))
            return rng.choice(_SCALARS)
        a = self._simple(rng, depth - 1, loop_var)
        b = self._simple(rng, depth - 1, loop_var)
        return f"({a} {rng.choice(_INT_OPS)} {b})"

    def _index(self, rng, name: str, loop_var: str | None = None) -> str:
        mask = _ARRAYS.get(name, _FARRAYS.get(name)) - 1
        return f"({self._simple(rng, 1, loop_var)}) & {mask}"

    def _fexpr(self, rng, depth: int) -> str:
        if depth <= 0 or rng.random() < 0.4:
            roll = rng.random()
            if roll < 0.4:
                return f"{round(rng.uniform(-50.0, 50.0), 3)!r}"
            if roll < 0.8:
                return rng.choice(_DOUBLES)
            return f"(double)({rng.choice(_SCALARS)} & 4095)"
        a = self._fexpr(rng, depth - 1)
        b = self._fexpr(rng, depth - 1)
        roll = rng.random()
        if roll < 0.45:
            return f"({a} {rng.choice(('+', '-'))} {b})"
        if roll < 0.6:
            return f"({a} * {b})"
        if roll < 0.75:
            return f"{rng.choice(('fmin', 'fmax'))}({a}, {b})"
        if roll < 0.9:
            return f"fabs({a})"
        return f"sqrt(fabs({a}))"

    def _cond(self, rng, loop_var: str | None = None) -> str:
        a = self._simple(rng, 1, loop_var)
        b = self._simple(rng, 1, loop_var)
        return f"({a}) {rng.choice(_CMP_OPS)} ({b})"

    # -- statements ------------------------------------------------------

    def _stmt(self, rng, kind: str, depth: int,
              loop_var: str | None = None, in_loop: bool = False) -> str:
        if kind == "scalar":
            return (f"{rng.choice(_SCALARS)} = "
                    f"{self._iexpr(rng, 2, loop_var)};")
        if kind == "double":
            return f"{rng.choice(_DOUBLES)} = {self._fexpr(rng, 3)};"
        if kind == "store":
            if rng.random() < 0.25:
                name = rng.choice(sorted(_FARRAYS))
                return (f"{name}[{self._index(rng, name, loop_var)}] = "
                        f"{self._fexpr(rng, 2)};")
            name = rng.choice(sorted(_ARRAYS))
            return (f"{name}[{self._index(rng, name, loop_var)}] = "
                    f"{self._simple(rng, 2, loop_var)};")
        if kind == "load":
            name = rng.choice(sorted(_ARRAYS))
            dst = rng.choice(_SCALARS)
            return (f"{dst} = {dst} + "
                    f"{name}[{self._index(rng, name, loop_var)}];")
        if kind == "call":
            if rng.random() < 0.3:
                dst = rng.choice(_DOUBLES)
                return (f"{dst} = blend({self._fexpr(rng, 1)}, "
                        f"{self._fexpr(rng, 1)});")
            dst = rng.choice(_SCALARS)
            return (f"{dst} = mix({self._iexpr(rng, 1, loop_var)}, "
                    f"{self._iexpr(rng, 1, loop_var)});")
        if kind == "if" and depth > 0:
            then = self._body(rng, depth - 1, loop_var, in_loop)
            if rng.random() < 0.5:
                other = self._body(rng, depth - 1, loop_var, in_loop)
                return (f"if ({self._cond(rng, loop_var)}) {{\n{then}\n}} "
                        f"else {{\n{other}\n}}")
            return f"if ({self._cond(rng, loop_var)}) {{\n{then}\n}}"
        if kind == "for" and depth > 0:
            var = self._fresh("i")
            trips = rng.randint(1, 24)
            body = self._body(rng, depth - 1, var, in_loop=True)
            return (f"for (long {var} = 0; {var} < {trips}; "
                    f"{var} = {var} + 1) {{\n{body}\n}}")
        if kind == "while" and depth > 0:
            var = self._fresh("t")
            trips = rng.randint(1, 16)
            body = self._body(rng, depth - 1, var, in_loop=True)
            # increment *first* so a generated ``continue`` cannot skip
            # it and loop forever; the counter runs 1..trips in the body
            return ("{\n"
                    f"long {var} = 0;\n"
                    f"while ({var} < {trips}) {{\n"
                    f"{var} = {var} + 1;\n"
                    f"{body}\n"
                    "}\n"
                    "}")
        if kind == "region" and depth == 2:
            # top-level only: keeps regions out of loops/branches, where
            # break/continue interplay is not worth fuzzing here
            name = self._fresh("r")
            body = self._body(rng, depth - 1, loop_var, in_loop)
            return f'region "{name}" {{\n{body}\n}}'
        # depth exhausted for a structured kind: fall back to a leaf
        return (f"{rng.choice(_SCALARS)} = "
                f"{self._iexpr(rng, 2, loop_var)};")

    def _body(self, rng, depth: int, loop_var: str | None,
              in_loop: bool) -> str:
        weights = _WEIGHTS[self.profile]
        kinds = [k for k, w in weights.items() for _ in range(w)]
        lines = []
        for _ in range(rng.randint(1, 3)):
            lines.append(self._stmt(rng, rng.choice(kinds), depth,
                                    loop_var, in_loop))
        if in_loop and loop_var is not None and rng.random() < 0.15:
            # guarded break/continue: the guard keeps most trips alive
            word = rng.choice(("break", "continue"))
            lines.append(
                f"if ({loop_var} == {rng.randint(2, 30)}) {{ {word}; }}")
        return "\n".join(lines)

    # -- rendering -------------------------------------------------------

    @staticmethod
    def standard_observables() -> list[tuple[str, str, int]]:
        """``(symbol, kind, element_count)`` for every global in the
        fixed fuzz pool (the same for every generated program, so stored
        ``.kc`` reproducers replay without regenerating)."""
        out = [(n, "long", 1) for n in _SCALARS]
        out += [(n, "double", 1) for n in _DOUBLES]
        out += [(n, "long", c) for n, c in sorted(_ARRAYS.items())]
        out += [(n, "double", c) for n, c in sorted(_FARRAYS.items())]
        return out

    @property
    def observables(self) -> list[tuple[str, str, int]]:
        """``(symbol, kind, element_count)`` for every global."""
        return self.standard_observables()

    def render(self, keep: list[int] | None = None) -> str:
        """The program text, optionally restricted to the top-level
        statements whose indices appear in ``keep``."""
        stmts = (self.stmts if keep is None
                 else [self.stmts[i] for i in keep])
        lines = [f"// fuzz seed={self.seed} profile={self.profile}"]
        for name in _SCALARS:
            lines.append(f"global long {name} = {self.int_inits[name]};")
        for name in _DOUBLES:
            lines.append(f"global double {name} = {self.f_inits[name]!r};")
        for name, count in sorted(_ARRAYS.items()):
            inits = ", ".join(str(v) for v in self.arr_inits[name])
            lines.append(f"global long {name}[{count}] = {{ {inits} }};")
        for name, count in sorted(_FARRAYS.items()):
            lines.append(f"global double {name}[{count}];")
        lines.append("")
        lines.append(_HELPERS)
        lines.append("func long main() {")
        for stmt in stmts:
            lines.append(stmt)
        lines.append("return (g0 ^ g1) & 127;")
        lines.append("}")
        return "\n".join(lines) + "\n"


def hashless(text: str) -> int:
    """Stable small hash (``hash()`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) & 0xFFFFFFFF
    return value


def case_source(seed: int, profile: str = "mixed") -> str:
    """Convenience: the rendered program for ``(seed, profile)``."""
    return GenProgram(seed, profile).render()
