"""The checked-in regression corpus.

Every ``.kc`` file here is a generated program that once found a bug
(or exercises a construct that did) — kept so tier-1 replays them
through the full differential stack on every run. A corpus file must
stay *clean*: the bug it found is fixed, and replaying it asserts the
fix holds.

Add to the corpus with ``repro fuzz run --out <dir>`` (copy the
minimized ``.kc`` in once the underlying bug is fixed) or by saving
``repro.fuzz.case_source(seed, profile)`` for an interesting seed.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["corpus_dir", "corpus_files", "replay_corpus"]


def corpus_dir() -> Path:
    return Path(__file__).resolve().parent


def corpus_files() -> list[Path]:
    return sorted(corpus_dir().glob("*.kc"))


def replay_corpus(*, max_instructions: int | None = None) -> dict:
    """Replay every corpus file; returns ``{name: [Finding, ...]}``
    (all lists empty on a healthy tree)."""
    from repro.fuzz import differential

    budget = (max_instructions if max_instructions is not None
              else differential.DEFAULT_MAX_INSTRUCTIONS)
    results: dict[str, list] = {}
    for path in corpus_files():
        results[path.name] = differential.replay_source(
            path.read_text(), max_instructions=budget)
    return results
