"""Minimal ELF64 executable writer/reader.

Produces a statically linked ``ET_EXEC`` image with:

* one ``PT_LOAD`` program header per section (``.text`` R+X, ``.data`` R+W),
* ``.symtab``/``.strtab`` with every assembler symbol (``STT_FUNC`` for
  text-resident symbols, ``STT_OBJECT`` otherwise),
* a vendor note section ``.note.repro.regions`` that serializes the kernel
  region markers, so a loaded binary still knows which PC ranges belong to
  which benchmark kernel.

The reader accepts exactly what the writer produces plus any conforming
little-endian ELF64 ``ET_EXEC`` with ``PT_LOAD`` segments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.common import LoaderError
from repro.asm.program import Program, Region, Section

ELF_MAGIC = b"\x7fELF"
EM_AARCH64 = 183
EM_RISCV = 243

_MACHINE_BY_ISA = {"aarch64": EM_AARCH64, "rv64": EM_RISCV}
_ISA_BY_MACHINE = {v: k for k, v in _MACHINE_BY_ISA.items()}

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")

PT_LOAD = 1
PT_NOTE = 4
PF_X, PF_W, PF_R = 1, 2, 4
SHT_NULL, SHT_PROGBITS, SHT_SYMTAB, SHT_STRTAB, SHT_NOTE = 0, 1, 2, 3, 7
SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE = 0x2, 0x4, 0x1
STT_OBJECT, STT_FUNC = 1, 2
STB_GLOBAL, STB_LOCAL = 1, 0


@dataclass
class LoadedImage:
    """Everything the simulator needs from a loaded executable."""

    isa_name: str
    entry: int
    symbols: dict[str, int]
    regions: list[Region]
    segments: list[tuple[int, bytes, int]] = field(default_factory=list)
    # (vaddr, data, flags) for each PT_LOAD

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LoaderError(f"no symbol {name!r} in image") from None


def _serialize_regions(regions: list[Region]) -> bytes:
    out = struct.pack("<I", len(regions))
    for region in regions:
        name = region.name.encode()
        out += struct.pack("<QQH", region.start, region.end, len(name)) + name
    return out


def _deserialize_regions(blob: bytes) -> list[Region]:
    if len(blob) < 4:
        return []
    (count,) = struct.unpack_from("<I", blob, 0)
    if count * 18 > len(blob):
        raise LoaderError(
            f"region note claims {count} regions in {len(blob)} bytes")
    offset = 4
    regions = []
    for _ in range(count):
        start, end, namelen = struct.unpack_from("<QQH", blob, offset)
        offset += 18
        name = blob[offset : offset + namelen].decode()
        offset += namelen
        regions.append(Region(name, start, end))
    return regions


def build_elf(program: Program) -> bytes:
    """Serialize an assembled :class:`Program` into static-ELF64 bytes."""
    machine = _MACHINE_BY_ISA.get(program.isa_name)
    if machine is None:
        raise LoaderError(f"no ELF machine id for ISA {program.isa_name!r}")

    sections = [program.sections[name] for name in (".text", ".data")
                if name in program.sections]

    # String tables.
    strtab = bytearray(b"\x00")
    sym_name_offsets: dict[str, int] = {}
    for name in sorted(program.symbols):
        sym_name_offsets[name] = len(strtab)
        strtab += name.encode() + b"\x00"

    shstrtab = bytearray(b"\x00")
    sh_name_offsets: dict[str, int] = {}
    section_names = [s.name for s in sections] + [
        ".symtab", ".strtab", ".shstrtab", ".note.repro.regions"
    ]
    for name in section_names:
        sh_name_offsets[name] = len(shstrtab)
        shstrtab += name.encode() + b"\x00"

    # Symbol table: null symbol first.
    text = program.sections[".text"]
    symtab = bytearray(_SYM.pack(0, 0, 0, 0, 0, 0))
    for name in sorted(program.symbols):
        addr = program.symbols[name]
        in_text = text.addr <= addr < text.end
        stype = STT_FUNC if in_text else STT_OBJECT
        bind = STB_GLOBAL if name in program.globals else STB_LOCAL
        shndx = 1 if in_text else (2 if len(sections) > 1 else 1)
        symtab += _SYM.pack(sym_name_offsets[name], (bind << 4) | stype, 0, shndx, addr, 0)

    regions_blob = _serialize_regions(program.regions)

    # Layout: ehdr | phdrs | section contents... | shdrs
    num_phdrs = len(sections)
    offset = _EHDR.size + num_phdrs * _PHDR.size

    file_chunks: list[bytes] = []
    section_file_offsets: list[int] = []

    def append_chunk(data: bytes, align: int = 8) -> int:
        nonlocal offset
        pad = (-offset) % align
        if pad:
            file_chunks.append(b"\x00" * pad)
            offset += pad
        this_offset = offset
        file_chunks.append(bytes(data))
        offset += len(data)
        return this_offset

    for section in sections:
        section_file_offsets.append(append_chunk(section.data, align=0x1000))
    symtab_off = append_chunk(symtab)
    strtab_off = append_chunk(strtab)
    regions_off = append_chunk(regions_blob)
    shstrtab_off = append_chunk(shstrtab)

    pad = (-offset) % 8
    if pad:
        file_chunks.append(b"\x00" * pad)
        offset += pad
    shoff = offset

    # Section headers: NULL + loadable + symtab + strtab + note + shstrtab
    shdrs = bytearray(_SHDR.pack(0, SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0))
    for i, section in enumerate(sections):
        flags = SHF_ALLOC | (SHF_EXECINSTR if section.executable else SHF_WRITE)
        shdrs += _SHDR.pack(
            sh_name_offsets[section.name], SHT_PROGBITS, flags, section.addr,
            section_file_offsets[i], section.size, 0, 0, 4, 0,
        )
    strtab_index = len(sections) + 2
    shdrs += _SHDR.pack(
        sh_name_offsets[".symtab"], SHT_SYMTAB, 0, 0, symtab_off, len(symtab),
        strtab_index, 1, 8, _SYM.size,
    )
    shdrs += _SHDR.pack(
        sh_name_offsets[".strtab"], SHT_STRTAB, 0, 0, strtab_off, len(strtab),
        0, 0, 1, 0,
    )
    shdrs += _SHDR.pack(
        sh_name_offsets[".note.repro.regions"], SHT_NOTE, 0, 0, regions_off,
        len(regions_blob), 0, 0, 4, 0,
    )
    shdrs += _SHDR.pack(
        sh_name_offsets[".shstrtab"], SHT_STRTAB, 0, 0, shstrtab_off,
        len(shstrtab), 0, 0, 1, 0,
    )
    num_shdrs = len(sections) + 5
    shstrndx = num_shdrs - 1

    ehdr = _EHDR.pack(
        ELF_MAGIC + bytes([2, 1, 1, 0]) + b"\x00" * 8,  # 64-bit, LE, current
        2,  # ET_EXEC
        machine,
        1,  # EV_CURRENT
        program.entry,
        _EHDR.size,  # phoff
        shoff,
        0x4 if machine == EM_RISCV else 0,  # riscv: double-float ABI flag
        _EHDR.size,
        _PHDR.size,
        num_phdrs,
        _SHDR.size,
        num_shdrs,
        shstrndx,
    )

    phdrs = bytearray()
    for i, section in enumerate(sections):
        flags = PF_R | (PF_X if section.executable else PF_W)
        phdrs += _PHDR.pack(
            PT_LOAD, flags, section_file_offsets[i], section.addr, section.addr,
            section.size, section.size, 0x1000,
        )

    return b"".join([ehdr, phdrs] + file_chunks + [shdrs])


#: Refuse BSS expansions past this: a crafted ``p_memsz`` must not make
#: the *loader* allocate gigabytes before the simulator ever sees it.
_MAX_BSS = 1 << 28


def load_elf(blob: bytes) -> LoadedImage:
    """Parse static-ELF64 bytes back into a :class:`LoadedImage`.

    Total: any malformed input — truncated, bit-flipped, or actively
    crafted — raises :class:`LoaderError`; no other exception type
    escapes (``tests/test_elf.py`` sweeps truncations and seeded
    mutations to hold this line).
    """
    try:
        return _parse_elf(blob)
    except LoaderError:
        raise
    except (struct.error, IndexError, ValueError, UnicodeDecodeError,
            OverflowError, MemoryError) as err:
        raise LoaderError(f"malformed ELF: {err}") from None


def _parse_elf(blob: bytes) -> LoadedImage:
    if len(blob) < _EHDR.size or blob[:4] != ELF_MAGIC:
        raise LoaderError("not an ELF file")
    if blob[4] != 2 or blob[5] != 1:
        raise LoaderError("only little-endian ELF64 is supported")
    (
        _ident, etype, machine, _version, entry, phoff, shoff, _flags,
        _ehsize, phentsize, phnum, shentsize, shnum, shstrndx,
    ) = _EHDR.unpack_from(blob, 0)
    if etype != 2:
        raise LoaderError(f"not an ET_EXEC image (e_type={etype})")
    isa_name = _ISA_BY_MACHINE.get(machine)
    if isa_name is None:
        raise LoaderError(f"unsupported ELF machine {machine}")
    if phnum:
        if phentsize < _PHDR.size:
            raise LoaderError(f"program header entries too small "
                              f"({phentsize} < {_PHDR.size})")
        if phoff + phnum * phentsize > len(blob):
            raise LoaderError("program header table out of bounds")

    segments: list[tuple[int, bytes, int]] = []
    for i in range(phnum):
        ptype, flags, p_offset, vaddr, _paddr, filesz, memsz, _align = _PHDR.unpack_from(
            blob, phoff + i * phentsize
        )
        if ptype != PT_LOAD:
            continue
        if p_offset + filesz > len(blob):
            raise LoaderError(
                f"PT_LOAD segment {i} file range "
                f"[{p_offset:#x}, {p_offset + filesz:#x}) exceeds "
                f"file size {len(blob)}")
        if memsz > filesz + _MAX_BSS:
            raise LoaderError(
                f"PT_LOAD segment {i} p_memsz {memsz:#x} is implausibly "
                f"large (limit {filesz + _MAX_BSS:#x})")
        data = bytes(blob[p_offset : p_offset + filesz])
        if memsz > filesz:
            data += b"\x00" * (memsz - filesz)
        segments.append((vaddr, data, flags))
    if not segments:
        raise LoaderError("no PT_LOAD segments")

    # Recover symbols and regions from section headers (optional but always
    # present in our own output).
    symbols: dict[str, int] = {}
    regions: list[Region] = []
    if shoff and shnum:
        if shentsize < _SHDR.size:
            raise LoaderError(f"section header entries too small "
                              f"({shentsize} < {_SHDR.size})")
        if shoff + shnum * shentsize > len(blob):
            raise LoaderError("section header table out of bounds")
        shdrs = [
            _SHDR.unpack_from(blob, shoff + i * shentsize) for i in range(shnum)
        ]
        shstr = b""
        if shstrndx < len(shdrs):
            _, _, _, _, off, size, _, _, _, _ = shdrs[shstrndx]
            shstr = blob[off : off + size]

        def sh_name(name_off: int) -> str:
            end = shstr.find(b"\x00", name_off)
            return shstr[name_off:end].decode()

        for (name_off, stype, _flags, _addr, off, size, link, _info,
             _align, entsize) in shdrs:
            if stype == SHT_SYMTAB and entsize == _SYM.size:
                if link >= len(shdrs):
                    raise LoaderError(
                        f"symtab links to section {link} of {len(shdrs)}")
                _, _, _, _, str_off, str_size, _, _, _, _ = shdrs[link]
                strtab = blob[str_off : str_off + str_size]
                for j in range(1, size // _SYM.size):
                    nm, _info_b, _other, _shndx, value, _sz = _SYM.unpack_from(
                        blob, off + j * _SYM.size
                    )
                    end = strtab.find(b"\x00", nm)
                    symbols[strtab[nm:end].decode()] = value
            elif stype == SHT_NOTE and sh_name(name_off) == ".note.repro.regions":
                regions = _deserialize_regions(blob[off : off + size])

    return LoadedImage(
        isa_name=isa_name, entry=entry, symbols=symbols,
        regions=regions, segments=segments,
    )


def program_to_image(program: Program) -> LoadedImage:
    """Round-trip a Program through ELF bytes (the canonical load path)."""
    return load_elf(build_elf(program))


def load_program(image: LoadedImage, memory) -> None:
    """Copy a LoadedImage's PT_LOAD segments into simulated memory."""
    for vaddr, data, _flags in image.segments:
        memory.write_bytes(vaddr, data)
