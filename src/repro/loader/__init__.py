"""Static-ELF64 writer and reader.

SimEng's defining convenience is that it runs *real statically linked
binaries*; this package preserves that property: assembled programs are
linked into a small but well-formed ELF64 executable (program headers for
the loadable segments, a symbol table, and a private note section carrying
the kernel-region markers), and the loader maps those ELF bytes into
simulated memory.
"""

from repro.loader.elf import (
    EM_AARCH64,
    EM_RISCV,
    LoadedImage,
    build_elf,
    load_elf,
    load_program,
    program_to_image,
)

__all__ = [
    "EM_AARCH64",
    "EM_RISCV",
    "LoadedImage",
    "build_elf",
    "load_elf",
    "load_program",
    "program_to_image",
]
