"""Lease-based idempotent dispatch of plans across remote worker nodes.

The :class:`Dispatcher` owns the daemon side of the distributed tier:
a plain-TCP listener that worker nodes (:mod:`repro.dist.worker`)
register with, and a :meth:`run` entry point shaped exactly like
:meth:`Executor.run <repro.harness.executor.Executor.run>` — same
cache sweep, same event stream, same ``SuiteExecutionError`` contract
— so the serve daemon swaps it in without the journal, SSE bridge or
timing collector noticing.

Correctness under failure rests on three invariants:

1. **Journal before wire.** Every dispatch is recorded as a lease
   (id, plan fingerprint, node, expiry, attempt) in the job journal
   *before* the task frame is sent. A crash between the two re-runs a
   plan, never loses one.
2. **At-least-once dispatch, exactly-once account.** A lease that
   expires — or whose node dies, hangs silent past its heartbeat
   budget, or tears a frame — is re-dispatched (bounded attempts,
   exponential backoff with seeded jitter, a different node when one
   exists). Execution is idempotent (content-addressed caches on both
   ends), so the *results* are deduplicated by plan fingerprint: the
   first to land wins, every later replica is dropped and counted.
   Artifacts are byte-identical no matter which replica lands.
3. **Degrade, never fail.** Remote attempts exhausted by transient
   infrastructure — or the last node dying — route the remaining
   plans to the daemon's local warm pool (the wrapped executor). A
   suite outlives the death of the entire remote tier; only
   deterministic plan errors (which would fail locally too) fail it.
"""

from __future__ import annotations

import random
import socket
import threading
import time

from repro.common.errors import ExperimentError
from repro.dist.protocol import Framed, ProtocolError
from repro.harness import faults
from repro.harness.events import (DistStats, EventBus, NodeJoined, NodeLost,
                                  PlanCacheHit, PlanFailed, PlanFinished,
                                  PlanRedispatched, PlanStarted, SuiteFinished,
                                  SuiteStarted)
from repro.harness.executor import (AttemptRecord, PlanFailureReport,
                                    SuiteExecutionError, backoff_delay)
from repro.harness.experiments import ConfigResult

__all__ = ["Dispatcher", "RemoteNode"]

_POLL_S = 0.02


class RemoteNode:
    """Daemon-side record of one registered worker node."""

    def __init__(self, name: str, framed: Framed, addr: str, *,
                 slots: int = 1, heartbeat: float = 2.0, pid: int = 0):
        self.name = name
        self.framed = framed
        self.addr = addr
        self.slots = max(1, slots)
        self.heartbeat = heartbeat
        self.pid = pid
        self.state = "up"          # up | draining | down
        self.reason = ""           # why it went down
        self.last_beat = time.monotonic()
        self.leases: set[str] = set()
        self.tasks_done = 0
        self.joined = time.monotonic()

    @property
    def live(self) -> bool:
        return self.state == "up"

    def doc(self) -> dict:
        now = time.monotonic()
        return {
            "name": self.name, "addr": self.addr, "state": self.state,
            "reason": self.reason, "slots": self.slots, "pid": self.pid,
            "leases": len(self.leases), "tasks_done": self.tasks_done,
            "last_beat_age": round(now - self.last_beat, 3),
            "uptime": round(now - self.joined, 3),
        }


class _Lease:
    __slots__ = ("id", "plan", "fingerprint", "node", "attempt", "expires")

    def __init__(self, id, plan, fingerprint, node, attempt, expires):
        self.id = id
        self.plan = plan
        self.fingerprint = fingerprint
        self.node = node
        self.attempt = attempt
        self.expires = expires


class Dispatcher:
    """Scatter plans across registered worker nodes (see module doc).

    Args:
        executor: the daemon's local (warm, persistent) executor —
            the zero-nodes path and the degrade-never-fail target.
        cache: result cache for the daemon-side sweep and write-back;
            defaults to ``executor.cache``.
        events: event bus; defaults to ``executor.events`` so both
            tiers tell one story.
        lease_timeout: seconds a dispatched plan may stay unanswered
            before its lease expires and it is re-dispatched.
        node_heartbeat: silence budget for hang discrimination — a
            node whose socket is open but whose heartbeats stop for
            longer than ``max(node_heartbeat, 2×advertised)`` is
            declared *hung* (vs *dead* on EOF/reset) and force-closed.
        retries: remote dispatch attempts per plan before it falls
            back to the local pool.
        backoff/backoff_cap: redispatch backoff curve (seeded jitter).
    """

    def __init__(self, *, executor, cache=None, events: EventBus | None = None,
                 lease_timeout: float = 60.0, node_heartbeat: float = 5.0,
                 retries: int = 2, backoff: float = 0.05,
                 backoff_cap: float = 1.0):
        if lease_timeout <= 0:
            raise ExperimentError(
                f"lease_timeout must be positive, got {lease_timeout}")
        if node_heartbeat <= 0:
            raise ExperimentError(
                f"node_heartbeat must be positive, got {node_heartbeat}")
        self.executor = executor
        self.cache = cache if cache is not None else executor.cache
        self.events = events if events is not None else executor.events
        self.lease_timeout = lease_timeout
        self.node_heartbeat = node_heartbeat
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.nodes: dict[str, RemoteNode] = {}
        self._lock = threading.RLock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._run_lock = threading.Lock()
        self._rng = random.Random(0xD157)
        self._lease_seq = 0
        self._rr = 0
        #: Leases of the active run (reconcile checks membership).
        self._outstanding: dict[str, _Lease] = {}
        #: (node_name, result_doc) frames from reader threads.
        self._results: "list[tuple[str, dict]]" = []
        self._results_cv = threading.Condition()
        self.counters = {
            "nodes_seen": 0, "nodes_lost": 0, "dispatched": 0,
            "completed": 0, "redispatched": 0, "leases_expired": 0,
            "duplicates_dropped": 0, "local_fallback": 0,
        }

    # -- listener / registration -----------------------------------------

    def start_listener(self, host: str = "127.0.0.1",
                       port: int = 0) -> tuple[str, int]:
        """Bind the dist listener; returns the bound (host, port)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(32)
        sock.settimeout(0.5)
        self._listener = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True)
        self._accept_thread.start()
        return sock.getsockname()[:2]

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._node_session,
                args=(Framed(conn), f"{addr[0]}:{addr[1]}"),
                name="dist-node", daemon=True).start()

    def _node_session(self, framed: Framed, addr: str) -> None:
        try:
            hello = framed.recv(timeout=10.0)
        except (OSError, EOFError, ProtocolError, TimeoutError):
            framed.close()
            return
        if hello.get("type") != "register" or not hello.get("node"):
            try:
                framed.send({"type": "reject", "retry": False,
                             "reason": "expected register frame"})
            except OSError:
                pass
            framed.close()
            return
        name = str(hello["node"])
        # Injected registration race: refuse this attempt, the node
        # backs off and re-registers.
        if faults.fire_point("dist", f"register:{name}",
                             kinds=("transient",)) is not None:
            try:
                framed.send({"type": "reject", "retry": True,
                             "reason": "injected registration race"})
            except OSError:
                pass
            framed.close()
            return
        with self._lock:
            prior = self.nodes.get(name)
            if prior is not None and prior.live:
                # Retryable: a reconnecting node can beat the EOF of
                # its own old session; by its next attempt the stale
                # record is down.
                try:
                    framed.send({"type": "reject", "retry": True,
                                 "reason": f"node name {name!r} already "
                                           f"registered"})
                except OSError:
                    pass
                framed.close()
                return
            node = RemoteNode(
                name, framed, addr,
                slots=int(hello.get("slots", 1)),
                heartbeat=float(hello.get("heartbeat", 2.0)),
                pid=int(hello.get("pid", 0)))
            self.nodes[name] = node
            self.counters["nodes_seen"] += 1
            # Partition reconcile: results the node buffered while we
            # were apart. Re-send what the active run still wants;
            # everything else is stale — discard.
            holding = [str(x) for x in hello.get("holding", ())]
            resend = [x for x in holding if x in self._outstanding]
            discard = [x for x in holding if x not in self._outstanding]
        try:
            framed.send({"type": "registered", "node": name,
                         "resend": resend, "discard": discard})
        except OSError:
            self._node_lost(node, "dead")
            return
        self.events.emit(NodeJoined(
            node=name, addr=addr, slots=node.slots,
            rejoined=prior is not None or bool(holding)))
        self._read_loop(node)

    def _read_loop(self, node: RemoteNode) -> None:
        while not self._stop.is_set() and node.state != "down":
            try:
                msg = node.framed.recv(timeout=0.5)
            except TimeoutError:
                if node.state == "down":
                    return
                continue
            except (OSError, EOFError):
                self._node_lost(node, "dead")
                return
            except ProtocolError as err:
                # A torn result frame: the node's stream can no longer
                # be trusted — fault it, its lease gets re-dispatched.
                self._node_lost(node, "torn-frame", detail=str(err))
                return
            node.last_beat = time.monotonic()
            kind = msg.get("type")
            if kind == "result":
                with self._results_cv:
                    self._results.append((node.name, msg))
                    self._results_cv.notify()
            elif kind == "drained":
                self._node_lost(node, "drained")
                return
            # "hb" and unknown frames: the beat update above is all

    def _node_lost(self, node: RemoteNode, reason: str, *,
                   detail: str = "") -> None:
        with self._lock:
            if node.state == "down":
                return
            node.state = "down"
            node.reason = detail or reason
            held = len(node.leases)
            self.counters["nodes_lost"] += 1
        node.framed.close()
        self.events.emit(NodeLost(node=node.name, reason=reason,
                                  redispatched=held))

    # -- public surface ---------------------------------------------------

    def live_nodes(self) -> list[RemoteNode]:
        with self._lock:
            return [n for n in self.nodes.values() if n.live]

    def wait_for_nodes(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``count`` nodes are registered and live."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.live_nodes()) >= count:
                return True
            time.sleep(0.02)
        return len(self.live_nodes()) >= count

    def nodes_doc(self) -> list[dict]:
        with self._lock:
            return [node.doc() for node in self.nodes.values()]

    def stats_doc(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
        return {"nodes": self.nodes_doc(), "counters": counters,
                "live": len(self.live_nodes()),
                "outstanding": len(self._outstanding)}

    def drain_node(self, name: str) -> bool:
        """Graceful drain: stop leasing to the node, ask it to finish
        its current task and disconnect. Returns False for unknown or
        already-down nodes."""
        with self._lock:
            node = self.nodes.get(name)
            if node is None or not node.live:
                return False
            node.state = "draining"
        try:
            node.framed.send({"type": "drain"})
        except OSError:
            self._node_lost(node, "dead")
        return True

    def close(self) -> None:
        """Shut the tier down: drain every node, stop the listener."""
        self._stop.set()
        with self._lock:
            nodes = list(self.nodes.values())
        for node in nodes:
            if node.live:
                try:
                    node.framed.send({"type": "drain"})
                except OSError:
                    pass
            node.framed.close()
            with self._lock:
                if node.state != "down":
                    node.state = "down"
                    node.reason = "dispatcher closed"
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    # -- the scatter loop -------------------------------------------------

    def run(self, plans, journal=None):
        """Execute a batch; returns ``{plan: result}`` in input order.

        With zero live nodes this is exactly ``executor.run(plans)``.
        """
        with self._run_lock:
            if not self.live_nodes():
                return self.executor.run(plans)
            try:
                return self._run(list(plans), journal)
            finally:
                with self._lock:
                    self._outstanding.clear()

    def _run(self, plans, journal):
        started = time.monotonic()
        total = len(plans)
        indices = {plan: i + 1 for i, plan in enumerate(plans)}
        fingerprints = {plan: plan.fingerprint() for plan in plans}
        by_fp = {fp: plan for plan, fp in fingerprints.items()}
        results: dict = {}
        if self.cache is not None and self.cache.events is None:
            self.cache.attach_events(self.events)

        todo = []
        for plan in plans:
            cached = self.cache.get(plan) if self.cache is not None else None
            if cached is not None:
                results[plan] = cached
                self.events.emit(PlanCacheHit(
                    plan=plan, index=indices[plan], total=total,
                    key=fingerprints[plan]))
            else:
                todo.append(plan)
        self.events.emit(SuiteStarted(
            total=total, jobs=max(1, len(self.live_nodes())),
            cached=len(results)))

        run_counters = {key: 0 for key in self.counters}
        reports: dict = {}
        failures: dict = {}
        #: [plan, dispatch_attempt, ready_at]
        pending = [[plan, 1, 0.0] for plan in todo]
        fallback: list = []
        last_node: dict = {}
        done_fp = {fingerprints[plan] for plan in results}

        def bump(key, n=1):
            run_counters[key] += n
            with self._lock:
                self.counters[key] += n

        def lease_done(lease_id, status, node=""):
            if journal is not None and lease_id:
                journal.record_lease_result(
                    lease=lease_id, status=status, node=node)

        def release_slot(lease):
            with self._lock:
                node = self.nodes.get(lease.node)
                if node is not None:
                    node.leases.discard(lease.id)

        def accept(node_name, doc):
            lease_id = doc.get("lease", "")
            fp = doc.get("fingerprint", "")
            lease = None
            with self._lock:
                lease = self._outstanding.pop(lease_id, None)
                node = self.nodes.get(node_name)
                if node is not None:
                    node.leases.discard(lease_id)
                    if node.live or node.state == "draining":
                        try:
                            node.framed.send({"type": "ack",
                                              "lease": lease_id})
                        except OSError:
                            pass
            plan = by_fp.get(fp)
            if plan is None:
                bump("duplicates_dropped")
                lease_done(lease_id, "stale", node_name)
                return
            attempt = lease.attempt if lease is not None else \
                int(doc.get("attempt", 1) or 1)
            if fp in done_fp or plan in failures:
                # Late replica (expired lease, partition resend, or an
                # injected duplicate replay): first landing won.
                bump("duplicates_dropped")
                lease_done(lease_id, "duplicate", node_name)
                return
            if node is not None:
                node.tasks_done += 1
            if doc.get("ok"):
                result = ConfigResult.from_dict(doc["result"])
                result.translation = doc.get("translation")
                results[plan] = result
                done_fp.add(fp)
                bump("completed")
                # A plan requeued after its lease expired may still be
                # in pending — the late result satisfies it.
                pending[:] = [it for it in pending if it[0] is not plan]
                fallback[:] = [p for p in fallback if p is not plan]
                seconds = float(doc.get("seconds", 0.0))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                if self.cache is not None:
                    self.cache.put(plan, result, seconds=seconds)
                lease_done(lease_id, "ok", node_name)
                return
            # Remote failure: transient errors get more remote attempts
            # then the local pool; deterministic errors fail the plan
            # (they would fail identically anywhere).
            message = str(doc.get("error") or "remote execution failed")
            transient = bool(doc.get("transient"))
            lease_done(lease_id, "failed", node_name)
            report = reports.setdefault(plan, PlanFailureReport(plan=plan))
            history = tuple(a.error for a in report.attempts)
            report.attempts.append(AttemptRecord(
                attempt=attempt, error=f"[{node_name}] {message}",
                transient=transient,
                seconds=float(doc.get("seconds", 0.0))))
            if not transient:
                failures[plan] = message
                self.events.emit(PlanFailed(
                    plan=plan, error=message, attempt=attempt,
                    will_retry=False, history=history))
                return
            self.events.emit(PlanFailed(
                plan=plan, error=message, attempt=attempt,
                will_retry=True, history=history))
            if attempt < self.retries + 1:
                delay = backoff_delay(attempt, base=self.backoff,
                                      cap=self.backoff_cap, rng=self._rng)
                pending.append([plan, attempt + 1,
                                time.monotonic() + delay])
            else:
                fallback.append(plan)

        def requeue(lease, reason):
            release_slot(lease)
            if fingerprints[lease.plan] in done_fp or lease.plan in failures:
                return
            bump("redispatched")
            lease_done(lease.id, reason, lease.node)
            self.events.emit(PlanRedispatched(
                plan=lease.plan, fingerprint=lease.fingerprint,
                from_node=lease.node, to_node="",
                attempt=lease.attempt + 1, reason=reason))
            if lease.attempt < self.retries + 1:
                delay = backoff_delay(lease.attempt, base=self.backoff,
                                      cap=self.backoff_cap, rng=self._rng)
                pending.append([lease.plan, lease.attempt + 1,
                                time.monotonic() + delay])
            else:
                fallback.append(lease.plan)

        def pick_node(plan):
            with self._lock:
                candidates = [n for n in self.nodes.values()
                              if n.live and len(n.leases) < n.slots]
            if not candidates:
                return None
            avoid = last_node.get(plan)
            if len(candidates) > 1:
                preferred = [n for n in candidates if n.name != avoid]
                if preferred:
                    candidates = preferred
            self._rr += 1
            return candidates[self._rr % len(candidates)]

        def dispatch(item):
            plan, attempt, _ = item
            fp = fingerprints[plan]
            if fp in done_fp or plan in failures:
                return True
            node = pick_node(plan)
            if node is None:
                pending.append(item)
                return False
            self._lease_seq += 1
            lease = _Lease(
                f"L{self._lease_seq:06d}", plan, fp, node.name, attempt,
                time.monotonic() + self.lease_timeout)
            # Invariant 1: the lease hits the journal before the task
            # frame hits the socket.
            if journal is not None:
                journal.record_lease(
                    lease=lease.id, fingerprint=fp, node=node.name,
                    attempt=attempt, expires_in=self.lease_timeout)
            with self._lock:
                self._outstanding[lease.id] = lease
                node.leases.add(lease.id)
            last_node[plan] = node.name
            self.events.emit(PlanStarted(
                plan=plan, index=indices[plan], total=total,
                attempt=attempt))
            bump("dispatched")
            timeout = self.executor.timeout
            try:
                node.framed.send({
                    "type": "task", "lease": lease.id, "fingerprint": fp,
                    "plan": plan.to_dict(), "attempt": attempt,
                    "timeout": timeout if timeout else None})
            except OSError:
                self._node_lost(node, "dead")
                return True  # node-gone sweep requeues the lease
            # Injected mid-plan socket cut: the frame left the daemon,
            # the connection dies before the result can come back.
            if faults.fire_point("dist", f"dispatch:{plan.describe()}",
                                 attempt=attempt,
                                 kinds=("transient",)) is not None:
                self._node_lost(node, "cut")
            return True

        try:
            while pending or self._outstanding:
                progressed = False
                now = time.monotonic()

                # 1. accept results
                with self._results_cv:
                    batch, self._results = self._results, []
                for node_name, doc in batch:
                    progressed = True
                    accept(node_name, doc)

                # 2. hang discrimination: open socket, silent beats
                for node in self.live_nodes():
                    budget = max(self.node_heartbeat, 2 * node.heartbeat)
                    if node.leases and now - node.last_beat > budget:
                        self._node_lost(node, "hung")

                # 3. requeue leases held by lost nodes / expired leases
                with self._lock:
                    leases = list(self._outstanding.values())
                    states = {n.name: n.state for n in self.nodes.values()}
                for lease in leases:
                    state = states.get(lease.node, "down")
                    expired = lease.expires <= now
                    # A draining node keeps its current lease: drain
                    # means finish-then-leave, not abandon.
                    if state in ("up", "draining") and not expired:
                        continue
                    with self._lock:
                        if self._outstanding.pop(lease.id, None) is None:
                            continue
                    progressed = True
                    if expired and state == "up":
                        bump("leases_expired")
                        requeue(lease, "lease-expired")
                    else:
                        requeue(lease, "node-lost")

                # 4. dispatch ready plans
                ready = [it for it in pending
                         if it[2] <= now and self.live_nodes()]
                for item in ready:
                    pending.remove(item)
                    if dispatch(item):
                        progressed = True

                # 5. degrade, never fail: the whole remote tier is gone
                if not self.live_nodes() and not self._outstanding:
                    fallback.extend(p for p, _a, _t in pending)
                    pending.clear()
                    break

                if not progressed:
                    with self._results_cv:
                        if not self._results:
                            self._results_cv.wait(_POLL_S)
        finally:
            with self._lock:
                self._outstanding.clear()
                for node in self.nodes.values():
                    node.leases.clear()

        local = [plan for plan in plans
                 if plan in fallback or
                 (fingerprints[plan] not in done_fp
                  and plan not in failures and plan not in results)]
        if local:
            bump("local_fallback", len(local))
            try:
                results.update(self.executor.run(local))
            except SuiteExecutionError as err:
                for report in err.reports:
                    merged = reports.setdefault(
                        report.plan, PlanFailureReport(plan=report.plan))
                    merged.attempts.extend(report.attempts)
                    failures[report.plan] = (
                        report.attempts[-1].error if report.attempts
                        else "local fallback failed")

        self.events.emit(DistStats(stats=dict(run_counters)))
        self.events.emit(SuiteFinished(
            total=total,
            executed=len(todo) - len(failures),
            cached=total - len(todo),
            failed=len(failures),
            seconds=time.monotonic() - started,
        ))
        if failures:
            raise SuiteExecutionError(
                [reports[plan] for plan in failures], total)
        return {plan: results[plan] for plan in plans}
