"""Distributed execution tier: remote worker nodes behind the serve
daemon.

* :class:`~repro.dist.worker.WorkerNode` — the ``repro-isa-compare
  worker --connect HOST:PORT`` node agent: its own persistent warm
  pool, result cache and BlockStore, pulling leased plans over a
  line-framed JSON/TCP protocol.
* :class:`~repro.dist.dispatcher.Dispatcher` — lease-based idempotent
  scatter of a job's plans across registered nodes, with journal-
  before-wire leases, fingerprint dedup of duplicate results,
  hang-vs-dead heartbeat discrimination, bounded redispatch with
  seeded-jitter backoff, graceful node drain and local-pool fallback
  when the remote tier is gone.
* :mod:`~repro.dist.protocol` — the framing layer both sides share.
"""

from repro.dist.dispatcher import Dispatcher, RemoteNode
from repro.dist.protocol import Framed, ProtocolError
from repro.dist.worker import WorkerNode

__all__ = ["Dispatcher", "RemoteNode", "WorkerNode", "Framed",
           "ProtocolError"]
