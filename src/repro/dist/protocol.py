"""Line-framed JSON over TCP for the distributed execution tier.

One frame = one JSON document, canonically serialized (sorted keys, no
whitespace) and terminated by ``\\n``. Newline framing keeps torn
writes *detectable*: a frame cut mid-wire either has no terminator
(the reader times out waiting for the rest) or parses as invalid
JSON (:class:`ProtocolError`), and the dispatcher treats both as a
node fault — never as a half-result.

Frame vocabulary (the ``type`` key):

====================== ================================================
worker -> daemon
====================== ================================================
``register``           ``{"node", "pid", "slots", "holding": [...]}`` —
                       ``holding`` lists lease ids of results the node
                       buffered through a partition and wants to
                       reconcile.
``hb``                 heartbeat, sent every ``heartbeat/4`` seconds
                       even while a task is executing.
``result``             ``{"lease", "fingerprint", "ok", "result",
                       "seconds", "translation", "transient",
                       "error"}`` — the executed plan's outcome.
``drained``            the node finished its drain handshake and is
                       about to close its socket.
====================== ================================================

====================== ================================================
daemon -> worker
====================== ================================================
``registered``         ``{"node", "resend": [...], "discard": [...]}``
                       — partition reconcile: which held results the
                       dispatcher still wants re-sent, which leases
                       are stale and must be discarded.
``reject``             ``{"reason", "retry"}`` — registration refused
                       (injected race or duplicate name); the worker
                       backs off and retries when ``retry`` is true.
``task``               ``{"lease", "fingerprint", "plan", "attempt",
                       "timeout"}`` — one leased plan to execute.
``ack``                ``{"lease"}`` — result accepted (or deduped);
                       the worker drops its buffered copy.
``drain``              finish the current task, send its result, then
                       reply ``drained`` and close.
====================== ================================================

Result frames pass through :func:`repro.harness.faults.corrupt_point`
(site ``dist``, point ``result:<plan>``) on the worker side, so the
fault grammar can tear a frame mid-wire deterministically.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.common.errors import ExperimentError

__all__ = ["ProtocolError", "Framed", "MAX_FRAME", "encode"]

#: Upper bound on one frame; a line longer than this is a protocol
#: violation (results for paper-scale plans are ~10s of KB).
MAX_FRAME = 32 << 20

_CHUNK = 1 << 16


class ProtocolError(ExperimentError):
    """A frame that violates the wire protocol (torn, oversized,
    non-JSON, or not an object)."""


def encode(doc: dict) -> bytes:
    """Canonical frame bytes for ``doc`` *without* the terminator."""
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class Framed:
    """A socket wrapper speaking newline-delimited JSON frames.

    Writes are serialized by a lock so the heartbeat thread and the
    task loop (worker side) — or the dispatch loop and the ack path
    (daemon side) — never interleave bytes of two frames. Reads keep
    their own buffer (not a ``makefile``), so a :meth:`recv` timeout
    mid-frame loses nothing: the partial frame stays buffered and the
    next call resumes it.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = bytearray()
        self._send_lock = threading.Lock()

    # -- sending ---------------------------------------------------------

    def send(self, doc: dict) -> None:
        """Send one frame; raises ``OSError`` when the peer is gone."""
        self.send_raw(encode(doc))

    def send_raw(self, payload: bytes) -> None:
        """Send pre-encoded (possibly deliberately corrupted) frame
        bytes. The terminator is always appended intact — corruption
        models a torn *payload*, not an unframed stream."""
        with self._send_lock:
            self.sock.sendall(payload + b"\n")

    # -- receiving -------------------------------------------------------

    def recv(self, timeout: float | None = None) -> dict:
        """Read one frame.

        Raises ``EOFError`` on clean connection close, ``TimeoutError``
        when ``timeout`` elapses with no complete frame, ``OSError`` on
        a reset, and :class:`ProtocolError` on a torn or malformed
        frame (including the blank line an ``empty``-corrupted frame
        degenerates to).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._buf[:nl]).strip()
                del self._buf[:nl + 1]
                return self._parse(line)
            if len(self._buf) > MAX_FRAME:
                raise ProtocolError(f"frame exceeds {MAX_FRAME} bytes")
            if deadline is None:
                self.sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("no frame within timeout")
                self.sock.settimeout(remaining)
            try:
                chunk = self.sock.recv(_CHUNK)
            except socket.timeout as err:
                raise TimeoutError("no frame within timeout") from err
            if not chunk:
                raise EOFError("connection closed")
            self._buf.extend(chunk)

    @staticmethod
    def _parse(line: bytes) -> dict:
        if not line:
            raise ProtocolError("empty frame")
        try:
            doc = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise ProtocolError(f"torn frame: {err}") from err
        if not isinstance(doc, dict):
            raise ProtocolError(
                f"frame is {type(doc).__name__}, expected object")
        return doc

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
