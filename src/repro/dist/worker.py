"""The ``repro-isa-compare worker`` node agent.

A :class:`WorkerNode` dials the serve daemon's dist listener, registers,
and pulls leased plans over the line-framed protocol
(:mod:`repro.dist.protocol`). Each node owns a full local execution
stack — an :class:`~repro.harness.executor.Executor` in persistent mode
with its own :class:`~repro.harness.cache.ResultCache` (and therefore
its own warm pool, ``WarmCache`` and on-disk ``BlockStore``) — so a
redispatched plan that lands on the same node again is a local cache
hit, not a re-simulation: execution is idempotent by construction.

Failure behaviour, all deterministic under the ``dist`` fault site:

* A heartbeat thread beats every ``heartbeat/4`` seconds *while a task
  executes* (the executor does the work; this thread only talks to the
  daemon). An injected ``hang`` closes the beating gate first, so the
  daemon observes true heartbeat silence — wedged, not dead.
* Results the daemon never acknowledged are buffered. On reconnect
  after a partition, the node re-registers ``holding`` those lease ids
  and the dispatcher answers which to re-send and which to discard —
  reconcile-or-discard, never silently drop.
* Connect/register failures (including injected connect-refused and
  registration races) back off with the executor's shared
  seeded-jitter policy (:func:`repro.harness.executor.backoff_delay`)
  and retry a bounded number of times.
* A ``drain`` frame finishes the current task, flushes its result,
  answers ``drained`` and exits cleanly — the CLI maps SIGTERM to the
  same path.
"""

from __future__ import annotations

import itertools
import os
import random
import socket
import sys
import threading
import time

from repro.common.errors import ExperimentError
from repro.dist.protocol import Framed, ProtocolError, encode
from repro.harness import faults
from repro.harness.cache import ResultCache
from repro.harness.events import ConsoleReporter, EventBus
from repro.harness.executor import (Executor, SuiteExecutionError,
                                    backoff_delay)
from repro.harness.plan import ExperimentPlan

__all__ = ["WorkerNode"]

_NODE_SEQ = itertools.count(1)


class WorkerNode:
    """One remote execution agent (see module docstring).

    Args:
        host/port: the daemon's dist listener.
        name: node name the dispatcher keys on; default is unique per
            process and instance.
        cache_root: this node's own cache directory (results, traces,
            blocks). Defaults to the process-default cache dir — point
            distinct local nodes at distinct directories.
        jobs: the node-local executor's worker count.
        heartbeat: silence budget advertised to the daemon; beats go
            out every ``heartbeat/4``.
        retries/max_tasks_per_worker: forwarded to the local executor.
        reconnect: dial again after losing the daemon (False = exit,
            used by tests that model a node that dies for good).
        connect_retries: bounded attempts per (re)connect cycle.
        allow_crash: honour injected ``crash`` specs (only the CLI
            subprocess sets this — an in-process node must not
            ``os._exit`` the host).
        quiet: suppress the node-local console reporter.
    """

    def __init__(self, host: str, port: int, *, name: str | None = None,
                 cache_root=None, jobs: int = 1, heartbeat: float = 2.0,
                 retries: int = 1, max_tasks_per_worker: int = 0,
                 reconnect: bool = True, connect_retries: int = 8,
                 allow_crash: bool = False, quiet: bool = True):
        if heartbeat <= 0:
            raise ExperimentError(
                f"heartbeat must be positive, got {heartbeat}")
        self.host = host
        self.port = port
        self.name = name or f"node-{os.getpid()}-{next(_NODE_SEQ)}"
        self.heartbeat = heartbeat
        self.reconnect = reconnect
        self.connect_retries = max(1, connect_retries)
        self.allow_crash = allow_crash
        self.quiet = quiet
        self.events = EventBus()
        if not quiet:
            self.events.subscribe(ConsoleReporter(sys.stderr))
        self.executor = Executor(
            jobs=jobs, cache=ResultCache(cache_root), events=self.events,
            retries=retries, max_tasks_per_worker=max_tasks_per_worker,
            persistent=True)
        #: lease id -> result doc the daemon has not acked yet.
        self._unacked: dict[str, dict] = {}
        self._stop = threading.Event()
        self._beating = threading.Event()
        self._framed: Framed | None = None
        self._rng = random.Random(zlib_seed(self.name))
        self._thread: threading.Thread | None = None
        #: tasks executed (for tests / the drained log line).
        self.tasks_done = 0
        self.drained = False

    # -- lifecycle -------------------------------------------------------

    def start_background(self) -> threading.Thread:
        """Run the agent on a daemon thread (in-process tests/fuzzing)."""
        self._thread = threading.Thread(
            target=self.run, name=f"dist-{self.name}", daemon=True)
        self._thread.start()
        return self._thread

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the agent: close the socket out from under it and wait."""
        self._stop.set()
        framed = self._framed
        if framed is not None:
            framed.close()
        if self._thread is not None:
            self._thread.join(timeout)
        self.executor.close()

    # -- main loop -------------------------------------------------------

    def run(self) -> int:
        """Dial, register, execute leased plans until drained/stopped.

        Returns a process exit status: 0 for a clean drain or stop,
        1 for a fatal (deterministic) failure.
        """
        try:
            while not self._stop.is_set():
                try:
                    framed = self._connect_and_register()
                except ExperimentError as err:
                    self._log(f"fatal: {err}")
                    return 1
                if framed is None:  # retries exhausted or stopped
                    return 0 if self._stop.is_set() else 1
                try:
                    if self._serve_connection(framed):
                        return 0  # drained
                except (OSError, EOFError, ProtocolError, TimeoutError) as err:
                    self._log(f"connection lost: {err}")
                finally:
                    self._beating.clear()
                    framed.close()
                    self._framed = None
                if not self.reconnect:
                    return 0 if self._stop.is_set() else 1
            return 0
        finally:
            self.executor.close()

    # -- connection handling ---------------------------------------------

    def _connect_and_register(self) -> Framed | None:
        for attempt in range(1, self.connect_retries + 1):
            if self._stop.is_set():
                return None
            try:
                # Injected connect-refused / fatal connect errors.
                faults.check_point("dist", f"connect:{self.name}",
                                   attempt=attempt,
                                   kinds=("transient", "error"))
                sock = socket.create_connection(
                    (self.host, self.port), timeout=10.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                framed = Framed(sock)
                framed.send({
                    "type": "register", "node": self.name,
                    "pid": os.getpid(), "slots": 1,
                    "heartbeat": self.heartbeat,
                    "holding": sorted(self._unacked),
                })
                reply = framed.recv(timeout=10.0)
                if reply.get("type") == "registered":
                    self._reconcile(framed, reply)
                    self._framed = framed
                    self._beating.set()
                    threading.Thread(
                        target=self._hb_loop, args=(framed,),
                        daemon=True).start()
                    return framed
                framed.close()
                if reply.get("type") == "reject" and reply.get("retry"):
                    raise faults.InjectedTransientError(
                        f"registration rejected: {reply.get('reason')}")
                raise ExperimentError(
                    f"registration refused: {reply.get('reason')}")
            except faults.InjectedFaultError as err:
                raise ExperimentError(str(err)) from err
            except (OSError, EOFError, ProtocolError, TimeoutError) as err:
                self._log(f"connect attempt {attempt} failed: {err}")
                if attempt < self.connect_retries:
                    delay = backoff_delay(attempt, base=0.05, cap=2.0,
                                          rng=self._rng)
                    if self._stop.wait(delay):
                        return None
        self._log(f"giving up after {self.connect_retries} connect attempts")
        return None

    def _reconcile(self, framed: Framed, reply: dict) -> None:
        """Partition reconcile: re-send held results the dispatcher
        still wants, discard leases it declared stale."""
        for lease in reply.get("discard", ()):
            self._unacked.pop(lease, None)
        for lease in reply.get("resend", ()):
            doc = self._unacked.get(lease)
            if doc is not None:
                framed.send(doc)

    def _hb_loop(self, framed: Framed) -> None:
        interval = max(0.05, min(1.0, self.heartbeat / 4.0))
        while not self._stop.wait(interval):
            if self._framed is not framed:
                return
            if not self._beating.is_set():
                continue
            try:
                framed.send({"type": "hb"})
            except OSError:
                return

    # -- task handling ----------------------------------------------------

    def _serve_connection(self, framed: Framed) -> bool:
        """Process frames until drain (returns True) or disconnect."""
        while not self._stop.is_set():
            try:
                msg = framed.recv(timeout=1.0)
            except TimeoutError:
                continue
            kind = msg.get("type")
            if kind == "task":
                self._run_task(framed, msg)
            elif kind == "ack":
                self._unacked.pop(msg.get("lease"), None)
            elif kind == "drain":
                try:
                    framed.send({"type": "drained",
                                 "tasks_done": self.tasks_done})
                except OSError:
                    pass  # drain means exit either way
                self.drained = True
                self._log(f"drained after {self.tasks_done} task(s)")
                return True
            # unknown frame types are ignored: forward compatibility
        return False

    def _run_task(self, framed: Framed, msg: dict) -> None:
        lease = msg["lease"]
        attempt = int(msg.get("attempt", 1))
        plan = ExperimentPlan.from_dict(msg["plan"])
        point = f"task:{plan.describe()}"
        result_doc: dict = {
            "type": "result", "lease": lease,
            "fingerprint": msg.get("fingerprint") or plan.fingerprint(),
            "node": self.name,
        }
        started = time.monotonic()
        kinds = ("crash", "hang", "transient", "error") if self.allow_crash \
            else ("hang", "transient", "error")
        try:
            # The beating gate closes across the fault check so an
            # injected hang models a truly silent node.
            self._beating.clear()
            faults.check_point("dist", point, attempt=attempt, kinds=kinds)
            self._beating.set()
            timeout = msg.get("timeout")
            self.executor.timeout = float(timeout) if timeout else None
            result = self.executor.run([plan])[plan]
            result_doc.update(
                ok=True, result=result.to_dict(),
                seconds=time.monotonic() - started,
                translation=result.translation)
        except SuiteExecutionError as err:
            last = None
            if err.reports and err.reports[0].attempts:
                last = err.reports[0].attempts[-1]
            result_doc.update(
                ok=False,
                error=last.error if last else str(err),
                transient=bool(last and last.transient),
                seconds=time.monotonic() - started)
        except faults.InjectedTransientError as err:
            result_doc.update(ok=False, error=str(err), transient=True,
                              seconds=time.monotonic() - started)
        except ExperimentError as err:
            result_doc.update(ok=False,
                              error=f"{type(err).__name__}: {err}",
                              transient=False,
                              seconds=time.monotonic() - started)
        finally:
            self._beating.set()
        self.tasks_done += 1
        self._unacked[lease] = result_doc
        self._send_result(framed, result_doc, point, attempt)

    def _send_result(self, framed: Framed, doc: dict, point: str,
                     attempt: int) -> None:
        payload = encode(doc)
        # Torn-frame injection happens on the wire bytes only — the
        # buffered copy in _unacked stays intact for reconcile.
        wire = faults.corrupt_point(
            "dist", f"result:{point[5:]}", payload, attempt=attempt)
        try:
            framed.send_raw(wire)
            if faults.fire_point("dist", f"result:{point[5:]}",
                                 attempt=attempt, kinds=faults.DIST_KINDS):
                framed.send_raw(payload)  # duplicate replay, intact copy
        except OSError as err:
            # Partition mid-send: the result stays buffered; the
            # reconnect loop reconciles it.
            self._log(f"result send failed ({err}); buffering for "
                      f"reconcile")
            raise

    def _log(self, text: str) -> None:
        if not self.quiet:
            print(f"worker[{self.name}]: {text}", file=sys.stderr,
                  flush=True)


def zlib_seed(name: str) -> int:
    """Stable per-node RNG seed (``hash()`` is salted per process)."""
    import zlib

    return zlib.crc32(name.encode("utf-8"))
