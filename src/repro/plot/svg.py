"""Minimal SVG document builder (escaping, grouping, primitives)."""

from __future__ import annotations

from xml.sax.saxutils import escape


class SvgDoc:
    """An SVG document accumulated as text elements."""

    def __init__(self, width: int, height: int, background: str | None = None):
        self.width = width
        self.height = height
        self.parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background)

    @staticmethod
    def _attrs(**kwargs) -> str:
        parts = []
        for key, value in kwargs.items():
            if value is None:
                continue
            name = key.rstrip("_").replace("_", "-")
            parts.append(f'{name}="{escape(str(value))}"')
        return " ".join(parts)

    def rect(self, x, y, w, h, *, rx=None, title: str | None = None, **style):
        rx_attr = f' rx="{rx}"' if rx is not None else ""
        head = (
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}"{rx_attr} {self._attrs(**style)}'
        )
        if title:
            self.parts.append(f"{head}><title>{escape(title)}</title></rect>")
        else:
            self.parts.append(f"{head}/>")

    def line(self, x1, y1, x2, y2, **style):
        self.parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f"{self._attrs(**style)}/>"
        )

    def polyline(self, points, **style):
        text = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{text}" fill="none" {self._attrs(**style)}/>'
        )

    def circle(self, cx, cy, r, *, title: str | None = None, **style):
        body = f"<title>{escape(title)}</title>" if title else ""
        if body:
            self.parts.append(
                f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r}" '
                f"{self._attrs(**style)}>{body}</circle>"
            )
        else:
            self.parts.append(
                f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r}" '
                f"{self._attrs(**style)}/>"
            )

    def text(self, x, y, content, *, size=12, anchor="start", weight=None,
             fill="#0b0b0b", family="system-ui, sans-serif"):
        self.parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="{escape(family)}"'
            + (f' font-weight="{weight}"' if weight else "")
            + f">{escape(str(content))}</text>"
        )

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>\n'
        )
