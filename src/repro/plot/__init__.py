"""Dependency-free SVG charts for the paper's two figures.

The original artifact renders ``lineGraph.pdf`` (Figure 2) and a grouped
stacked bar chart (Figure 1) with matplotlib; matplotlib is unavailable in
this offline environment, so this package is the plotting substrate —
hand-built SVG following a validated chart method:

* colors by job: categorical identity only, assigned in a fixed validated
  order (AArch64 is always blue, RISC-V always aqua; kernels take the
  fixed 8-slot order), never cycled or generated;
* marks: 2px lines with ≥8px markers ringed in the surface color, bars
  ≤24px with 2px surface gaps between touching segments, hairline
  gridlines, one y-axis per panel;
* identity never rides on color alone: every multi-series panel has a
  legend and direct labels, and the CLI writes the text-table artifacts
  (``meanILP.txt`` etc.) alongside as the table view.

Ten series would breach the categorical ceiling on one set of axes, so
Figure 2 renders as small multiples — one panel per benchmark, two series
(the ISAs) each, exactly the comparison the paper's reader makes.
"""

from repro.plot.charts import figure1_svg, figure2_svg

__all__ = ["figure1_svg", "figure2_svg"]
