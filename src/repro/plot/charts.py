"""Figure 1 and Figure 2 as SVG (see package docstring for the method)."""

from __future__ import annotations

import math

from repro.plot.svg import SvgDoc

# palette roles (validated; see repro.plot docstring)
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e9e8e4"
#: entity → color, fixed: the ISAs keep their hues in every chart
ISA_COLORS = {"aarch64": "#2a78d6", "rv64": "#1baf7a"}
ISA_LABELS = {"aarch64": "AArch64", "rv64": "RISC-V"}
#: fixed categorical order for kernel segments (validated 8-slot theme)
KERNEL_SLOTS = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300",
    "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
]
OTHER_GRAY = "#b7b6ad"  # de-emphasis for the "other" (non-kernel) share


def _nice_ticks(top: float, count: int = 4) -> list[float]:
    """Round tick values covering [0, top]."""
    if top <= 0:
        return [0.0, 1.0]
    raw = top / count
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step * count >= top:
            break
    return [step * i for i in range(count + 1)]


# --------------------------------------------------------------- Figure 2

def figure2_svg(series: dict[str, dict[str, list[tuple[int, float]]]]) -> str:
    """Figure 2 — mean ILP per window size, small multiples per benchmark.

    ``series`` is the harness shape: workload → isa → [(window, ILP)].
    """
    names = list(series)
    panel_w, panel_h = 300, 190
    pad_l, pad_t, pad_between = 52, 88, 34
    cols = min(3, len(names))
    rows = (len(names) + cols - 1) // cols
    width = pad_l + cols * (panel_w + pad_between)
    height = pad_t + rows * (panel_h + 58) + 12
    doc = SvgDoc(width, height, background=SURFACE)

    doc.text(pad_l, 26, "Mean ILP per window size (GCC 12.2 binaries)",
             size=16, weight=600)
    # legend (two series per panel; identity also direct-labeled per panel)
    lx = pad_l
    for isa in ("aarch64", "rv64"):
        doc.line(lx, 44, lx + 22, 44, stroke=ISA_COLORS[isa], stroke_width=2)
        doc.circle(lx + 11, 44, 4, fill=ISA_COLORS[isa], stroke=SURFACE,
                   stroke_width=2)
        doc.text(lx + 28, 48, ISA_LABELS[isa], size=12, fill=TEXT_SECONDARY)
        lx += 110

    for index, name in enumerate(names):
        col, row = index % cols, index // cols
        x0 = pad_l + col * (panel_w + pad_between)
        y0 = pad_t + row * (panel_h + 58)
        _figure2_panel(doc, x0, y0, panel_w, panel_h, name, series[name])
    return doc.render()


def _figure2_panel(doc, x0, y0, w, h, name, per_isa):
    windows = [wdw for wdw, _v in next(iter(per_isa.values()))]
    top = max(v for pts in per_isa.values() for _w, v in pts)
    ticks = _nice_ticks(top * 1.05)
    y_top = ticks[-1]
    log_lo, log_hi = math.log(windows[0]), math.log(windows[-1])
    log_span = log_hi - log_lo

    def sx(window):
        if log_span == 0:  # single window size: center the lone point
            return x0 + w / 2
        return x0 + (math.log(window) - log_lo) / log_span * w

    def sy(value):
        return y0 + h - value / y_top * h

    doc.text(x0, y0 - 10, name, size=13, weight=600)
    # hairline grid + y ticks
    for tick in ticks:
        doc.line(x0, sy(tick), x0 + w, sy(tick), stroke=GRID, stroke_width=1)
        doc.text(x0 - 6, sy(tick) + 4, f"{tick:g}", size=10, anchor="end",
                 fill=TEXT_SECONDARY)
    # x ticks at the window sizes (log scale)
    for window in windows:
        doc.text(sx(window), y0 + h + 14, str(window), size=10,
                 anchor="middle", fill=TEXT_SECONDARY)
    doc.text(x0 + w / 2, y0 + h + 30, "window size (log scale)", size=10,
             anchor="middle", fill=TEXT_SECONDARY)

    for isa in ("aarch64", "rv64"):
        points = [(sx(wdw), sy(v)) for wdw, v in per_isa[isa]]
        color = ISA_COLORS[isa]
        doc.polyline(points, stroke=color, stroke_width=2,
                     stroke_linejoin="round", stroke_linecap="round")
        for (px, py), (wdw, value) in zip(points, per_isa[isa]):
            doc.circle(px, py, 4, fill=color, stroke=SURFACE, stroke_width=2,
                       title=f"{name} {ISA_LABELS[isa]} — window {wdw}: "
                             f"ILP {value:.2f}")
        # direct label at the line end (value in a text token, keyed by a dot)
        end_w, end_v = per_isa[isa][-1]
        doc.text(sx(end_w) + 7, sy(end_v) + 4, f"{end_v:.1f}", size=10,
                 fill=TEXT_SECONDARY)


# --------------------------------------------------------------- Figure 1

def figure1_svg(
    normalized: dict[str, dict[tuple[str, str], dict[str, float]]],
    kernels_by_workload: dict[str, list[str]],
) -> str:
    """Figure 1 — per-kernel path lengths as horizontal stacked bars.

    ``normalized`` is the harness shape: workload → (isa, profile) →
    kernel → share of the baseline total.
    """
    configs = [("aarch64", "gcc9"), ("rv64", "gcc9"),
               ("aarch64", "gcc12"), ("rv64", "gcc12")]
    bar_h, bar_gap = 20, 8
    label_w, plot_w = 150, 560
    panel_pad = 54
    header = 58
    panel_h = len(configs) * (bar_h + bar_gap) + panel_pad
    names = list(normalized)
    width = label_w + plot_w + 90
    height = header + len(names) * panel_h + 40
    doc = SvgDoc(width, height, background=SURFACE)

    doc.text(24, 26, "Path length by kernel, normalized to GCC 9.2 AArch64",
             size=16, weight=600)

    max_total = max(
        sum(counts.values())
        for per_config in normalized.values()
        for counts in per_config.values()
    )
    scale = plot_w / max(1.0, max_total * 1.02)

    y = header
    for name in names:
        doc.text(24, y + 2, name, size=13, weight=600)
        kernels = list(kernels_by_workload[name]) + ["other"]
        colors = {
            kernel: (OTHER_GRAY if kernel == "other"
                     else KERNEL_SLOTS[i % len(KERNEL_SLOTS)])
            for i, kernel in enumerate(kernels)
        }
        # per-panel kernel legend (identity channel; colors also gapped)
        lx = 24 + 90
        for kernel in kernels:
            doc.rect(lx, y - 8, 10, 10, rx=2, fill=colors[kernel])
            doc.text(lx + 14, y + 1, kernel, size=10, fill=TEXT_SECONDARY)
            lx += 14 + 7 * len(kernel) + 18

        by = y + 16
        for isa, profile in configs:
            counts = normalized[name].get((isa, profile), {})
            label = f"{'GCC 9.2' if profile == 'gcc9' else 'GCC 12.2'} " \
                    f"{ISA_LABELS[isa]}"
            doc.text(label_w - 8, by + bar_h - 6, label, size=11,
                     anchor="end", fill=TEXT_PRIMARY)
            x = float(label_w)
            total = sum(counts.values())
            for seg_index, kernel in enumerate(kernels):
                share = counts.get(kernel, 0.0)
                if share <= 0:
                    continue
                seg_w = share * scale
                is_last = seg_index == len(kernels) - 1 or all(
                    counts.get(k, 0.0) <= 0 for k in kernels[seg_index + 1 :]
                )
                # 2px surface gap between touching segments; 4px rounded
                # data-end on the final segment only (square at baseline)
                draw_w = max(0.5, seg_w - 2.0)
                doc.rect(
                    x, by, draw_w, bar_h,
                    rx=4 if is_last else None,
                    fill=colors[kernel],
                    title=f"{name} {label} — {kernel}: {share:.3f}",
                )
                if not is_last:
                    # un-round the leading edge visually by overdrawing a
                    # square cap is unnecessary: rx only on the final segment
                    pass
                x += seg_w
            doc.text(label_w + total * scale + 6, by + bar_h - 6,
                     f"{total:.3f}", size=11, fill=TEXT_SECONDARY)
            by += bar_h + bar_gap
        # baseline axis
        doc.line(label_w, y + 16, label_w,
                 y + 16 + len(configs) * (bar_h + bar_gap) - bar_gap,
                 stroke=GRID, stroke_width=1)
        y += panel_h
    return doc.render()
