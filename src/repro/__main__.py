"""``python -m repro`` runs the experiment harness CLI."""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
